//! Test execution configuration and failure reporting.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (no shrinking in this stub, so just the message).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Records a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Proptest-compatible alias for [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
