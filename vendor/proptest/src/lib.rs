//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored stub
//! provides the subset of proptest the Plexus test suites use: the
//! [`Strategy`] abstraction, `any::<T>()`, range and collection strategies,
//! `prop_oneof!`/`Just`/`prop_map`, `sample::Index`/`sample::select`, and
//! the `proptest!` test macro with `prop_assert*`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (and the
//!   deterministic case number) but is not minimized.
//! * **Deterministic seeding.** Case `i` of test `t` always sees the same
//!   inputs, derived from `(t, i)` — runs are reproducible by design, and
//!   the `proptest-regressions` persistence machinery is unnecessary.
//! * Only the strategy combinators Plexus actually uses are implemented.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Module-path alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The deterministic RNG driving every strategy.
pub mod rng {
    /// SplitMix64 stream used to generate test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// Seed derived from a test name and case index, so every case is
        /// reproducible.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::from_seed(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::sample::{select, Index};
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Disjunction of strategies: picks one arm uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            #[test]
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::rng::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    let values = ( $(
                        $crate::strategy::Strategy::new_value(&($strat), &mut rng),
                    )* );
                    let described = format!("{:?}", values);
                    let ( $($pat,)* ) = values;
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            described
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
