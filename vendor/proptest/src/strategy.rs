//! The [`Strategy`] abstraction: a recipe for generating random values.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A value-generation strategy. Unlike real proptest there is no shrinking:
/// a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between type-erased arms (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds a union from its arms. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<fn() -> T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
