//! Sampling helpers (`proptest::sample`).

use std::fmt;

use crate::rng::TestRng;
use crate::strategy::{Arbitrary, Strategy};

/// An index into a collection of as-yet-unknown size: stores raw entropy
/// and maps it into `0..len` on demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this index into a collection of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

/// Strategy choosing uniformly among fixed alternatives.
pub struct Select<T> {
    choices: Vec<T>,
}

/// Picks one of `choices` per case. Panics if empty.
pub fn select<T: Clone + fmt::Debug>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    Select { choices }
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].clone()
    }
}
