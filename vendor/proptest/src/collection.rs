//! Collection strategies (`proptest::collection::vec`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64;
        self.lo + rng.below(span + 1) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size`, elements drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
