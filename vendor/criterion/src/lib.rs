//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendored stub
//! provides the subset of criterion's API that the Plexus benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! `Throughput`, and `BenchmarkId`.
//!
//! It measures real wall-clock time but keeps runs short (a fixed warm-up
//! plus a fixed measurement window per benchmark) and prints a single
//! median-estimate line per benchmark instead of criterion's full
//! statistical report. No HTML output, no regression detection.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing for `iter_batched` (ignored: every batch is one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in its report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the requested number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(60);

fn run_one(full_id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: discover roughly how long one iteration takes.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut total_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        f(&mut b);
        total_iters += b.iters;
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / total_iters.max(1) as u128;

    // Measurement: size the loop to fill the measurement window.
    let iters = ((MEASURE.as_nanos() / per_iter.max(1)) as u64).clamp(1, 10_000_000);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;

    let mut line = format!("{full_id:<48} {ns:>12.1} ns/iter");
    if let Some(tp) = throughput {
        let (n, unit) = match tp {
            Throughput::Bytes(n) => (n, "B"),
            Throughput::Elements(n) => (n, "elem"),
        };
        if ns > 0.0 {
            let rate = n as f64 / (ns / 1e9);
            line.push_str(&format!("  ({rate:.0} {unit}/s)"));
        }
    }
    println!("{line}");
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; this stub sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this stub uses a fixed window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), None, &mut f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
