//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the real `rand` cannot be
//! fetched. This vendored stub implements the (tiny) API surface Plexus
//! uses: a seedable deterministic generator, `gen::<f64>()`, and
//! `gen_range` over a `usize` range. The generator is SplitMix64 — not the
//! real `StdRng` (ChaCha12), but deterministic per seed, which is all the
//! simulation's fault injection requires.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Sample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range(&mut self, range: Range<usize>) -> usize
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }
}
