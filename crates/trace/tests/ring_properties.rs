//! Property tests for the flight-recorder ring: below capacity it never
//! loses or reorders events; above capacity it keeps exactly the newest
//! window and accounts for every overwrite.

use plexus_trace::{Ring, TraceEvent, TraceRecord};
use proptest::prelude::*;

fn rec(seq: u64) -> TraceRecord {
    TraceRecord {
        at_ns: seq.wrapping_mul(7),
        seq,
        packet: if seq.is_multiple_of(3) {
            None
        } else {
            Some(seq / 2)
        },
        journey: if seq.is_multiple_of(5) {
            None
        } else {
            Some(seq / 3)
        },
        event: TraceEvent::TimerFire,
    }
}

proptest! {
    #[test]
    fn below_capacity_never_loses_or_reorders(
        cap in 1usize..256,
        n in 0usize..256,
    ) {
        let n = n.min(cap);
        let mut ring = Ring::new(cap);
        for i in 0..n as u64 {
            ring.push(rec(i));
        }
        prop_assert_eq!(ring.len(), n);
        prop_assert_eq!(ring.overwritten(), 0);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|r| r.seq).collect();
        let expected: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(seqs, expected);
    }

    #[test]
    fn overflow_keeps_exactly_the_newest_window(
        cap in 1usize..64,
        n in 0usize..512,
    ) {
        let mut ring = Ring::new(cap);
        for i in 0..n as u64 {
            ring.push(rec(i));
        }
        let kept = n.min(cap);
        prop_assert_eq!(ring.len(), kept);
        prop_assert_eq!(ring.overwritten(), (n - kept) as u64);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|r| r.seq).collect();
        let expected: Vec<u64> = ((n - kept) as u64..n as u64).collect();
        prop_assert_eq!(seqs, expected, "newest window, oldest first");
    }
}
