//! Property tests for the exporters: whatever mix of events, counters,
//! and histogram observations lands in a recorder, every emitted document
//! (chrome trace, stats, profile JSON, folded stacks) must stay
//! well-formed and internally consistent — including saturating-counter
//! extremes, log2-histogram edge buckets, interned-label reuse, and the
//! empty recorder.

use plexus_trace::export::{chrome_trace, stats_json};
use plexus_trace::flame::folded;
use plexus_trace::json::{self, Value};
use plexus_trace::profile::{profile_json, Profile, Slice};
use plexus_trace::{CrossDir, GuardKind, Recorder, Scope};
use proptest::prelude::*;

/// A small closed label vocabulary (the vendored proptest has no string
/// strategies); includes names needing JSON escaping.
const LABELS: &[&str] = &[
    "Udp.PacketRecv",
    "Ethernet.PacketRecv",
    "rtt-bench",
    "kernel",
    "weird \"quoted\" name",
    "tab\there",
];

fn label(i: usize) -> &'static str {
    LABELS[i % LABELS.len()]
}

/// One synthetic step per packet: enter/exit pairs interleaved with
/// guards, drops, crossings, and timers, driven by small integers.
fn populate(rec: &Recorder, steps: &[(usize, usize, u64)]) {
    let mut at = 0u64;
    let mut open: Vec<(plexus_trace::Label, plexus_trace::Label, u64)> = Vec::new();
    rec.packet_arrival(at, "Ethernet", 60);
    for &(kind, which, dt) in steps {
        at += dt;
        let ev = rec.intern(label(which));
        let dom = rec.intern(label(which + 1));
        match kind % 8 {
            0 => {
                let span = rec.handler_enter(at, ev, dom);
                open.push((ev, dom, span));
            }
            1 => {
                if let Some((ev, dom, span)) = open.pop() {
                    rec.handler_exit(at, ev, dom, span);
                }
            }
            2 => rec.guard_eval(at, ev, GuardKind::Verified, which % 2 == 0),
            3 => rec.packet_drop(at, label(which), label(which + 2)),
            4 => rec.crossing(at, CrossDir::UserToKernel, which),
            5 => rec.sample(at, ev, dt),
            6 => rec.rx_interrupt(at, "Ethernet", which + 1, which),
            _ => rec.timer_fire(at),
        }
    }
    while let Some((ev, dom, span)) = open.pop() {
        at += 1;
        rec.handler_exit(at, ev, dom, span);
    }
    rec.packet_done();
}

proptest! {
    #[test]
    fn every_export_of_a_random_event_mix_round_trips_the_validator(
        steps in prop::collection::vec((0usize..8, 0usize..6, 0u64..10_000), 0..64),
        ring_cap in 1usize..128,
    ) {
        let rec = Recorder::new(ring_cap);
        populate(&rec, &steps);
        prop_assert!(json::parse(&chrome_trace(&rec)).is_ok());
        prop_assert!(json::parse(&stats_json(&rec)).is_ok());
        let profile = Profile::build(&rec);
        let body = profile_json(&profile, None, 4);
        prop_assert!(json::parse(&body).is_ok(), "profile JSON invalid:\n{}", body);
        // Folded lines always parse back as "<stack> <ns>".
        for line in folded(&profile).lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("folded line shape");
            prop_assert_eq!(stack.split(';').count(), 3);
            prop_assert!(ns.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn profile_slices_tile_each_window_even_under_wraparound(
        steps in prop::collection::vec((0usize..8, 0usize..6, 0u64..10_000), 0..64),
        ring_cap in 1usize..32,
    ) {
        // Tiny rings force truncation; the invariant must hold for
        // whatever survives, and never produce negative durations.
        let rec = Recorder::new(ring_cap);
        populate(&rec, &steps);
        let profile = Profile::build(&rec);
        for pkt in &profile.packets {
            let mut cursor = pkt.first_ns;
            for s in &pkt.slices {
                prop_assert_eq!(s.start_ns, cursor);
                prop_assert!(s.end_ns >= s.start_ns);
                cursor = s.end_ns;
            }
            prop_assert_eq!(cursor, pkt.last_ns);
            let total: u64 = pkt.slices.iter().map(Slice::ns).sum();
            prop_assert_eq!(total, pkt.last_ns - pkt.first_ns);
        }
    }

    #[test]
    fn saturating_counters_and_hist_edge_buckets_stay_valid(
        deltas in prop::collection::vec(0u64..u64::MAX, 1..8),
        observations in prop::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let rec = Recorder::new(8);
        let label = rec.intern("sat.counter");
        for d in &deltas {
            rec.count(Scope::App, label, "near_max", *d);
        }
        // Force saturation explicitly, plus histogram edge values.
        rec.count(Scope::App, label, "near_max", u64::MAX);
        let hist = rec.intern("edge.hist");
        for v in [0u64, 1, u64::MAX] {
            rec.record_latency(hist, v);
        }
        for v in &observations {
            rec.record_latency(hist, *v);
        }
        let out = stats_json(&rec);
        let doc = json::parse(&out);
        prop_assert!(doc.is_ok(), "stats JSON invalid:\n{}", out);
        let doc = doc.unwrap();
        // The saturated counter survives the JSON round trip exactly
        // (u64::MAX has no exact f64, but the emitted token must parse).
        let counters = doc.get("counters").expect("counters object");
        prop_assert!(counters.get("app.sat.counter.near_max").is_some());
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("edge.hist"))
            .expect("edge histogram present");
        prop_assert_eq!(
            h.get("count").and_then(Value::as_u64),
            Some(3 + observations.len() as u64)
        );
        prop_assert_eq!(h.get("min_ns").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn interned_label_reuse_never_splits_counters(
        n in 1usize..64,
    ) {
        let rec = Recorder::new(8);
        for _ in 0..n {
            // Re-interning the same string must hit the same counter.
            let label = rec.intern("dup.label");
            rec.count(Scope::App, label, "hits", 1);
        }
        let doc = json::parse(&stats_json(&rec)).expect("valid stats");
        let hits = doc
            .get("counters")
            .and_then(|c| c.get("app.dup.label.hits"))
            .and_then(Value::as_u64);
        prop_assert_eq!(hits, Some(n as u64));
    }
}

#[test]
fn empty_recorder_exports_are_valid_and_empty() {
    let rec = Recorder::new(8);
    let trace = chrome_trace(&rec);
    let stats = stats_json(&rec);
    json::validate(&trace).expect("empty chrome trace");
    json::validate(&stats).expect("empty stats");
    let profile = Profile::build(&rec);
    assert!(profile.packets.is_empty());
    assert!(profile.truncation.clean());
    json::validate(&profile_json(&profile, None, 4)).expect("empty profile");
    assert_eq!(folded(&profile), "");
    let doc = json::parse(&stats).unwrap();
    assert_eq!(doc.get("events_recorded").and_then(Value::as_u64), Some(0));
}
