//! Windowed time-series telemetry over the flight-recorder ring.
//!
//! [`build`] folds the retained [`TraceRecord`] stream into fixed
//! simulated-time windows (default width [`DEFAULT_WINDOW_NS`]) and emits
//! per-window goodput, drop counts by reason, rx-ring highwater,
//! interrupt rate, and nearest-rank p50/p99 latency. Whole-run aggregates
//! (the stats JSON, the bench reports) hide transients — a 50 ms queue
//! buildup in the first tenth of an overload run vanishes into a healthy
//! mean — and the windowed series is what makes them visible and, via the
//! worst-window metrics, gateable in CI.
//!
//! Like the profiler this is a *post-hoc* fold: the recording hot path
//! stays zero-alloc (`Copy` records into the preallocated ring; latency
//! samples via [`crate::Recorder::sample`] are one ring push plus a
//! histogram bump), and all the windowing work happens after the run.
//! [`timeline_json`] emits integers in deterministic key order, so two
//! runs of the same scenario produce byte-identical output — the same
//! contract every other exporter honors.

use std::collections::BTreeMap;

use crate::json::escape;
use crate::{Recorder, TraceEvent};

/// Default window width: 10 ms of simulated time.
pub const DEFAULT_WINDOW_NS: u64 = 10_000_000;

/// Aggregates for one fixed window of simulated time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Window {
    /// Window index; the window covers
    /// `[index * window_ns, (index + 1) * window_ns)`.
    pub index: u64,
    /// Frames that arrived at any NIC in this window.
    pub arrivals: u64,
    /// Bytes across those arrivals.
    pub arrival_bytes: u64,
    /// Frames handed to any transmitter in this window.
    pub tx_frames: u64,
    /// Bytes across those transmits.
    pub tx_bytes: u64,
    /// Worst transmit queueing delay observed in this window.
    pub tx_wait_max_ns: u64,
    /// Worst tx-ring/doorbell queue share of a transmit wait in this
    /// window (the `queue_ns` part of `PacketTx`; always `<=`
    /// `tx_wait_max_ns`'s source waits).
    pub tx_queue_max_ns: u64,
    /// Latency samples completed in this window (the goodput series).
    pub completions: u64,
    /// Nearest-rank median of this window's latency samples.
    pub p50_ns: u64,
    /// Nearest-rank 99th percentile of this window's latency samples.
    pub p99_ns: u64,
    /// Receive interrupts fired in this window.
    pub interrupts: u64,
    /// Frames delivered by those interrupts.
    pub interrupt_frames: u64,
    /// Highest rx-ring occupancy seen at any interrupt in this window
    /// (frames taken plus frames still queued).
    pub rx_ring_highwater: u64,
    /// Drops in this window as `(layer, reason) -> count`.
    pub drops: BTreeMap<(String, String), u64>,
}

impl Window {
    /// Total drops in this window across all `(layer, reason)` keys.
    pub fn drop_count(&self) -> u64 {
        self.drops.values().sum()
    }
}

/// The windowed fold of one recorded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    /// Window width in simulated nanoseconds.
    pub window_ns: u64,
    /// Dense windows from simulated time zero through the last record.
    pub windows: Vec<Window>,
    /// Records the ring overwrote before the fold — non-zero means early
    /// windows under-report.
    pub truncated_records: u64,
}

impl Timeline {
    /// Index of the window with the highest p99 latency (ties go to the
    /// earliest window), or `None` when no window completed a sample.
    pub fn worst_p99_window(&self) -> Option<&Window> {
        self.windows
            .iter()
            .filter(|w| w.completions > 0)
            .max_by(|a, b| a.p99_ns.cmp(&b.p99_ns).then(b.index.cmp(&a.index)))
    }

    /// Index of the window with the most drops (ties go to the earliest
    /// window), or `None` when nothing was dropped.
    pub fn worst_drop_window(&self) -> Option<&Window> {
        self.windows
            .iter()
            .filter(|w| w.drop_count() > 0)
            .max_by(|a, b| {
                a.drop_count()
                    .cmp(&b.drop_count())
                    .then(b.index.cmp(&a.index))
            })
    }
}

/// Nearest-rank percentile over a sorted slice (`q` in percent).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Folds the recorder's retained ring into fixed `window_ns`-wide windows.
///
/// # Panics
///
/// Panics if `window_ns` is zero.
pub fn build(rec: &Recorder, window_ns: u64) -> Timeline {
    assert!(window_ns > 0, "window width must be positive");
    let records = rec.events();
    // Transmit records are stamped at their (possibly future) handover
    // instant, so the ring is not sorted by timestamp: take the max.
    let last_ns = records.iter().map(|r| r.at_ns).max().unwrap_or(0);
    let n_windows = if records.is_empty() {
        0
    } else {
        (last_ns / window_ns + 1) as usize
    };
    let mut windows: Vec<Window> = (0..n_windows)
        .map(|i| Window {
            index: i as u64,
            ..Window::default()
        })
        .collect();
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); n_windows];

    for r in &records {
        let w = &mut windows[(r.at_ns / window_ns) as usize];
        match r.event {
            TraceEvent::PacketArrival { bytes, .. } => {
                w.arrivals += 1;
                w.arrival_bytes += u64::from(bytes);
            }
            TraceEvent::PacketTx {
                bytes,
                queue_ns,
                wait_ns,
                ..
            } => {
                w.tx_frames += 1;
                w.tx_bytes += u64::from(bytes);
                w.tx_wait_max_ns = w.tx_wait_max_ns.max(wait_ns);
                w.tx_queue_max_ns = w.tx_queue_max_ns.max(queue_ns);
            }
            TraceEvent::LatencySample { ns, .. } => {
                w.completions += 1;
                samples[(r.at_ns / window_ns) as usize].push(ns);
            }
            TraceEvent::RxInterrupt {
                frames, ring_after, ..
            } => {
                w.interrupts += 1;
                w.interrupt_frames += u64::from(frames);
                w.rx_ring_highwater = w
                    .rx_ring_highwater
                    .max(u64::from(frames) + u64::from(ring_after));
            }
            TraceEvent::Drop { layer, reason } => {
                *w.drops
                    .entry((rec.name(layer), rec.name(reason)))
                    .or_insert(0) += 1;
            }
            _ => {}
        }
    }
    for (w, mut obs) in windows.iter_mut().zip(samples) {
        obs.sort_unstable();
        w.p50_ns = percentile(&obs, 50.0);
        w.p99_ns = percentile(&obs, 99.0);
    }

    Timeline {
        window_ns,
        windows,
        truncated_records: rec.overwritten(),
    }
}

/// Renders the timeline as deterministic JSON (schema
/// `plexus.timeline.v1`): integers only, fixed key order, windows dense
/// from time zero.
pub fn timeline_json(t: &Timeline) -> String {
    let mut out = String::from("{\n  \"schema\": \"plexus.timeline.v1\",\n");
    out.push_str(&format!("  \"window_ns\": {},\n", t.window_ns));
    out.push_str(&format!(
        "  \"truncated_records\": {},\n",
        t.truncated_records
    ));
    out.push_str(&format!(
        "  \"worst_p99_window\": {},\n",
        t.worst_p99_window()
            .map_or(String::from("null"), |w| w.index.to_string())
    ));
    out.push_str(&format!(
        "  \"worst_drop_window\": {},\n",
        t.worst_drop_window()
            .map_or(String::from("null"), |w| w.index.to_string())
    ));
    out.push_str("  \"windows\": [");
    for (i, w) in t.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"index\": {}, \"start_ns\": {}, \"arrivals\": {}, \
             \"arrival_bytes\": {}, \"tx_frames\": {}, \"tx_bytes\": {}, \
             \"tx_wait_max_ns\": {}, \"tx_queue_max_ns\": {}, \"completions\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"interrupts\": {}, \
             \"interrupt_frames\": {}, \"rx_ring_highwater\": {}, \"drops\": [",
            w.index,
            w.index * t.window_ns,
            w.arrivals,
            w.arrival_bytes,
            w.tx_frames,
            w.tx_bytes,
            w.tx_wait_max_ns,
            w.tx_queue_max_ns,
            w.completions,
            w.p50_ns,
            w.p99_ns,
            w.interrupts,
            w.interrupt_frames,
            w.rx_ring_highwater
        ));
        for (j, ((layer, reason), n)) in w.drops.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"layer\": \"{}\", \"reason\": \"{}\", \"count\": {n}}}",
                escape(layer),
                escape(reason)
            ));
        }
        out.push_str("]}");
    }
    out.push_str(if t.windows.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn windows_are_dense_and_events_land_in_the_right_one() {
        let rec = Recorder::new(64);
        rec.packet_arrival(500, "Ethernet", 60);
        rec.packet_done();
        rec.packet_arrival(1_500, "Ethernet", 40);
        rec.packet_drop(1_600, "ip", "no_route");
        rec.packet_done();
        let hist = rec.intern("rtt");
        rec.sample(3_500, hist, 42);
        rec.sample(3_600, hist, 100);
        rec.rx_interrupt(3_700, "Ethernet", 4, 2);

        let t = build(&rec, 1_000);
        assert_eq!(t.windows.len(), 4, "dense through the last record");
        assert_eq!(t.windows[0].arrivals, 1);
        assert_eq!(t.windows[0].arrival_bytes, 60);
        assert_eq!(t.windows[1].arrivals, 1);
        assert_eq!(t.windows[1].drop_count(), 1);
        assert_eq!(
            t.windows[2],
            Window {
                index: 2,
                ..Window::default()
            }
        );
        let w3 = &t.windows[3];
        assert_eq!(w3.completions, 2);
        assert_eq!(w3.p50_ns, 42);
        assert_eq!(w3.p99_ns, 100);
        assert_eq!(w3.interrupts, 1);
        assert_eq!(w3.rx_ring_highwater, 6);
        assert_eq!(t.worst_p99_window().unwrap().index, 3);
        assert_eq!(t.worst_drop_window().unwrap().index, 1);
    }

    #[test]
    fn future_stamped_tx_records_extend_the_window_range() {
        let rec = Recorder::new(64);
        rec.packet_arrival(500, "Ethernet", 60);
        // A queued transmit whose handover instant postdates every other
        // record: the window range must still cover it.
        rec.packet_tx(2_500, "Ethernet", 60, 0, 0, 0);
        rec.packet_done();
        let t = build(&rec, 1_000);
        assert_eq!(t.windows.len(), 3);
        assert_eq!(t.windows[2].tx_frames, 1);
    }

    #[test]
    fn worst_window_ties_go_to_the_earliest() {
        let rec = Recorder::new(64);
        let hist = rec.intern("rtt");
        rec.sample(100, hist, 7);
        rec.sample(1_100, hist, 7);
        let t = build(&rec, 1_000);
        assert_eq!(t.worst_p99_window().unwrap().index, 0);
    }

    #[test]
    fn timeline_json_is_valid_and_deterministic() {
        let make = || {
            let rec = Recorder::new(64);
            rec.packet_arrival(500, "Ethernet", 60);
            rec.packet_drop(700, "udp", "no_port");
            rec.packet_done();
            let hist = rec.intern("rtt");
            rec.sample(900, hist, 55);
            timeline_json(&build(&rec, 1_000))
        };
        let a = make();
        assert_eq!(a, make());
        validate(&a).expect("timeline JSON well-formed");
        assert!(a.contains("\"schema\": \"plexus.timeline.v1\""));
        assert!(a.contains("\"worst_p99_window\": 0"));
        assert!(a.contains("\"reason\": \"no_port\""));
    }

    #[test]
    fn empty_recorder_yields_an_empty_timeline() {
        let rec = Recorder::new(8);
        let t = build(&rec, DEFAULT_WINDOW_NS);
        assert!(t.windows.is_empty());
        validate(&timeline_json(&t)).expect("empty timeline JSON");
    }
}
