//! Counters and latency histograms.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::recorder::Label;

/// What kind of thing a counter is about. Scopes namespace the label so,
/// e.g., the event name `udp_recv` can carry both handler and guard
/// counters without collision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Per-NIC packet traffic.
    Packet,
    /// Per-event (dispatcher table) raises.
    Event,
    /// Per-event guard evaluation, split verified/closure by the metric.
    Guard,
    /// Per-event handler invocations.
    Handler,
    /// Per-domain (extension / kernel subsystem) accounting — the
    /// substrate for the paper's anti-spoof/anti-snoop bookkeeping.
    Domain,
    /// Drops, keyed by reason.
    Drop,
    /// Engine timers.
    Timer,
    /// User/kernel boundary crossings, keyed by direction.
    Crossing,
    /// Application-defined counters.
    App,
}

impl Scope {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Packet => "packet",
            Scope::Event => "event",
            Scope::Guard => "guard",
            Scope::Handler => "handler",
            Scope::Domain => "domain",
            Scope::Drop => "drop",
            Scope::Timer => "timer",
            Scope::Crossing => "crossing",
            Scope::App => "app",
        }
    }
}

/// Key of one counter: `(scope, interned label, static metric name)`.
///
/// `Copy`, so steady-state increments do no allocation — the only
/// allocation a counter ever causes is the `BTreeMap` node on first touch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CounterKey {
    /// Namespace of the label.
    pub scope: Scope,
    /// Interned subject (event name, domain name, drop reason, ...).
    pub label: Label,
    /// Metric within the subject (`"invocations"`, `"evals"`, ...).
    pub metric: &'static str,
}

/// A fixed-bucket log2 histogram over nanosecond values.
///
/// Bucket `i` counts values `v` with `floor(log2(v)) == i` (bucket 0 also
/// takes `v == 0`), so 64 buckets cover the entire `u64` range with no
/// configuration and no allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of recorded values (0 when empty). Integer so exports
    /// stay byte-stable.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket where the cumulative count first reaches `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i, clamped to the observed max.
                let hi = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// `(floor_of_bucket, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
            .collect()
    }
}

/// Deterministic store of counters and histograms.
///
/// `BTreeMap` keyed by `Copy` keys: iteration order is fixed by key order,
/// never by insertion hash, so exports are reproducible.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RefCell<BTreeMap<CounterKey, u64>>,
    hists: RefCell<BTreeMap<Label, Histogram>>,
}

impl Registry {
    /// Adds `delta` to a counter (saturating).
    pub fn add(&self, key: CounterKey, delta: u64) {
        let mut map = self.counters.borrow_mut();
        let slot = map.entry(key).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Current value of a counter (0 if never touched).
    pub fn get(&self, key: CounterKey) -> u64 {
        self.counters.borrow().get(&key).copied().unwrap_or(0)
    }

    /// Snapshot of every counter, in key order.
    pub fn counters(&self) -> Vec<(CounterKey, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Records a value into the named histogram.
    pub fn record_hist(&self, name: Label, value_ns: u64) {
        self.hists
            .borrow_mut()
            .entry(name)
            .or_default()
            .record(value_ns);
    }

    /// Clone of the named histogram, if any values were recorded.
    pub fn hist(&self, name: Label) -> Option<Histogram> {
        self.hists.borrow().get(&name).cloned()
    }

    /// Snapshot of every histogram, in label order.
    pub fn hists(&self) -> Vec<(Label, Histogram)> {
        self.hists
            .borrow()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn counters_accumulate_and_saturate() {
        let rec = Recorder::new(16);
        let label = rec.intern("udp_recv");
        let key = CounterKey {
            scope: Scope::Handler,
            label,
            metric: "invocations",
        };
        let reg = Registry::default();
        reg.add(key, 2);
        reg.add(key, 3);
        assert_eq!(reg.get(key), 5);
        reg.add(key, u64::MAX);
        assert_eq!(reg.get(key), u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let buckets = h.nonzero_buckets();
        // 0,1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2; 1000 -> bucket 9
        // (floor 512); 1024 -> bucket 10.
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 1), (512, 1), (1024, 1)]);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) >= 500 && h.quantile(0.5) <= 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }
}
