//! Cross-machine packet journeys reconstructed from the profiled ring.
//!
//! A *journey* is the causal chain a frame starts: the journey ID is
//! allocated at the original transmit, carried across the wire with the
//! frame, inherited by the receive chain it triggers on the next machine,
//! and passed on by any frame *that* chain transmits — until a receive
//! handler calls [`crate::Recorder::journey_break`] to start a fresh one.
//! Per-machine packet IDs restart at every NIC arrival; the journey ID is
//! the identity that survives the hop, which is what makes a cross-machine
//! latency waterfall possible at all.
//!
//! [`build`] stitches the per-packet profiles of one [`Profile`] into
//! per-journey hop ledgers. Hops are linked by the wire-telescoping
//! equation the NIC model guarantees —
//! `tx.at_ns + wait + ser + prop == arrival.at_ns` — with an inequality
//! fallback for coalesced receive paths where the arrival record is
//! delayed by rx-ring queueing (the gap becomes the hop's *queue wait*).
//! The **chain** is the path from the origin transmit to the latest
//! surviving hop; broadcast copies that a MAC filter discarded are counted
//! as *filtered hops*, other causal offshoots (ACKs, forwarded copies) as
//! *branch hops*. Along the chain every nanosecond between the origin
//! handover and the final hop's last record lands in exactly one named
//! segment — wire phases, rx-queue waits, and `(machine, layer, domain)`
//! processing slices — so the segments telescope to the measured
//! end-to-end time exactly, in the style of
//! [`crate::profile::pingpong_waterfall`].

use std::collections::{BTreeMap, BTreeSet};

use crate::json::escape;
use crate::profile::{PacketProfile, Profile, Segment, TxRecord};

/// One hop on a journey's critical-path chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainHop {
    /// Per-machine packet ID of this hop.
    pub packet: u64,
    /// Receiving machine (NIC name when the world didn't name the host).
    pub machine: String,
    /// Receiving NIC.
    pub nic: String,
    /// Arrival-record timestamp.
    pub arrival_ns: u64,
    /// Time the frame sat in the rx ring before the arrival record (zero
    /// on the per-frame path, where delivery and arrival coincide).
    pub queue_wait_ns: u64,
    /// Handover instant of the transmit that continues the chain
    /// (`None` for the final hop).
    pub tx_ns: Option<u64>,
    /// CPU time spent unwinding handler stacks after the handover — real
    /// work, but off the critical path (it overlaps wire time).
    pub overlap_ns: u64,
}

/// One reconstructed journey.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Journey {
    /// The world-global journey ID.
    pub journey: u64,
    /// Where the clock starts: the origin handover when the origin
    /// transmit was recorded, else the first chain hop's arrival.
    pub start_ns: u64,
    /// The final chain hop's last record.
    pub end_ns: u64,
    /// `end_ns - start_ns`; the chain segments sum to this exactly.
    pub end_to_end_ns: u64,
    /// Machine that sent the origin frame (`None` when the origin
    /// transmit ran outside any packet window on an unnamed machine).
    pub origin_machine: Option<String>,
    /// The critical-path hops, origin-side first.
    pub chain: Vec<ChainHop>,
    /// Ordered waterfall segments summing to `end_to_end_ns`.
    pub segments: Vec<Segment>,
    /// Hops causally in this journey but off the chain (ACKs, broadcast
    /// copies that were processed).
    pub branch_hops: u64,
    /// Broadcast copies a MAC filter (or similar) discarded on arrival.
    pub filtered_hops: u64,
    /// Total post-handover unwind time across chain hops.
    pub overlap_ns: u64,
}

/// All journeys of one profiled run, in journey-ID order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journeys {
    /// One entry per journey that produced at least one non-orphan hop.
    pub journeys: Vec<Journey>,
    /// Packets excluded because ring wraparound ate their arrival (their
    /// journey tag is unknown).
    pub orphan_packets: u64,
}

/// A transmit that can parent a hop: the resolved record plus where it
/// came from.
struct TxCand<'a> {
    tx: &'a TxRecord,
    /// `(packet, index in that packet's txs)`; `None` for a transmit
    /// recorded outside any packet window.
    source: Option<(u64, usize)>,
}

impl TxCand<'_> {
    fn wire_arrival(&self) -> u64 {
        self.tx.at_ns + self.tx.wait_ns + self.tx.ser_ns + self.tx.prop_ns
    }
}

fn machine_of(p: &PacketProfile) -> String {
    p.host
        .clone()
        .or_else(|| p.nic.clone())
        .unwrap_or_else(|| String::from("?"))
}

/// A hop that arrived but was discarded without running any handler —
/// a broadcast copy the MAC filter (or an overflowing rx ring) shed.
fn is_filtered(p: &PacketProfile) -> bool {
    p.spans.is_empty() && p.txs.is_empty() && !p.drops.is_empty()
}

/// Appends `ns` to the segment named `name`, merging consecutive equal
/// names (keeps first-seen order otherwise).
fn push_segment(segments: &mut Vec<Segment>, name: String, ns: u64) {
    match segments.iter_mut().find(|s| s.name == name) {
        Some(s) => s.ns += ns,
        None => segments.push(Segment { name, ns }),
    }
}

/// Groups `slices[..=upto]` of a hop into `{machine}.{layer}.{domain}`
/// segments, first-seen order, appended to `segments`.
fn hop_processing_segments(
    segments: &mut Vec<Segment>,
    p: &PacketProfile,
    machine: &str,
    upto: usize,
) {
    for s in &p.slices[..=upto] {
        push_segment(
            segments,
            format!("{machine}.{}.{}", s.at.layer, s.at.domain),
            s.ns(),
        );
    }
}

/// Index of the slice produced by the `k`-th (0-based) `PacketTx` record
/// of this hop. Tx records and the `driver/tx` slices they produce appear
/// in the same order, so counting is exact.
fn nth_tx_slice_idx(p: &PacketProfile, k: usize) -> Option<usize> {
    p.slices
        .iter()
        .enumerate()
        .filter(|(_, s)| s.at.layer == "driver" && s.at.handler == "tx")
        .map(|(i, _)| i)
        .nth(k)
}

/// Reconstructs every journey from a built profile.
pub fn build(profile: &Profile) -> Journeys {
    let by_id: BTreeMap<u64, &PacketProfile> =
        profile.packets.iter().map(|p| (p.packet, p)).collect();

    let mut orphans = 0u64;
    let mut hops_by_journey: BTreeMap<u64, Vec<&PacketProfile>> = BTreeMap::new();
    for p in &profile.packets {
        match p.journey {
            Some(j) if !p.orphan => hops_by_journey.entry(j).or_default().push(p),
            _ => orphans += 1,
        }
    }

    // Candidate parent transmits per journey: engine/timer-context sends
    // first, then per-packet transmits in packet order. A transmit's
    // journey tag names the chain its *delivery* joins, which may differ
    // from the journey of the packet being processed when it was sent
    // (that is exactly what `journey_break` arranges).
    let mut txs_by_journey: BTreeMap<u64, Vec<TxCand<'_>>> = BTreeMap::new();
    for tx in &profile.unattributed_txs {
        if let Some(j) = tx.journey {
            txs_by_journey
                .entry(j)
                .or_default()
                .push(TxCand { tx, source: None });
        }
    }
    for p in &profile.packets {
        for (i, tx) in p.txs.iter().enumerate() {
            if let Some(j) = tx.journey {
                txs_by_journey.entry(j).or_default().push(TxCand {
                    tx,
                    source: Some((p.packet, i)),
                });
            }
        }
    }

    let mut journeys = Vec::with_capacity(hops_by_journey.len());
    for (jid, mut hops) in hops_by_journey {
        hops.sort_by_key(|p| (p.first_ns, p.packet));
        let cands = txs_by_journey.get(&jid).map_or(&[][..], Vec::as_slice);

        // The parent transmit of a hop: exact wire-telescoping match
        // first; otherwise the latest handover whose wire arrival does
        // not postdate the hop's arrival record (rx-ring queueing delays
        // the record past the wire arrival on the coalesced path).
        let parent_of = |hop: &PacketProfile| -> Option<&TxCand<'_>> {
            let not_self = |c: &&TxCand<'_>| c.source.map(|(p, _)| p) != Some(hop.packet);
            cands
                .iter()
                .filter(not_self)
                .find(|c| c.wire_arrival() == hop.first_ns)
                .or_else(|| {
                    cands
                        .iter()
                        .filter(not_self)
                        .filter(|c| c.wire_arrival() <= hop.first_ns)
                        .max_by_key(|c| c.wire_arrival())
                })
        };

        // The chain ends at the latest hop that actually ran (falling
        // back to the latest filtered hop for journeys that died on
        // arrival), and is walked backwards via parent transmits.
        let end = hops
            .iter()
            .filter(|p| !is_filtered(p))
            .max_by_key(|p| (p.last_ns, p.first_ns, p.packet))
            .or_else(|| hops.iter().max_by_key(|p| (p.last_ns, p.packet)))
            .expect("journey group is non-empty");

        let mut chain: Vec<(&PacketProfile, Option<usize>)> = vec![(end, None)];
        let mut origin: Option<&TxCand<'_>> = None;
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        visited.insert(end.packet);
        loop {
            let (head, _) = chain[0];
            let Some(parent) = parent_of(head) else { break };
            match parent.source {
                Some((pkt, tx_idx))
                    if by_id.get(&pkt).is_some_and(|p| p.journey == Some(jid))
                        && visited.insert(pkt) =>
                {
                    chain.insert(0, (by_id[&pkt], Some(tx_idx)));
                }
                _ => {
                    // Sent from another journey's window (a broken chain's
                    // origin) or from engine/timer context: the journey
                    // starts here.
                    origin = Some(parent);
                    break;
                }
            }
        }

        let start_ns = origin.map_or(chain[0].0.first_ns, |c| c.tx.at_ns);
        let end_ns = end.last_ns;
        let origin_machine = origin.and_then(|c| c.source.map(|(pkt, _)| machine_of(by_id[&pkt])));

        // Stitch the segments hop by hop. Each iteration appends the wire
        // phases that delivered hop `i`, its rx-queue wait, and its
        // processing slices up to the handover that continues the chain —
        // so consecutive pieces share their boundary instants and the
        // total telescopes to `end_ns - start_ns` with nothing left over.
        let mut segments: Vec<Segment> = Vec::new();
        let mut chain_hops: Vec<ChainHop> = Vec::new();
        let mut overlap_total = 0u64;
        for i in 0..chain.len() {
            let (hop, _) = chain[i];
            let machine = machine_of(hop);

            // Wire phases into this hop (from the origin transmit or the
            // previous chain hop's handover).
            let incoming = if i == 0 {
                origin
            } else {
                let (prev, prev_tx_idx) = chain[i - 1];
                prev_tx_idx.and_then(|k| cands.iter().find(|c| c.source == Some((prev.packet, k))))
            };
            let mut queue_wait = 0;
            if let Some(c) = incoming {
                let src = c
                    .source
                    .map_or_else(|| String::from("origin"), |(p, _)| machine_of(by_id[&p]));
                let wire = format!("{src}->{machine}.wire");
                // The tx-ring/doorbell share of the wait is the sender's
                // queue, not the medium's: surface it as its own hop
                // segment so a backlogged transmit path is visible.
                let queue = c.tx.queue_ns.min(c.tx.wait_ns);
                if queue > 0 {
                    push_segment(&mut segments, format!("{src}.tx_queue"), queue);
                }
                push_segment(&mut segments, format!("{wire}.wait"), c.tx.wait_ns - queue);
                push_segment(&mut segments, format!("{wire}.serialize"), c.tx.ser_ns);
                push_segment(&mut segments, format!("{wire}.propagate"), c.tx.prop_ns);
                queue_wait = hop.first_ns.saturating_sub(c.wire_arrival());
                if queue_wait > 0 {
                    push_segment(&mut segments, format!("{machine}.rx_queue"), queue_wait);
                }
            }

            // Processing on this hop: up to the chain-continuing handover
            // for inner hops, the whole window for the final one.
            let own_tx_idx = chain[i].1;
            let (tx_ns, overlap, upto) = match own_tx_idx {
                Some(k) => {
                    let tx = &hop.txs[k];
                    let upto = nth_tx_slice_idx(hop, k);
                    (Some(tx.at_ns), hop.last_ns.saturating_sub(tx.at_ns), upto)
                }
                None => (None, 0, hop.slices.len().checked_sub(1)),
            };
            if let Some(upto) = upto {
                hop_processing_segments(&mut segments, hop, &machine, upto);
            }
            overlap_total += overlap;
            chain_hops.push(ChainHop {
                packet: hop.packet,
                machine,
                nic: hop.nic.clone().unwrap_or_default(),
                arrival_ns: hop.first_ns,
                queue_wait_ns: queue_wait,
                tx_ns,
                overlap_ns: overlap,
            });
        }

        let on_chain: BTreeSet<u64> = chain.iter().map(|&(p, _)| p.packet).collect();
        let filtered = hops
            .iter()
            .filter(|p| is_filtered(p) && !on_chain.contains(&p.packet))
            .count() as u64;
        let branches = hops.len() as u64 - filtered - on_chain.len() as u64;

        journeys.push(Journey {
            journey: jid,
            start_ns,
            end_ns,
            end_to_end_ns: end_ns - start_ns,
            origin_machine,
            chain: chain_hops,
            segments,
            branch_hops: branches,
            filtered_hops: filtered,
            overlap_ns: overlap_total,
        });
    }

    Journeys {
        journeys,
        orphan_packets: orphans,
    }
}

/// Renders the journeys as deterministic JSON (schema
/// `plexus.journey.v1`). Per-journey detail is emitted for the first
/// `max_detail` journeys only — the cap is stated, never silent — while
/// the per-segment aggregate covers every journey.
pub fn journeys_json(j: &Journeys, max_detail: usize) -> String {
    let mut out = String::from("{\n  \"schema\": \"plexus.journey.v1\",\n");
    out.push_str(&format!("  \"journeys_total\": {},\n", j.journeys.len()));
    let detailed = j.journeys.len().min(max_detail);
    out.push_str(&format!("  \"journeys_detailed\": {detailed},\n"));
    out.push_str(&format!(
        "  \"orphan_packets_excluded\": {},\n",
        j.orphan_packets
    ));

    // Per-segment aggregate across *all* journeys, first-seen order.
    let mut agg: Vec<(String, u64, u64)> = Vec::new();
    for journey in &j.journeys {
        for s in &journey.segments {
            match agg.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, total, count)) => {
                    *total += s.ns;
                    *count += 1;
                }
                None => agg.push((s.name.clone(), s.ns, 1)),
            }
        }
    }
    out.push_str("  \"segments\": [");
    for (i, (name, total, count)) in agg.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"total_ns\": {total}, \"journeys\": {count}, \
             \"mean_ns\": {}}}",
            escape(name),
            total / count.max(&1)
        ));
    }
    out.push_str(if agg.is_empty() { "],\n" } else { "\n  ],\n" });

    out.push_str("  \"journeys\": [");
    for (i, journey) in j.journeys.iter().take(detailed).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"journey\": {}, \"start_ns\": {}, \"end_ns\": {}, \
             \"end_to_end_ns\": {}, \"origin_machine\": {}, \"branch_hops\": {}, \
             \"filtered_hops\": {}, \"overlap_ns\": {}, \"chain\": [",
            journey.journey,
            journey.start_ns,
            journey.end_ns,
            journey.end_to_end_ns,
            journey
                .origin_machine
                .as_ref()
                .map_or(String::from("null"), |m| format!("\"{}\"", escape(m))),
            journey.branch_hops,
            journey.filtered_hops,
            journey.overlap_ns
        ));
        for (k, h) in journey.chain.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"packet\": {}, \"machine\": \"{}\", \"nic\": \"{}\", \
                 \"arrival_ns\": {}, \"queue_wait_ns\": {}, \"tx_ns\": {}, \
                 \"overlap_ns\": {}}}",
                h.packet,
                escape(&h.machine),
                escape(&h.nic),
                h.arrival_ns,
                h.queue_wait_ns,
                h.tx_ns.map_or(String::from("null"), |t| t.to_string()),
                h.overlap_ns
            ));
        }
        out.push_str("], \"segments\": [");
        for (k, s) in journey.segments.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"ns\": {}}}",
                escape(&s.name),
                s.ns
            ));
        }
        out.push_str("]}");
    }
    out.push_str(if detailed == 0 {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::profile::Profile;
    use crate::Recorder;

    /// Hand-built two-hop journey: an origin send from engine context, a
    /// middle machine that forwards, and a final machine that consumes.
    fn two_hop() -> std::rc::Rc<Recorder> {
        let rec = Recorder::new(128);
        // Origin send (no packet in flight): journey 0 allocated here.
        let j = rec.tx_journey();
        assert_eq!(j, 0);
        rec.packet_tx_journey(1_000, "eth0", 60, 10, 500, 90, Some(j));

        // Hop 1 on machine "fwd": arrives exactly at 1_000+10+500+90.
        let ev = rec.intern("Udp.PacketRecv");
        let dom = rec.intern("fwd-ext");
        rec.packet_arrival_hop(1_600, "eth0", "fwd", 60, Some(j));
        let span = rec.handler_enter(1_700, ev, dom);
        // Forwarding tx inherits the journey.
        rec.packet_tx(2_000, "eth0", 60, 0, 500, 100);
        rec.handler_exit(2_200, ev, dom, span);
        rec.packet_done();

        // Hop 2 on machine "backend": arrives at 2_000+0+500+100.
        rec.packet_arrival_hop(2_600, "eth0", "backend", 60, Some(j));
        let span = rec.handler_enter(2_700, ev, dom);
        rec.handler_exit(3_000, ev, dom, span);
        rec.packet_done();
        rec
    }

    #[test]
    fn chain_links_hops_and_segments_telescope_exactly() {
        let rec = two_hop();
        let js = build(&Profile::build(&rec));
        assert_eq!(js.journeys.len(), 1);
        let j = &js.journeys[0];
        assert_eq!(j.journey, 0);
        assert_eq!(j.chain.len(), 2);
        assert_eq!(j.chain[0].machine, "fwd");
        assert_eq!(j.chain[1].machine, "backend");
        assert_eq!(j.start_ns, 1_000, "clock starts at the origin handover");
        assert_eq!(j.end_ns, 3_000);
        assert_eq!(j.end_to_end_ns, 2_000);
        let sum: u64 = j.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, j.end_to_end_ns, "zero unattributed nanoseconds");
        // The forwarder's post-handover unwind is off the critical path.
        assert_eq!(j.chain[0].overlap_ns, 200);
        assert_eq!(j.overlap_ns, 200);
        // Wire names carry the machine pair.
        assert!(j
            .segments
            .iter()
            .any(|s| s.name == "fwd->backend.wire.serialize"));
        assert!(j
            .segments
            .iter()
            .any(|s| s.name.starts_with("backend.udp.")));
    }

    #[test]
    fn filtered_broadcast_copies_stay_off_the_chain() {
        let rec = two_hop();
        // A third arrival of the same journey that the MAC filter shed.
        rec.packet_arrival_hop(2_600, "eth0", "bystander", 60, Some(0));
        rec.packet_drop(2_600, "ether", "mac_filter");
        rec.packet_done();
        let js = build(&Profile::build(&rec));
        let j = &js.journeys[0];
        assert_eq!(j.filtered_hops, 1);
        assert_eq!(j.chain.len(), 2, "filtered copy not on the chain");
        assert_eq!(j.end_ns, 3_000, "filtered copy doesn't move the end");
    }

    #[test]
    fn coalesced_style_delayed_arrival_becomes_queue_wait() {
        let rec = Recorder::new(64);
        let j = rec.tx_journey();
        rec.packet_tx_journey(1_000, "eth0", 60, 0, 500, 100, Some(j));
        // Arrival record 400 ns after the wire arrival (rx-ring wait).
        rec.packet_arrival_hop(2_000, "eth0", "dut", 60, Some(j));
        rec.packet_done();
        let js = build(&Profile::build(&rec));
        let jo = &js.journeys[0];
        assert_eq!(jo.chain[0].queue_wait_ns, 400);
        let sum: u64 = jo.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, jo.end_to_end_ns);
        assert!(jo.segments.iter().any(|s| s.name == "dut.rx_queue"));
    }

    #[test]
    fn tx_ring_backlog_becomes_a_tx_queue_segment() {
        let rec = Recorder::new(64);
        let j = rec.tx_journey();
        // Origin send waited 150 ns, 100 of them behind its own tx ring.
        rec.packet_tx_queued(1_000, "eth0", 60, 100, 150, 500, 100, Some(j));
        rec.packet_arrival_hop(1_750, "eth0", "dut", 60, Some(j));
        rec.packet_done();
        let js = build(&Profile::build(&rec));
        let jo = &js.journeys[0];
        let get = |name: &str| jo.segments.iter().find(|s| s.name == name).map(|s| s.ns);
        assert_eq!(get("origin.tx_queue"), Some(100));
        assert_eq!(get("origin->dut.wire.wait"), Some(50));
        let sum: u64 = jo.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, jo.end_to_end_ns, "queue split keeps the telescope");
    }

    #[test]
    fn journeys_json_is_valid_and_caps_are_stated() {
        let rec = two_hop();
        let js = build(&Profile::build(&rec));
        let body = journeys_json(&js, 0);
        validate(&body).expect("journey JSON well-formed");
        assert!(body.contains("\"schema\": \"plexus.journey.v1\""));
        assert!(body.contains("\"journeys_total\": 1"));
        assert!(body.contains("\"journeys_detailed\": 0"));
        let detailed = journeys_json(&js, 8);
        validate(&detailed).expect("detailed journey JSON well-formed");
        assert!(detailed.contains("\"machine\": \"backend\""));
        assert_eq!(detailed, journeys_json(&build(&Profile::build(&rec)), 8));
    }
}
