//! Post-hoc cycle accounting over the flight-recorder ring.
//!
//! [`Profile::build`] folds the raw [`TraceRecord`] stream into per-packet
//! **span trees** (handler enter/exit pairs, correlated by span ID) and
//! **attribution slices**: every simulated nanosecond between a packet's
//! arrival and its last record is assigned to exactly one
//! `(layer, domain, handler)` triple. The slice model is a *gap
//! attribution*: the interval between two consecutive records belonging to
//! the same packet is charged to the structural step that produced the
//! **later** record — the guard evaluation that just finished, the
//! dispatch work that led to a top-level handler entry (a *nested*
//! entry's gap is charged to the enclosing handler, whose body ran up to
//! the point of re-raising), the handler body that just exited, the
//! driver work that readied a frame for transmission. Slices tile the
//! packet's window exactly by construction, which is the invariant the
//! determinism and waterfall tests pin:
//!
//! > sum of slice durations == last record timestamp − arrival timestamp
//!
//! Ring wraparound is handled explicitly, never silently: a packet whose
//! arrival record was overwritten becomes an *orphan* (reported in the
//! [`TruncationReport`], excluded from aggregates), and enter/exit records
//! whose partner is missing are counted instead of producing negative or
//! unbounded durations.
//!
//! On top of the per-packet profiles sit [`Profile::aggregate`]
//! (mean/p50/p99 per attribution triple across packets) and
//! [`pingpong_waterfall`], which stitches request/reply packet pairs plus
//! the [`TraceEvent::PacketTx`] wire phases into per-round latency
//! waterfalls whose segments sum to the measured RTT exactly.

use std::collections::BTreeMap;

use crate::json::escape;
use crate::{Recorder, TraceEvent, TraceRecord};

/// An attribution target: which layer, protection domain, and handler
/// (or structural step) owns a slice of simulated time.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Triple {
    /// Protocol layer, derived from the event-name prefix (`Ethernet.*`
    /// → `ethernet`), or a structural pseudo-layer (`driver`, `boundary`,
    /// `engine`).
    pub layer: String,
    /// Owning protection domain (`kernel` for dispatch/guard work).
    pub domain: String,
    /// Handler (event name) or step (`guard`, `dispatch`, `tx`, ...).
    pub handler: String,
}

/// One attributed interval of a packet's processing window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slice {
    /// Interval start (exclusive bound of the previous slice).
    pub start_ns: u64,
    /// Interval end — the timestamp of the record that closed it.
    pub end_ns: u64,
    /// Who the interval is charged to.
    pub at: Triple,
}

impl Slice {
    /// Duration of the slice.
    pub fn ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A handler execution span, with nested child spans (handlers invoked by
/// re-raises from inside this handler's body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Span-correlation ID from the enter/exit records.
    pub span: u64,
    /// Event (table) name the handler was installed on.
    pub event: String,
    /// Owning protection domain.
    pub domain: String,
    /// Layer derived from the event name.
    pub layer: String,
    /// Handler entry timestamp.
    pub enter_ns: u64,
    /// Handler exit timestamp (synthesized at the packet's last record
    /// when the exit was lost; see [`Span::complete`]).
    pub exit_ns: u64,
    /// `exit_ns - enter_ns`.
    pub total_ns: u64,
    /// Time spent in direct child spans.
    pub child_ns: u64,
    /// `total_ns - child_ns`: time charged to this handler itself.
    pub self_ns: u64,
    /// False when the matching exit record was missing and the span was
    /// closed synthetically.
    pub complete: bool,
    /// Handlers invoked from inside this one.
    pub children: Vec<Span>,
}

impl Span {
    fn finalize(mut self, exit_ns: u64, complete: bool) -> Span {
        self.exit_ns = exit_ns;
        self.complete = complete;
        self.total_ns = exit_ns.saturating_sub(self.enter_ns);
        self.child_ns = self.children.iter().map(|c| c.total_ns).sum();
        self.self_ns = self.total_ns.saturating_sub(self.child_ns);
        self
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Span)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// A resolved [`TraceEvent::PacketTx`] record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// Instant the driver finished its CPU work and handed the frame over.
    pub at_ns: u64,
    /// Transmitting NIC name.
    pub nic: String,
    /// Frame length.
    pub bytes: u32,
    /// The share of `wait_ns` spent behind this NIC's own tx backlog
    /// (ring/doorbell queue); the journey pass shows it as `tx_queue`.
    pub queue_ns: u64,
    /// Queueing delay before serialization started.
    pub wait_ns: u64,
    /// Serialization time.
    pub ser_ns: u64,
    /// One-way propagation.
    pub prop_ns: u64,
    /// The journey the transmitted frame carries across the wire. Inside a
    /// receive chain this is the chain's own journey unless the sender
    /// called `journey_break` first, in which case it is the fresh journey
    /// the delivery will start.
    pub journey: Option<u64>,
}

/// The profile of one packet's processing window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketProfile {
    /// Per-packet ID assigned at arrival.
    pub packet: u64,
    /// World-global journey this hop belongs to (None for orphans whose
    /// arrival record was lost).
    pub journey: Option<u64>,
    /// Machine that received the frame (None for orphans or NICs built
    /// outside a `World`).
    pub host: Option<String>,
    /// Arriving NIC (None for orphans whose arrival record was lost).
    pub nic: Option<String>,
    /// Frame length at arrival (0 for orphans).
    pub bytes: u32,
    /// First retained record timestamp (the arrival, unless orphaned).
    pub first_ns: u64,
    /// Last retained record timestamp.
    pub last_ns: u64,
    /// Root handler spans.
    pub spans: Vec<Span>,
    /// Attribution slices tiling `[first_ns, last_ns]`.
    pub slices: Vec<Slice>,
    /// Frames this packet's chain handed to a transmitter.
    pub txs: Vec<TxRecord>,
    /// Drops recorded during the window, as `(layer, reason)`.
    pub drops: Vec<(String, String)>,
    /// True when ring wraparound ate the packet's arrival — durations for
    /// this packet are untrustworthy and it is excluded from aggregates.
    pub orphan: bool,
}

impl PacketProfile {
    /// Total attributed time; equals `last_ns - first_ns` by construction.
    pub fn attributed_ns(&self) -> u64 {
        self.slices.iter().map(Slice::ns).sum()
    }

    /// Entry timestamps of spans owned by `domain`, in record order.
    pub fn enters_of_domain(&self, domain: &str) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &self.spans {
            s.visit(&mut |sp| {
                if sp.domain == domain {
                    out.push(sp.enter_ns);
                }
            });
        }
        out
    }
}

/// What ring wraparound cost this profile, reported instead of silently
/// producing negative or orphaned durations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TruncationReport {
    /// Records overwritten before the snapshot was taken.
    pub dropped_records: u64,
    /// Sequence number of the oldest retained record (non-zero means the
    /// stream has a dropped prefix).
    pub first_retained_seq: u64,
    /// Packets whose arrival record was lost; excluded from aggregates.
    pub orphan_packets: Vec<u64>,
    /// Enter records whose exit never appeared (span closed synthetically).
    pub unmatched_enters: u64,
    /// Exit records whose enter was lost to the wraparound.
    pub unmatched_exits: u64,
}

impl TruncationReport {
    /// True when the ring kept the whole stream.
    pub fn clean(&self) -> bool {
        self.dropped_records == 0
            && self.first_retained_seq == 0
            && self.orphan_packets.is_empty()
            && self.unmatched_enters == 0
            && self.unmatched_exits == 0
    }
}

/// Aggregate statistics for one attribution triple across packets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TripleStat {
    /// The attribution target.
    pub at: Triple,
    /// Total nanoseconds across all non-orphan packets.
    pub total_ns: u64,
    /// Number of slices contributing.
    pub slices: u64,
    /// Number of packets with at least one slice for this triple.
    pub packets: u64,
    /// Mean of the per-packet sums.
    pub mean_ns: u64,
    /// Median (nearest-rank) of the per-packet sums.
    pub p50_ns: u64,
    /// 99th percentile (nearest-rank) of the per-packet sums.
    pub p99_ns: u64,
}

/// The full cycle-accounting profile of a recorded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Per-packet profiles, in packet-ID order.
    pub packets: Vec<PacketProfile>,
    /// What wraparound cost, if anything.
    pub truncation: TruncationReport,
    /// Transmissions recorded outside any packet window (e.g. a send
    /// initiated from engine or timer context rather than a receive
    /// chain — the video server's frame pushes are all of this kind).
    pub unattributed_txs: Vec<TxRecord>,
    /// Drops recorded outside any packet window, as
    /// `(layer, reason, count)` sorted by layer then reason.
    pub unattributed_drops: Vec<(String, String, u64)>,
}

/// Lowercased event-name prefix: `"Ethernet.PacketRecv"` → `"ethernet"`.
pub fn layer_of(event_name: &str) -> String {
    event_name
        .split('.')
        .next()
        .unwrap_or(event_name)
        .to_ascii_lowercase()
}

/// Nearest-rank percentile over a sorted slice (`q` in percent).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

fn resolve_tx(rec: &Recorder, r: &TraceRecord) -> Option<TxRecord> {
    if let TraceEvent::PacketTx {
        nic,
        bytes,
        queue_ns,
        wait_ns,
        ser_ns,
        prop_ns,
    } = r.event
    {
        Some(TxRecord {
            at_ns: r.at_ns,
            nic: rec.name(nic),
            bytes,
            queue_ns,
            wait_ns,
            ser_ns,
            prop_ns,
            journey: r.journey,
        })
    } else {
        None
    }
}

impl Profile {
    /// Folds the recorder's retained ring into a profile.
    pub fn build(rec: &Recorder) -> Profile {
        let records = rec.events();
        let mut truncation = TruncationReport {
            dropped_records: rec.overwritten(),
            first_retained_seq: records.first().map_or(0, |r| r.seq),
            ..TruncationReport::default()
        };

        let mut by_packet: BTreeMap<u64, Vec<TraceRecord>> = BTreeMap::new();
        let mut unattributed_txs = Vec::new();
        let mut drops: BTreeMap<(String, String), u64> = BTreeMap::new();
        for r in &records {
            match r.packet {
                Some(p) => by_packet.entry(p).or_default().push(*r),
                None => match r.event {
                    TraceEvent::PacketTx { .. } => {
                        unattributed_txs.push(resolve_tx(rec, r).expect("matched PacketTx"));
                    }
                    TraceEvent::Drop { layer, reason } => {
                        *drops
                            .entry((rec.name(layer), rec.name(reason)))
                            .or_insert(0) += 1;
                    }
                    _ => {}
                },
            }
        }

        let mut packets = Vec::with_capacity(by_packet.len());
        for (id, recs) in by_packet {
            let p = build_packet(rec, id, &recs, &mut truncation);
            if p.orphan {
                truncation.orphan_packets.push(id);
            }
            packets.push(p);
        }
        Profile {
            packets,
            truncation,
            unattributed_txs,
            unattributed_drops: drops
                .into_iter()
                .map(|((layer, reason), n)| (layer, reason, n))
                .collect(),
        }
    }

    /// Per-triple statistics over the non-orphan packets, in triple order.
    pub fn aggregate(&self) -> Vec<TripleStat> {
        // Per-packet sums first, so the percentiles describe "ns this
        // triple cost *a packet*", matching Figure 5's per-RTT bars.
        let mut sums: BTreeMap<Triple, Vec<u64>> = BTreeMap::new();
        let mut counts: BTreeMap<Triple, u64> = BTreeMap::new();
        for p in self.packets.iter().filter(|p| !p.orphan) {
            let mut per_packet: BTreeMap<&Triple, u64> = BTreeMap::new();
            for s in &p.slices {
                *per_packet.entry(&s.at).or_insert(0) += s.ns();
                *counts.entry(s.at.clone()).or_insert(0) += 1;
            }
            for (t, ns) in per_packet {
                sums.entry(t.clone()).or_default().push(ns);
            }
        }
        sums.into_iter()
            .map(|(at, mut per_packet)| {
                per_packet.sort_unstable();
                let total: u64 = per_packet.iter().sum();
                let n = per_packet.len() as u64;
                TripleStat {
                    slices: counts.get(&at).copied().unwrap_or(0),
                    total_ns: total,
                    packets: n,
                    mean_ns: total / n.max(1),
                    p50_ns: percentile(&per_packet, 50.0),
                    p99_ns: percentile(&per_packet, 99.0),
                    at,
                }
            })
            .collect()
    }
}

/// Builds one packet's profile from its record stream (already in
/// sequence order).
fn build_packet(
    rec: &Recorder,
    id: u64,
    recs: &[TraceRecord],
    truncation: &mut TruncationReport,
) -> PacketProfile {
    let first = &recs[0];
    let (nic, host, bytes, orphan) = match first.event {
        TraceEvent::PacketArrival { nic, host, bytes } => {
            let host = rec.name(host);
            let host = if host.is_empty() { None } else { Some(host) };
            (Some(rec.name(nic)), host, bytes, false)
        }
        // Wraparound ate the arrival: keep what we can see, but flag it.
        _ => (None, None, 0, true),
    };
    let journey = if orphan { None } else { first.journey };

    let mut spans: Vec<Span> = Vec::new(); // finished roots
    let mut stack: Vec<Span> = Vec::new(); // open spans, innermost last
    let mut slices: Vec<Slice> = Vec::new();
    let mut txs: Vec<TxRecord> = Vec::new();
    let mut drops: Vec<(String, String)> = Vec::new();
    let mut prev_ns = first.at_ns;
    let last_ns = recs.last().expect("non-empty packet stream").at_ns;

    fn close_span(stack: &mut [Span], spans: &mut Vec<Span>, sp: Span) {
        match stack.last_mut() {
            Some(parent) => parent.children.push(sp),
            None => spans.push(sp),
        }
    }

    for r in recs.iter().skip(if orphan { 0 } else { 1 }) {
        let cur_domain = || {
            stack
                .last()
                .map_or_else(|| String::from("kernel"), |s| s.domain.clone())
        };
        let at = match r.event {
            TraceEvent::GuardEval { event, .. } => Some(Triple {
                layer: layer_of(&rec.name(event)),
                domain: String::from("kernel"),
                handler: String::from("guard"),
            }),
            TraceEvent::HandlerEnter {
                event,
                domain,
                span,
            } => {
                let event_name = rec.name(event);
                // A top-level entry follows pure kernel dispatch work
                // (thread spawn, context switch, handler lookup). A
                // *nested* entry's gap is dominated by the enclosing
                // handler's own body — it ran up to the point of calling
                // raise() — so the parent is charged, keeping extension
                // time attributed to the extension's domain.
                let triple = match stack.last() {
                    Some(parent) => Triple {
                        layer: parent.layer.clone(),
                        domain: parent.domain.clone(),
                        handler: parent.event.clone(),
                    },
                    None => Triple {
                        layer: layer_of(&event_name),
                        domain: String::from("kernel"),
                        handler: String::from("dispatch"),
                    },
                };
                stack.push(Span {
                    span,
                    layer: layer_of(&event_name),
                    event: event_name,
                    domain: rec.name(domain),
                    enter_ns: r.at_ns,
                    exit_ns: r.at_ns,
                    total_ns: 0,
                    child_ns: 0,
                    self_ns: 0,
                    complete: false,
                    children: Vec::new(),
                });
                Some(triple)
            }
            TraceEvent::HandlerExit {
                event,
                domain,
                span,
            } => {
                let event_name = rec.name(event);
                let triple = Triple {
                    layer: layer_of(&event_name),
                    domain: rec.name(domain),
                    handler: event_name,
                };
                match stack.iter().rposition(|s| s.span == span) {
                    Some(pos) => {
                        // Anything still open above the match lost its own
                        // exit — close it here rather than leak or nest
                        // wrongly.
                        while stack.len() > pos + 1 {
                            let sp = stack.pop().expect("len checked");
                            truncation.unmatched_enters += 1;
                            let sp = sp.finalize(r.at_ns, false);
                            close_span(&mut stack, &mut spans, sp);
                        }
                        let sp = stack.pop().expect("pos in range");
                        let sp = sp.finalize(r.at_ns, true);
                        close_span(&mut stack, &mut spans, sp);
                    }
                    None => truncation.unmatched_exits += 1,
                }
                Some(triple)
            }
            TraceEvent::Drop { layer, reason } => {
                let l = rec.name(layer);
                let re = rec.name(reason);
                drops.push((l.clone(), re.clone()));
                Some(Triple {
                    layer: l,
                    domain: cur_domain(),
                    handler: re,
                })
            }
            TraceEvent::Crossing { dir, .. } => Some(Triple {
                layer: String::from("boundary"),
                domain: cur_domain(),
                handler: String::from(dir.name()),
            }),
            TraceEvent::PacketTx { .. } => {
                txs.push(resolve_tx(rec, r).expect("matched PacketTx"));
                Some(Triple {
                    layer: String::from("driver"),
                    domain: cur_domain(),
                    handler: String::from("tx"),
                })
            }
            TraceEvent::TimerFire => Some(Triple {
                layer: String::from("engine"),
                domain: cur_domain(),
                handler: String::from("timer"),
            }),
            // Observability events are attribution-neutral: they carry no
            // CPU work of their own (samples share their neighbor's
            // timestamp; interrupts are charged by the driver glue), so
            // they produce no slice and leave the gap to the next
            // structural record.
            TraceEvent::RxInterrupt { .. } | TraceEvent::LatencySample { .. } => None,
            // A second arrival can't appear mid-packet (arrivals assign a
            // fresh ID); if the stream is orphaned it may *start* with
            // arbitrary records, attributed to the driver.
            TraceEvent::PacketArrival { .. } => Some(Triple {
                layer: String::from("driver"),
                domain: String::from("kernel"),
                handler: String::from("arrival"),
            }),
        };
        if let Some(at) = at {
            slices.push(Slice {
                start_ns: prev_ns,
                end_ns: r.at_ns,
                at,
            });
            prev_ns = r.at_ns;
        }
    }

    // A trailing attribution-neutral record (latency sample, rx
    // interrupt) can leave the gap to the window's end uncharged; close
    // it against the innermost open domain so slices still tile
    // `[first_ns, last_ns]`.
    if prev_ns < last_ns {
        slices.push(Slice {
            start_ns: prev_ns,
            end_ns: last_ns,
            at: Triple {
                layer: String::from("engine"),
                domain: stack
                    .last()
                    .map_or_else(|| String::from("kernel"), |s| s.domain.clone()),
                handler: String::from("tail"),
            },
        });
    }

    // Enters whose exits never made the ring: close at the window's end.
    while let Some(sp) = stack.pop() {
        truncation.unmatched_enters += 1;
        let sp = sp.finalize(last_ns, false);
        match stack.last_mut() {
            Some(parent) => parent.children.push(sp),
            None => spans.push(sp),
        }
    }

    PacketProfile {
        packet: id,
        journey,
        host,
        nic,
        bytes,
        first_ns: first.at_ns,
        last_ns,
        spans,
        slices,
        txs,
        drops,
        orphan,
    }
}

// --- ping-pong waterfall ------------------------------------------------

/// One named segment of a round-trip waterfall.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Segment name (`client.send`, `server.udp`, `reply.wire.serialize`,
    /// ...).
    pub name: String,
    /// Simulated nanoseconds.
    pub ns: u64,
}

/// The waterfall of one round trip. Segments sum to `rtt_ns` exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundProfile {
    /// 1-based round number.
    pub round: u32,
    /// Round-trip time: app-handler entry minus the instant the request
    /// send began.
    pub rtt_ns: u64,
    /// Ordered waterfall segments.
    pub segments: Vec<Segment>,
    /// CPU time spent unwinding handler stacks *after* the frame was on
    /// the wire — real work, but off the latency-critical path (it
    /// overlaps wire time), so it is reported separately rather than
    /// inside the waterfall.
    pub overlap_ns: u64,
}

/// Aggregate stats for one segment name across rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentStat {
    /// Segment name.
    pub name: String,
    /// Sum over rounds.
    pub total_ns: u64,
    /// Mean over rounds.
    pub mean_ns: u64,
    /// Nearest-rank median over rounds.
    pub p50_ns: u64,
    /// Nearest-rank 99th percentile over rounds.
    pub p99_ns: u64,
}

/// Per-round latency waterfalls for a serial request/reply ping-pong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waterfall {
    /// The application domain whose handler entries delimit rounds.
    pub app_domain: String,
    /// One waterfall per completed round.
    pub rounds: Vec<RoundProfile>,
    /// Per-segment aggregates (mean/p50/p99 over rounds), in first-seen
    /// segment order.
    pub segment_stats: Vec<SegmentStat>,
}

/// Sums `slices[0..=idx]` grouped by layer, in first-seen order.
fn layer_sums(slices: &[Slice], upto: usize, prefix: &str) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::new();
    for s in &slices[..=upto] {
        let name = format!("{prefix}.{}", s.at.layer);
        match out.iter_mut().find(|seg| seg.name == name) {
            Some(seg) => seg.ns += s.ns(),
            None => out.push(Segment { name, ns: s.ns() }),
        }
    }
    out
}

/// Index of the first slice produced by a `PacketTx` record.
fn tx_slice_idx(p: &PacketProfile) -> Option<usize> {
    p.slices
        .iter()
        .position(|s| s.at.layer == "driver" && s.at.handler == "tx")
}

/// Index of the last slice ending at the app handler's entry timestamp.
/// Slices tile contiguously, so everything up to this index covers
/// exactly `[first_ns, enter_ns]` (later zero-length slices at the same
/// timestamp contribute nothing).
fn app_enter_slice_idx(p: &PacketProfile, enter_ns: u64) -> Option<usize> {
    p.slices.iter().rposition(|s| s.end_ns == enter_ns)
}

/// Builds per-round waterfalls for a serial ping-pong scenario
/// (`udp_rtt`-shaped): packets alternate request (even IDs, processed by
/// the responder) and reply (odd IDs, processed by the initiator), and a
/// handler owned by `app_domain` runs at both endpoints. Round `k`'s RTT
/// is the time from the initiator starting send `k` to its app handler
/// observing reply `k` — with serial rounds and a send that begins at the
/// app handler's entry timestamp, that is exactly the gap between
/// consecutive app-handler entries on the initiator.
///
/// Fails (with a reason) when the trace does not look like a completed
/// ping-pong: odd packet count, truncated packets, missing transmissions
/// or app-handler entries.
pub fn pingpong_waterfall(profile: &Profile, app_domain: &str) -> Result<Waterfall, String> {
    let packets = &profile.packets;
    if packets.is_empty() {
        return Err(String::from("no packets in profile"));
    }
    if !packets.len().is_multiple_of(2) {
        return Err(format!(
            "expected request/reply packet pairs, got {} packets",
            packets.len()
        ));
    }
    if let Some(p) = packets.iter().find(|p| p.orphan) {
        return Err(format!(
            "packet {} is truncated (ring wraparound); profile with a larger ring",
            p.packet
        ));
    }

    let rounds_n = packets.len() / 2;
    let mut rounds = Vec::with_capacity(rounds_n);
    for k in 0..rounds_n {
        let req = &packets[2 * k];
        let rep = &packets[2 * k + 1];

        // Where the initiator's send began, and the tx record that frame
        // produced. Round 1's send comes from engine context (recorded
        // outside any packet window); later sends happen inside the
        // previous reply's handler chain.
        let (send_start, client_tx) = if k == 0 {
            let tx = profile
                .unattributed_txs
                .first()
                .ok_or("no unattributed tx for the initial send")?;
            (0u64, tx.clone())
        } else {
            let prev = &packets[2 * k - 1];
            let enter = *prev
                .enters_of_domain(app_domain)
                .first()
                .ok_or_else(|| format!("packet {}: no {app_domain} handler", prev.packet))?;
            let tx = prev
                .txs
                .first()
                .ok_or_else(|| format!("packet {}: no tx record", prev.packet))?;
            (enter, tx.clone())
        };

        let server_tx = req
            .txs
            .first()
            .ok_or_else(|| format!("packet {}: no reply tx record", req.packet))?;
        let reply_enter = *rep
            .enters_of_domain(app_domain)
            .first()
            .ok_or_else(|| format!("packet {}: no {app_domain} handler", rep.packet))?;

        let mut segments = vec![
            Segment {
                name: String::from("client.send"),
                ns: client_tx.at_ns - send_start,
            },
            Segment {
                name: String::from("request.wire.wait"),
                ns: client_tx.wait_ns,
            },
            Segment {
                name: String::from("request.wire.serialize"),
                ns: client_tx.ser_ns,
            },
            Segment {
                name: String::from("request.wire.propagate"),
                ns: client_tx.prop_ns,
            },
        ];
        let srv_upto =
            tx_slice_idx(req).ok_or_else(|| format!("packet {}: no tx slice", req.packet))?;
        segments.extend(layer_sums(&req.slices, srv_upto, "server"));
        segments.extend([
            Segment {
                name: String::from("reply.wire.wait"),
                ns: server_tx.wait_ns,
            },
            Segment {
                name: String::from("reply.wire.serialize"),
                ns: server_tx.ser_ns,
            },
            Segment {
                name: String::from("reply.wire.propagate"),
                ns: server_tx.prop_ns,
            },
        ]);
        let cli_upto = app_enter_slice_idx(rep, reply_enter)
            .ok_or_else(|| format!("packet {}: no app dispatch slice", rep.packet))?;
        segments.extend(layer_sums(&rep.slices, cli_upto, "client"));

        let overlap = (req.last_ns - server_tx.at_ns)
            + if k == 0 {
                0
            } else {
                packets[2 * k - 1].last_ns - client_tx.at_ns
            };

        rounds.push(RoundProfile {
            round: (k + 1) as u32,
            rtt_ns: reply_enter - send_start,
            segments,
            overlap_ns: overlap,
        });
    }

    // Per-segment aggregates, in first-seen order; a segment absent from a
    // round contributes zero (layer mixes can differ between rounds).
    let mut names: Vec<String> = Vec::new();
    for r in &rounds {
        for s in &r.segments {
            if !names.contains(&s.name) {
                names.push(s.name.clone());
            }
        }
    }
    let segment_stats = names
        .into_iter()
        .map(|name| {
            let mut per_round: Vec<u64> = rounds
                .iter()
                .map(|r| {
                    r.segments
                        .iter()
                        .filter(|s| s.name == name)
                        .map(|s| s.ns)
                        .sum()
                })
                .collect();
            per_round.sort_unstable();
            let total: u64 = per_round.iter().sum();
            SegmentStat {
                name,
                total_ns: total,
                mean_ns: total / (per_round.len() as u64).max(1),
                p50_ns: percentile(&per_round, 50.0),
                p99_ns: percentile(&per_round, 99.0),
            }
        })
        .collect();

    Ok(Waterfall {
        app_domain: app_domain.to_string(),
        rounds,
        segment_stats,
    })
}

// --- JSON export --------------------------------------------------------

fn span_json(s: &Span, out: &mut String) {
    out.push_str(&format!(
        "{{\"span\": {}, \"event\": \"{}\", \"domain\": \"{}\", \"layer\": \"{}\", \
         \"enter_ns\": {}, \"exit_ns\": {}, \"total_ns\": {}, \"self_ns\": {}, \
         \"child_ns\": {}, \"complete\": {}, \"children\": [",
        s.span,
        escape(&s.event),
        escape(&s.domain),
        escape(&s.layer),
        s.enter_ns,
        s.exit_ns,
        s.total_ns,
        s.self_ns,
        s.child_ns,
        s.complete
    ));
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(c, out);
    }
    out.push_str("]}");
}

fn waterfall_json(w: &Waterfall, out: &mut String) {
    out.push_str(&format!(
        "{{\"app_domain\": \"{}\", \"rounds\": [",
        escape(&w.app_domain)
    ));
    for (i, r) in w.rounds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\n    {{\"round\": {}, \"rtt_ns\": {}, \"overlap_ns\": {}, \"segments\": [",
            r.round, r.rtt_ns, r.overlap_ns
        ));
        for (j, s) in r.segments.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"ns\": {}}}",
                escape(&s.name),
                s.ns
            ));
        }
        out.push_str("]}");
    }
    out.push_str("], \"segments\": [");
    for (i, s) in w.segment_stats.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"total_ns\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}",
            escape(&s.name),
            s.total_ns,
            s.mean_ns,
            s.p50_ns,
            s.p99_ns
        ));
    }
    out.push_str("]}");
}

/// Renders the profile as deterministic JSON.
///
/// Per-packet detail (span trees and slices) is included for the first
/// `max_packet_detail` packets only — large scenarios produce hundreds of
/// thousands of slices — and the cap is stated in the output
/// (`packets_total` vs `packets_detailed`) rather than applied silently.
/// Aggregates always cover every non-orphan packet.
pub fn profile_json(
    p: &Profile,
    waterfall: Option<&Waterfall>,
    max_packet_detail: usize,
) -> String {
    let t = &p.truncation;
    let mut out = String::from("{\n  \"schema\": \"plexus.profile.v1\",\n");
    out.push_str(&format!(
        "  \"truncation\": {{\"dropped_records\": {}, \"first_retained_seq\": {}, \
         \"orphan_packets\": [{}], \"unmatched_enters\": {}, \"unmatched_exits\": {}}},\n",
        t.dropped_records,
        t.first_retained_seq,
        t.orphan_packets
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        t.unmatched_enters,
        t.unmatched_exits
    ));
    out.push_str(&format!("  \"packets_total\": {},\n", p.packets.len()));
    let detailed = p.packets.len().min(max_packet_detail);
    out.push_str(&format!("  \"packets_detailed\": {detailed},\n"));

    // Work that ran outside any packet window (timer- or engine-driven
    // sends and sheds) — for push-style scenarios like the video server
    // this is where nearly everything lands.
    let (frames, bytes, wait, ser, prop) =
        p.unattributed_txs
            .iter()
            .fold((0u64, 0u64, 0u64, 0u64, 0u64), |(f, b, w, s, pr), tx| {
                (
                    f + 1,
                    b + u64::from(tx.bytes),
                    w + tx.wait_ns,
                    s + tx.ser_ns,
                    pr + tx.prop_ns,
                )
            });
    out.push_str(&format!(
        "  \"unattributed_tx\": {{\"frames\": {frames}, \"bytes\": {bytes}, \
         \"wait_ns\": {wait}, \"ser_ns\": {ser}, \"prop_ns\": {prop}}},\n"
    ));
    out.push_str("  \"unattributed_drops\": [");
    for (i, (layer, reason, n)) in p.unattributed_drops.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"layer\": \"{}\", \"reason\": \"{}\", \"count\": {n}}}",
            escape(layer),
            escape(reason)
        ));
    }
    out.push_str("],\n");

    out.push_str("  \"aggregate\": [");
    for (i, s) in p.aggregate().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"layer\": \"{}\", \"domain\": \"{}\", \"handler\": \"{}\", \
             \"total_ns\": {}, \"slices\": {}, \"packets\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}",
            escape(&s.at.layer),
            escape(&s.at.domain),
            escape(&s.at.handler),
            s.total_ns,
            s.slices,
            s.packets,
            s.mean_ns,
            s.p50_ns,
            s.p99_ns
        ));
    }
    out.push_str("\n  ],\n");

    if let Some(w) = waterfall {
        out.push_str("  \"waterfall\": ");
        waterfall_json(w, &mut out);
        out.push_str(",\n");
    }

    out.push_str("  \"packets\": [");
    for (i, pkt) in p.packets.iter().take(detailed).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"packet\": {}, \"nic\": {}, \"bytes\": {}, \"first_ns\": {}, \
             \"last_ns\": {}, \"attributed_ns\": {}, \"orphan\": {}, \"drops\": [{}], \
             \"spans\": [",
            pkt.packet,
            match &pkt.nic {
                Some(n) => format!("\"{}\"", escape(n)),
                None => String::from("null"),
            },
            pkt.bytes,
            pkt.first_ns,
            pkt.last_ns,
            pkt.attributed_ns(),
            pkt.orphan,
            pkt.drops
                .iter()
                .map(|(l, r)| format!("[\"{}\", \"{}\"]", escape(l), escape(r)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for (j, s) in pkt.spans.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            span_json(s, &mut out);
        }
        out.push_str("], \"slices\": [");
        for (j, s) in pkt.slices.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"start_ns\": {}, \"end_ns\": {}, \"layer\": \"{}\", \
                 \"domain\": \"{}\", \"handler\": \"{}\"}}",
                s.start_ns,
                s.end_ns,
                escape(&s.at.layer),
                escape(&s.at.domain),
                escape(&s.at.handler)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::{GuardKind, Recorder};

    /// Two nested handlers with a guard eval between arrival and entry.
    fn nested() -> std::rc::Rc<Recorder> {
        let rec = Recorder::new(64);
        rec.packet_arrival(1_000, "Ethernet", 60);
        let eth = rec.intern("Ethernet.PacketRecv");
        let udp = rec.intern("Udp.PacketRecv");
        let kernel = rec.intern("ip");
        let app = rec.intern("echo-ext");
        rec.guard_eval(1_300, eth, GuardKind::Verified, true);
        let outer = rec.handler_enter(1_500, eth, kernel);
        let inner = rec.handler_enter(2_000, udp, app);
        rec.packet_tx(4_000, "Ethernet", 60, 100, 500, 1_000);
        rec.handler_exit(5_000, udp, app, inner);
        rec.handler_exit(6_000, eth, kernel, outer);
        rec.packet_done();
        rec
    }

    #[test]
    fn slices_tile_the_packet_window_exactly() {
        let rec = nested();
        let p = Profile::build(&rec);
        assert!(p.truncation.clean());
        assert_eq!(p.packets.len(), 1);
        let pkt = &p.packets[0];
        assert_eq!(pkt.first_ns, 1_000);
        assert_eq!(pkt.last_ns, 6_000);
        assert_eq!(pkt.attributed_ns(), 5_000, "every ns attributed");
        let total: u64 = pkt.slices.iter().map(Slice::ns).sum();
        assert_eq!(total, pkt.last_ns - pkt.first_ns);
    }

    #[test]
    fn span_tree_separates_self_and_child_time() {
        let rec = nested();
        let p = Profile::build(&rec);
        let pkt = &p.packets[0];
        assert_eq!(pkt.spans.len(), 1, "one root span");
        let root = &pkt.spans[0];
        assert_eq!(root.event, "Ethernet.PacketRecv");
        assert_eq!(root.layer, "ethernet");
        assert_eq!(root.total_ns, 4_500);
        assert_eq!(root.children.len(), 1);
        let child = &root.children[0];
        assert_eq!(child.domain, "echo-ext");
        assert_eq!(child.total_ns, 3_000);
        assert_eq!(root.child_ns, 3_000);
        assert_eq!(root.self_ns, 1_500);
        assert!(root.complete && child.complete);
    }

    #[test]
    fn attribution_follows_the_gap_rule() {
        let rec = nested();
        let p = Profile::build(&rec);
        let s = &p.packets[0].slices;
        // arrival -> guard eval: guard work at ethernet.
        assert_eq!(s[0].at.handler, "guard");
        assert_eq!(s[0].at.layer, "ethernet");
        assert_eq!(s[0].ns(), 300);
        // guard -> enter: dispatch.
        assert_eq!(s[1].at.handler, "dispatch");
        // tx gap runs under the innermost open domain.
        let tx = s.iter().find(|s| s.at.handler == "tx").unwrap();
        assert_eq!(tx.at.layer, "driver");
        assert_eq!(tx.at.domain, "echo-ext");
        // exits charge the handler's own (tail) time to its domain.
        let udp_exit = s.iter().find(|s| s.at.handler == "Udp.PacketRecv").unwrap();
        assert_eq!(udp_exit.at.domain, "echo-ext");
        assert_eq!(udp_exit.at.layer, "udp");
    }

    #[test]
    fn wraparound_produces_orphans_not_negative_durations() {
        // Ring of 5 over a stream of 7 records: the first packet's
        // arrival and enter are overwritten, but its exit survives.
        let rec = Recorder::new(5);
        let ev = rec.intern("Udp.PacketRecv");
        let dom = rec.intern("udp");
        rec.packet_arrival(100, "Ethernet", 60);
        let s0 = rec.handler_enter(200, ev, dom);
        rec.handler_exit(900, ev, dom, s0);
        rec.packet_done();
        rec.packet_arrival(1_000, "Ethernet", 60);
        let s1 = rec.handler_enter(1_100, ev, dom);
        rec.handler_exit(1_900, ev, dom, s1);
        rec.packet_done();
        rec.packet_drop(2_500, "ip", "no_route");

        let p = Profile::build(&rec);
        assert_eq!(p.truncation.dropped_records, 2);
        assert_eq!(p.truncation.first_retained_seq, 2);
        assert_eq!(p.truncation.orphan_packets, vec![0]);
        assert_eq!(p.truncation.unmatched_exits, 1, "packet 0's exit");
        let orphan = p.packets.iter().find(|p| p.packet == 0).unwrap();
        assert!(orphan.orphan);
        let whole = p.packets.iter().find(|p| p.packet == 1).unwrap();
        assert!(!whole.orphan);
        assert_eq!(whole.attributed_ns(), 900);
        // Aggregates exclude the orphan.
        for stat in p.aggregate() {
            assert!(stat.packets <= 1);
        }
    }

    #[test]
    fn lost_exit_is_closed_at_window_end_and_counted() {
        let rec = Recorder::new(64);
        let ev = rec.intern("Udp.PacketRecv");
        let dom = rec.intern("udp");
        rec.packet_arrival(100, "Ethernet", 60);
        rec.handler_enter(200, ev, dom);
        rec.packet_drop(700, "udp", "no_port");
        rec.packet_done();
        let p = Profile::build(&rec);
        assert_eq!(p.truncation.unmatched_enters, 1);
        let pkt = &p.packets[0];
        assert_eq!(pkt.spans.len(), 1);
        assert!(!pkt.spans[0].complete);
        assert_eq!(pkt.spans[0].exit_ns, 700, "closed at the last record");
        assert_eq!(pkt.attributed_ns(), pkt.last_ns - pkt.first_ns);
    }

    #[test]
    fn profile_json_is_valid_and_deterministic() {
        let rec = nested();
        let p = Profile::build(&rec);
        let a = profile_json(&p, None, 16);
        let b = profile_json(&Profile::build(&rec), None, 16);
        assert_eq!(a, b);
        validate(&a).expect("profile JSON well-formed");
        assert!(a.contains("\"schema\": \"plexus.profile.v1\""));
        assert!(a.contains("\"packets_total\": 1"));
    }

    #[test]
    fn detail_cap_is_stated_not_silent() {
        let rec = Recorder::new(64);
        let ev = rec.intern("Udp.PacketRecv");
        let dom = rec.intern("udp");
        for i in 0..3 {
            rec.packet_arrival(i * 1_000, "Ethernet", 60);
            let s = rec.handler_enter(i * 1_000 + 100, ev, dom);
            rec.handler_exit(i * 1_000 + 200, ev, dom, s);
            rec.packet_done();
        }
        let p = Profile::build(&rec);
        let out = profile_json(&p, None, 1);
        validate(&out).expect("valid");
        assert!(out.contains("\"packets_total\": 3"));
        assert!(out.contains("\"packets_detailed\": 1"));
    }
}
