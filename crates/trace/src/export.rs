//! Exporters: Chrome `trace_event` JSON and compact stats JSON.
//!
//! Both emit integers (or fixed-precision decimals derived from integers)
//! in deterministic key order, so the same simulation produces the same
//! bytes on every run — that property is what the determinism tests pin.

use crate::json::escape;
use crate::{Recorder, TraceEvent};

/// Microseconds with fixed 3-decimal precision from integer nanoseconds —
/// no floating point, so formatting is byte-stable.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the retained trace as Chrome `trace_event` JSON (the "JSON
/// Array Format" wrapped in `traceEvents`). Load it at `chrome://tracing`
/// or <https://ui.perfetto.dev>.
///
/// Each packet gets its own `tid` row (`tid = packet id + 1`; row 0 holds
/// events recorded outside any packet), so a packet's guard evaluations,
/// handler spans, and drops line up on one timeline track.
pub fn chrome_trace(rec: &Recorder) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    let mut first = true;
    for r in rec.events() {
        let tid = r.packet.map_or(0, |p| p + 1);
        let (name, cat, ph, args) = match r.event {
            TraceEvent::PacketArrival { nic, host, bytes } => (
                format!("packet arrival ({})", rec.name(nic)),
                "packet",
                "i",
                {
                    let host = rec.name(host);
                    let journey = r.journey.map_or(String::from("null"), |j| j.to_string());
                    if host.is_empty() {
                        format!("{{\"bytes\": {bytes}, \"journey\": {journey}}}")
                    } else {
                        format!(
                            "{{\"bytes\": {bytes}, \"host\": \"{}\", \"journey\": {journey}}}",
                            escape(&host)
                        )
                    }
                },
            ),
            TraceEvent::GuardEval {
                event,
                kind,
                matched,
            } => (
                format!(
                    "guard {} {} {}",
                    rec.name(event),
                    kind.name(),
                    if matched { "accept" } else { "reject" }
                ),
                "guard",
                "i",
                String::from("{}"),
            ),
            TraceEvent::HandlerEnter {
                event,
                domain,
                span,
            } => (
                format!("{} [{}]", rec.name(event), rec.name(domain)),
                "handler",
                "B",
                format!("{{\"span\": {span}}}"),
            ),
            TraceEvent::HandlerExit {
                event,
                domain,
                span,
            } => (
                format!("{} [{}]", rec.name(event), rec.name(domain)),
                "handler",
                "E",
                format!("{{\"span\": {span}}}"),
            ),
            TraceEvent::Drop { layer, reason } => (
                format!("drop {}: {}", rec.name(layer), rec.name(reason)),
                "drop",
                "i",
                String::from("{}"),
            ),
            TraceEvent::PacketTx {
                nic,
                bytes,
                queue_ns,
                wait_ns,
                ser_ns,
                prop_ns,
            } => (
                format!("packet tx ({})", rec.name(nic)),
                "packet",
                "i",
                format!(
                    "{{\"bytes\": {bytes}, \"queue_ns\": {queue_ns}, \"wait_ns\": {wait_ns}, \
                     \"ser_ns\": {ser_ns}, \"prop_ns\": {prop_ns}}}"
                ),
            ),
            TraceEvent::RxInterrupt {
                nic,
                frames,
                ring_after,
            } => (
                format!("rx interrupt ({})", rec.name(nic)),
                "interrupt",
                "i",
                format!("{{\"frames\": {frames}, \"ring_after\": {ring_after}}}"),
            ),
            TraceEvent::LatencySample { hist, ns } => (
                format!("sample ({})", rec.name(hist)),
                "sample",
                "i",
                format!("{{\"ns\": {ns}}}"),
            ),
            TraceEvent::TimerFire => (String::from("timer"), "timer", "i", String::from("{}")),
            TraceEvent::Crossing { dir, bytes } => (
                format!("crossing {}", dir.name()),
                "crossing",
                "i",
                format!("{{\"bytes\": {bytes}}}"),
            ),
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \
             \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {}}}",
            escape(&name),
            cat,
            ph,
            ts_us(r.at_ns),
            tid,
            args
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Renders counters and histograms as compact stats JSON.
///
/// Counter keys are flattened to `"<scope>.<label>.<metric>"` and sorted
/// lexicographically; histograms report integer ns statistics plus their
/// non-empty log2 buckets as `[bucket_floor_ns, count]` pairs.
pub fn stats_json(rec: &Recorder) -> String {
    let mut counters: Vec<(String, u64)> = rec
        .registry()
        .counters()
        .into_iter()
        .map(|(k, v)| {
            (
                format!("{}.{}.{}", k.scope.name(), rec.name(k.label), k.metric),
                v,
            )
        })
        .collect();
    // Ring truncation is easy to miss in a wall of healthy counters, so a
    // wrapped ring surfaces as an explicit synthesized counter: any
    // profile/timeline built from this recorder excluded orphan packets.
    if rec.overwritten() > 0 {
        counters.push((String::from("trace.truncated.records"), rec.overwritten()));
    }
    counters.sort();

    let mut hists: Vec<(String, String)> = rec
        .registry()
        .hists()
        .into_iter()
        .map(|(label, h)| {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(floor, n)| format!("[{floor}, {n}]"))
                .collect();
            let body = format!(
                "{{\"count\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"buckets\": [{}]}}",
                h.count(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                buckets.join(", ")
            );
            (rec.name(label), body)
        })
        .collect();
    hists.sort();

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"events_recorded\": {},\n", rec.recorded()));
    out.push_str(&format!("  \"events_retained\": {},\n", rec.events().len()));
    out.push_str(&format!(
        "  \"events_overwritten\": {},\n",
        rec.overwritten()
    ));
    out.push_str("  \"counters\": {");
    for (i, (k, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(k), v));
    }
    out.push_str(if counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"histograms\": {");
    for (i, (k, body)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(k), body));
    }
    out.push_str(if hists.is_empty() { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::{CrossDir, GuardKind, Recorder};

    fn populated() -> std::rc::Rc<Recorder> {
        let rec = Recorder::new(64);
        rec.packet_arrival(1_000, "Ethernet", 60);
        let ev = rec.intern("udp_recv");
        let dom = rec.intern("rtt-extension");
        rec.guard_eval(1_300, ev, GuardKind::Verified, true);
        let span = rec.handler_enter(1_600, ev, dom);
        rec.packet_tx(4_000, "Ethernet", 60, 0, 500, 1_000);
        rec.handler_exit(5_600, ev, dom, span);
        rec.crossing(6_000, CrossDir::KernelToUser, 8);
        rec.packet_done();
        rec.packet_drop(9_000, "ip", "no_route");
        rec.timer_fire(12_000);
        let hist = rec.intern("udp.rtt_ns");
        rec.record_latency(hist, 560_000);
        rec
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_event_kinds() {
        let rec = populated();
        let out = chrome_trace(&rec);
        validate(&out).expect("chrome trace must be well-formed JSON");
        for needle in [
            "packet arrival (Ethernet)",
            "guard udp_recv verified accept",
            "udp_recv [rtt-extension]",
            "\"ph\": \"B\"",
            "\"ph\": \"E\"",
            "\"span\": 0",
            "packet tx (Ethernet)",
            "\"ser_ns\": 500",
            "drop ip: no_route",
            "crossing kernel->user",
            "timer",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
        // 1000 ns -> "1.000" µs, fixed precision.
        assert!(out.contains("\"ts\": 1.000"), "{out}");
    }

    #[test]
    fn stats_json_is_valid_and_sorted() {
        let rec = populated();
        let out = stats_json(&rec);
        validate(&out).expect("stats must be well-formed JSON");
        for needle in [
            "\"guard.udp_recv.verified.accepts\": 1",
            "\"handler.udp_recv.invocations\": 1",
            "\"domain.rtt-extension.invocations\": 1",
            "\"drop.no_route.count\": 1",
            "\"crossing.kernel->user.count\": 1",
            "\"udp.rtt_ns\"",
            "\"count\": 1",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
    }

    #[test]
    fn exports_are_deterministic_across_identical_runs() {
        let a = populated();
        let b = populated();
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
        assert_eq!(stats_json(&a), stats_json(&b));
    }
}
