//! The recorder: interner + ring + registry + packet-ID generator.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::registry::{CounterKey, Registry, Scope};
use crate::ring::Ring;
use crate::{CrossDir, GuardKind, TraceEvent, TraceRecord};

/// A handle to an interned string. `Copy`, so trace records carrying names
/// stay allocation-free; resolve back with [`Recorder::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

#[derive(Debug, Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> Label {
        if let Some(&i) = self.index.get(s) {
            return Label(i);
        }
        let i = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        Label(i)
    }
}

/// The flight recorder: a bounded event ring plus a metrics [`Registry`],
/// stamped entirely from the simulated clock.
///
/// Install one per simulation (`World::install_recorder` wires it to every
/// CPU, NIC, and the engine). Instrumented code receives it as an
/// `Option<&Recorder>` / `Option<Rc<Recorder>>`; with no recorder
/// installed the hot path pays a single `Option` test.
#[derive(Debug)]
pub struct Recorder {
    ring: RefCell<Ring>,
    registry: Registry,
    interner: RefCell<Interner>,
    next_seq: Cell<u64>,
    next_packet: Cell<u64>,
    next_span: Cell<u64>,
    next_journey: Cell<u64>,
    current_packet: Cell<Option<u64>>,
    current_journey: Cell<Option<u64>>,
}

impl Recorder {
    /// Creates a recorder whose ring retains `capacity` records.
    pub fn new(capacity: usize) -> Rc<Recorder> {
        Rc::new(Recorder {
            ring: RefCell::new(Ring::new(capacity)),
            registry: Registry::default(),
            interner: RefCell::new(Interner::default()),
            next_seq: Cell::new(0),
            next_packet: Cell::new(0),
            next_span: Cell::new(0),
            next_journey: Cell::new(0),
            current_packet: Cell::new(None),
            current_journey: Cell::new(None),
        })
    }

    /// Interns a name; cheap (one hash lookup) after first sight.
    pub fn intern(&self, s: &str) -> Label {
        self.interner.borrow_mut().intern(s)
    }

    /// Resolves an interned label back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `label` did not come from this recorder.
    pub fn name(&self, label: Label) -> String {
        self.interner.borrow().names[label.0 as usize].clone()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of retained trace records, oldest first.
    pub fn events(&self) -> Vec<TraceRecord> {
        self.ring.borrow().snapshot()
    }

    /// Records overwritten because the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.ring.borrow().overwritten()
    }

    /// Total records ever pushed.
    pub fn recorded(&self) -> u64 {
        self.next_seq.get()
    }

    fn push(&self, at_ns: u64, event: TraceEvent) {
        self.push_with_journey(at_ns, event, self.current_journey.get());
    }

    fn push_with_journey(&self, at_ns: u64, event: TraceEvent, journey: Option<u64>) {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        self.ring.borrow_mut().push(TraceRecord {
            at_ns,
            seq,
            packet: self.current_packet.get(),
            journey,
            event,
        });
    }

    /// Bumps a counter by `delta`.
    pub fn count(&self, scope: Scope, label: Label, metric: &'static str, delta: u64) {
        self.registry.add(
            CounterKey {
                scope,
                label,
                metric,
            },
            delta,
        );
    }

    /// Records a latency observation into the named histogram.
    pub fn record_latency(&self, hist: Label, ns: u64) {
        self.registry.record_hist(hist, ns);
    }

    /// Records a latency observation into the named histogram *and* the
    /// ring, so the timeline can recover per-window percentiles that the
    /// whole-run histogram flattens away.
    pub fn sample(&self, at_ns: u64, hist: Label, ns: u64) {
        self.registry.record_hist(hist, ns);
        self.push(at_ns, TraceEvent::LatencySample { hist, ns });
    }

    // --- instrumentation entry points -----------------------------------

    /// A frame arrived at a NIC: assigns the next per-packet ID, marks it
    /// current (subsequent records are attributed to it until
    /// [`Recorder::packet_done`]), and records the arrival.
    pub fn packet_arrival(&self, at_ns: u64, nic: &str, bytes: usize) -> u64 {
        self.packet_arrival_hop(at_ns, nic, "", bytes, None).0
    }

    /// Like [`Recorder::packet_arrival`], but with the receiving machine's
    /// name and the journey tag the frame carried across the wire (`None`
    /// for a frame whose transmit predates the recorder — a fresh journey
    /// is allocated). Returns `(packet_id, journey_id)`. Subsequent
    /// records are tagged with both until [`Recorder::packet_done`].
    pub fn packet_arrival_hop(
        &self,
        at_ns: u64,
        nic: &str,
        host: &str,
        bytes: usize,
        journey: Option<u64>,
    ) -> (u64, u64) {
        let id = self.next_packet.get();
        self.next_packet.set(id + 1);
        self.current_packet.set(Some(id));
        let journey = journey.unwrap_or_else(|| self.alloc_journey());
        self.current_journey.set(Some(journey));
        let nic = self.intern(nic);
        let host = self.intern(host);
        self.push(
            at_ns,
            TraceEvent::PacketArrival {
                nic,
                host,
                bytes: bytes as u32,
            },
        );
        self.count(Scope::Packet, nic, "arrivals", 1);
        self.count(Scope::Packet, nic, "bytes", bytes as u64);
        (id, journey)
    }

    /// The current packet's processing chain has left the instrumented
    /// path; later records are no longer attributed to it.
    pub fn packet_done(&self) {
        self.current_packet.set(None);
        self.current_journey.set(None);
    }

    /// The packet ID currently in flight, if any.
    pub fn current_packet(&self) -> Option<u64> {
        self.current_packet.get()
    }

    /// The journey currently in flight, if any.
    pub fn current_journey(&self) -> Option<u64> {
        self.current_journey.get()
    }

    /// Severs the causal chain: frames transmitted after this point (but
    /// still within the current packet's processing) start a *new*
    /// journey. Ping-pong benchmarks call this before sending round
    /// `k + 1` from round `k`'s receive handler, so every round is its own
    /// journey rather than one endless chain.
    pub fn journey_break(&self) {
        self.current_journey.set(None);
    }

    fn alloc_journey(&self) -> u64 {
        let id = self.next_journey.get();
        self.next_journey.set(id + 1);
        id
    }

    /// The journey a transmit belongs to: the one in flight if the frame
    /// is sent from inside a packet's processing chain, otherwise a fresh
    /// one (an origin send from timer/engine context). Does *not* make the
    /// fresh journey current — it lives only on the wire until delivery.
    pub fn tx_journey(&self) -> u64 {
        match self.current_journey.get() {
            Some(j) => j,
            None => self.alloc_journey(),
        }
    }

    /// A guard was evaluated during an event raise.
    pub fn guard_eval(&self, at_ns: u64, event: Label, kind: GuardKind, matched: bool) {
        self.push(
            at_ns,
            TraceEvent::GuardEval {
                event,
                kind,
                matched,
            },
        );
        let metric = match (kind, matched) {
            (GuardKind::Verified, true) => "verified.accepts",
            (GuardKind::Verified, false) => "verified.rejects",
            (GuardKind::Closure, true) => "closure.accepts",
            (GuardKind::Closure, false) => "closure.rejects",
        };
        self.count(Scope::Guard, event, metric, 1);
    }

    /// The static-bound cross-check for one verified-guard evaluation:
    /// `measured` abstract cycles actually spent against the program's
    /// static worst-case `bound`. Counters only (no ring record), so the
    /// check adds nothing to ring pressure and its absence changes
    /// nothing. A non-zero `cycles.exceeded` means the verifier's bound
    /// was wrong — the invariant the profile suite asserts never happens.
    pub fn guard_cost(&self, event: Label, measured: u64, bound: u64) {
        self.count(Scope::Guard, event, "cycles.measured", measured);
        self.count(Scope::Guard, event, "cycles.bound", bound);
        if measured > bound {
            self.count(Scope::Guard, event, "cycles.exceeded", 1);
        }
    }

    /// A handler began executing. Returns the span-correlation ID the
    /// caller must hand back to [`Recorder::handler_exit`] so the profiler
    /// can pair the records even across ring wraparound.
    pub fn handler_enter(&self, at_ns: u64, event: Label, domain: Label) -> u64 {
        let span = self.next_span.get();
        self.next_span.set(span + 1);
        self.push(
            at_ns,
            TraceEvent::HandlerEnter {
                event,
                domain,
                span,
            },
        );
        self.count(Scope::Handler, event, "invocations", 1);
        self.count(Scope::Domain, domain, "invocations", 1);
        span
    }

    /// A handler finished executing; `span` is the ID its enter returned.
    pub fn handler_exit(&self, at_ns: u64, event: Label, domain: Label, span: u64) {
        self.push(
            at_ns,
            TraceEvent::HandlerExit {
                event,
                domain,
                span,
            },
        );
    }

    /// An over-budget ephemeral handler was terminated (§3.3).
    pub fn handler_terminated(&self, at_ns: u64, event: Label, domain: Label) {
        let reason = self.intern("handler_terminated");
        self.push(
            at_ns,
            TraceEvent::Drop {
                layer: event,
                reason,
            },
        );
        self.count(Scope::Domain, domain, "terminations", 1);
        self.count(Scope::Drop, reason, "count", 1);
    }

    /// A packet was dropped at `layer` for `reason`.
    pub fn packet_drop(&self, at_ns: u64, layer: &str, reason: &str) {
        let layer = self.intern(layer);
        let reason = self.intern(reason);
        self.push(at_ns, TraceEvent::Drop { layer, reason });
        self.count(Scope::Drop, reason, "count", 1);
    }

    /// A frame was handed to a NIC's transmitter at `at_ns` (the instant
    /// the driver's CPU work finished); the wire costs follow as explicit
    /// durations. Attributed to the packet currently in flight, if any —
    /// for a forwarded or echoed frame that is the packet being answered.
    #[allow(clippy::too_many_arguments)]
    pub fn packet_tx(
        &self,
        at_ns: u64,
        nic: &str,
        bytes: usize,
        wait_ns: u64,
        ser_ns: u64,
        prop_ns: u64,
    ) {
        let journey = self.current_journey.get();
        self.packet_tx_journey(at_ns, nic, bytes, wait_ns, ser_ns, prop_ns, journey);
    }

    /// [`Recorder::packet_tx`] with an explicit journey tag, used by the
    /// NIC so an origin send (no journey in flight) records the freshly
    /// allocated journey its delivery will inherit.
    #[allow(clippy::too_many_arguments)]
    pub fn packet_tx_journey(
        &self,
        at_ns: u64,
        nic: &str,
        bytes: usize,
        wait_ns: u64,
        ser_ns: u64,
        prop_ns: u64,
        journey: Option<u64>,
    ) {
        self.packet_tx_queued(at_ns, nic, bytes, 0, wait_ns, ser_ns, prop_ns, journey);
    }

    /// [`Recorder::packet_tx_journey`] with the transmit-queue share of
    /// the wait made explicit: `queue_ns <= wait_ns` is the time the frame
    /// sat behind the NIC's own tx backlog (ring/doorbell queue) before
    /// the wire was even contended. The journey pass attributes it to a
    /// `tx_queue` segment instead of folding it into medium wait.
    #[allow(clippy::too_many_arguments)]
    pub fn packet_tx_queued(
        &self,
        at_ns: u64,
        nic: &str,
        bytes: usize,
        queue_ns: u64,
        wait_ns: u64,
        ser_ns: u64,
        prop_ns: u64,
        journey: Option<u64>,
    ) {
        debug_assert!(queue_ns <= wait_ns, "queue wait is a share of the wait");
        let nic = self.intern(nic);
        self.push_with_journey(
            at_ns,
            TraceEvent::PacketTx {
                nic,
                bytes: bytes as u32,
                queue_ns,
                wait_ns,
                ser_ns,
                prop_ns,
            },
            journey,
        );
        self.count(Scope::Packet, nic, "tx_frames", 1);
        self.count(Scope::Packet, nic, "tx_bytes", bytes as u64);
        self.count(Scope::Packet, nic, "tx_wait_ns", wait_ns);
        if queue_ns > 0 {
            self.count(Scope::Packet, nic, "tx_queue_ns", queue_ns);
        }
    }

    /// A receive interrupt delivered `frames` frames, leaving `ring_after`
    /// queued. Ring record only — the coalescing counters are kept by the
    /// NIC; the per-frame path records `frames == 1, ring_after == 0`.
    pub fn rx_interrupt(&self, at_ns: u64, nic: &str, frames: usize, ring_after: usize) {
        let nic = self.intern(nic);
        self.push(
            at_ns,
            TraceEvent::RxInterrupt {
                nic,
                frames: frames as u32,
                ring_after: ring_after as u32,
            },
        );
    }

    /// A cancelable engine timer fired.
    pub fn timer_fire(&self, at_ns: u64) {
        self.push(at_ns, TraceEvent::TimerFire);
        let label = self.intern("engine");
        self.count(Scope::Timer, label, "fires", 1);
    }

    /// A user/kernel boundary crossing (trap, copyin, copyout).
    pub fn crossing(&self, at_ns: u64, dir: CrossDir, bytes: usize) {
        self.push(
            at_ns,
            TraceEvent::Crossing {
                dir,
                bytes: bytes as u32,
            },
        );
        let label = self.intern(dir.name());
        self.count(Scope::Crossing, label, "count", 1);
        self.count(Scope::Crossing, label, "bytes", bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_reversible() {
        let rec = Recorder::new(8);
        let a = rec.intern("udp_recv");
        let b = rec.intern("ip_recv");
        assert_ne!(a, b);
        assert_eq!(rec.intern("udp_recv"), a);
        assert_eq!(rec.name(a), "udp_recv");
        assert_eq!(rec.name(b), "ip_recv");
    }

    #[test]
    fn packet_ids_are_sequential_and_attributed() {
        let rec = Recorder::new(32);
        let p0 = rec.packet_arrival(100, "Ethernet", 60);
        let ev = rec.intern("eth_recv");
        let dom = rec.intern("kernel");
        let span = rec.handler_enter(150, ev, dom);
        assert_eq!(span, 0, "span IDs start at zero");
        assert_eq!(rec.handler_enter(160, ev, dom), 1, "span IDs are dense");
        rec.handler_exit(170, ev, dom, 1);
        rec.handler_exit(180, ev, dom, span);
        rec.packet_done();
        let p1 = rec.packet_arrival(900, "Ethernet", 61);
        rec.packet_done();
        assert_eq!((p0, p1), (0, 1));
        let evs = rec.events();
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[0].packet, Some(0));
        assert_eq!(evs[1].packet, Some(0), "handler attributed to packet 0");
        assert_eq!(evs[5].packet, Some(1));
        assert_eq!(evs[1].at_ns, 150);
        // Counters landed.
        let key = CounterKey {
            scope: Scope::Packet,
            label: rec.intern("Ethernet"),
            metric: "arrivals",
        };
        assert_eq!(rec.registry().get(key), 2);
    }

    #[test]
    fn guard_counters_split_by_kind_and_verdict() {
        let rec = Recorder::new(8);
        let ev = rec.intern("udp_recv");
        rec.guard_eval(1, ev, GuardKind::Verified, true);
        rec.guard_eval(2, ev, GuardKind::Verified, false);
        rec.guard_eval(3, ev, GuardKind::Closure, true);
        let get = |metric| {
            rec.registry().get(CounterKey {
                scope: Scope::Guard,
                label: ev,
                metric,
            })
        };
        assert_eq!(get("verified.accepts"), 1);
        assert_eq!(get("verified.rejects"), 1);
        assert_eq!(get("closure.accepts"), 1);
        assert_eq!(get("closure.rejects"), 0);
    }
}
