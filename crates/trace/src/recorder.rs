//! The recorder: interner + ring + registry + packet-ID generator.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::registry::{CounterKey, Registry, Scope};
use crate::ring::Ring;
use crate::{CrossDir, GuardKind, TraceEvent, TraceRecord};

/// A handle to an interned string. `Copy`, so trace records carrying names
/// stay allocation-free; resolve back with [`Recorder::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

#[derive(Debug, Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> Label {
        if let Some(&i) = self.index.get(s) {
            return Label(i);
        }
        let i = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        Label(i)
    }
}

/// The flight recorder: a bounded event ring plus a metrics [`Registry`],
/// stamped entirely from the simulated clock.
///
/// Install one per simulation (`World::install_recorder` wires it to every
/// CPU, NIC, and the engine). Instrumented code receives it as an
/// `Option<&Recorder>` / `Option<Rc<Recorder>>`; with no recorder
/// installed the hot path pays a single `Option` test.
#[derive(Debug)]
pub struct Recorder {
    ring: RefCell<Ring>,
    registry: Registry,
    interner: RefCell<Interner>,
    next_seq: Cell<u64>,
    next_packet: Cell<u64>,
    next_span: Cell<u64>,
    current_packet: Cell<Option<u64>>,
}

impl Recorder {
    /// Creates a recorder whose ring retains `capacity` records.
    pub fn new(capacity: usize) -> Rc<Recorder> {
        Rc::new(Recorder {
            ring: RefCell::new(Ring::new(capacity)),
            registry: Registry::default(),
            interner: RefCell::new(Interner::default()),
            next_seq: Cell::new(0),
            next_packet: Cell::new(0),
            next_span: Cell::new(0),
            current_packet: Cell::new(None),
        })
    }

    /// Interns a name; cheap (one hash lookup) after first sight.
    pub fn intern(&self, s: &str) -> Label {
        self.interner.borrow_mut().intern(s)
    }

    /// Resolves an interned label back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `label` did not come from this recorder.
    pub fn name(&self, label: Label) -> String {
        self.interner.borrow().names[label.0 as usize].clone()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of retained trace records, oldest first.
    pub fn events(&self) -> Vec<TraceRecord> {
        self.ring.borrow().snapshot()
    }

    /// Records overwritten because the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.ring.borrow().overwritten()
    }

    /// Total records ever pushed.
    pub fn recorded(&self) -> u64 {
        self.next_seq.get()
    }

    fn push(&self, at_ns: u64, event: TraceEvent) {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        self.ring.borrow_mut().push(TraceRecord {
            at_ns,
            seq,
            packet: self.current_packet.get(),
            event,
        });
    }

    /// Bumps a counter by `delta`.
    pub fn count(&self, scope: Scope, label: Label, metric: &'static str, delta: u64) {
        self.registry.add(
            CounterKey {
                scope,
                label,
                metric,
            },
            delta,
        );
    }

    /// Records a latency observation into the named histogram.
    pub fn record_latency(&self, hist: Label, ns: u64) {
        self.registry.record_hist(hist, ns);
    }

    // --- instrumentation entry points -----------------------------------

    /// A frame arrived at a NIC: assigns the next per-packet ID, marks it
    /// current (subsequent records are attributed to it until
    /// [`Recorder::packet_done`]), and records the arrival.
    pub fn packet_arrival(&self, at_ns: u64, nic: &str, bytes: usize) -> u64 {
        let id = self.next_packet.get();
        self.next_packet.set(id + 1);
        self.current_packet.set(Some(id));
        let nic = self.intern(nic);
        self.push(
            at_ns,
            TraceEvent::PacketArrival {
                nic,
                bytes: bytes as u32,
            },
        );
        self.count(Scope::Packet, nic, "arrivals", 1);
        self.count(Scope::Packet, nic, "bytes", bytes as u64);
        id
    }

    /// The current packet's processing chain has left the instrumented
    /// path; later records are no longer attributed to it.
    pub fn packet_done(&self) {
        self.current_packet.set(None);
    }

    /// The packet ID currently in flight, if any.
    pub fn current_packet(&self) -> Option<u64> {
        self.current_packet.get()
    }

    /// A guard was evaluated during an event raise.
    pub fn guard_eval(&self, at_ns: u64, event: Label, kind: GuardKind, matched: bool) {
        self.push(
            at_ns,
            TraceEvent::GuardEval {
                event,
                kind,
                matched,
            },
        );
        let metric = match (kind, matched) {
            (GuardKind::Verified, true) => "verified.accepts",
            (GuardKind::Verified, false) => "verified.rejects",
            (GuardKind::Closure, true) => "closure.accepts",
            (GuardKind::Closure, false) => "closure.rejects",
        };
        self.count(Scope::Guard, event, metric, 1);
    }

    /// The static-bound cross-check for one verified-guard evaluation:
    /// `measured` abstract cycles actually spent against the program's
    /// static worst-case `bound`. Counters only (no ring record), so the
    /// check adds nothing to ring pressure and its absence changes
    /// nothing. A non-zero `cycles.exceeded` means the verifier's bound
    /// was wrong — the invariant the profile suite asserts never happens.
    pub fn guard_cost(&self, event: Label, measured: u64, bound: u64) {
        self.count(Scope::Guard, event, "cycles.measured", measured);
        self.count(Scope::Guard, event, "cycles.bound", bound);
        if measured > bound {
            self.count(Scope::Guard, event, "cycles.exceeded", 1);
        }
    }

    /// A handler began executing. Returns the span-correlation ID the
    /// caller must hand back to [`Recorder::handler_exit`] so the profiler
    /// can pair the records even across ring wraparound.
    pub fn handler_enter(&self, at_ns: u64, event: Label, domain: Label) -> u64 {
        let span = self.next_span.get();
        self.next_span.set(span + 1);
        self.push(
            at_ns,
            TraceEvent::HandlerEnter {
                event,
                domain,
                span,
            },
        );
        self.count(Scope::Handler, event, "invocations", 1);
        self.count(Scope::Domain, domain, "invocations", 1);
        span
    }

    /// A handler finished executing; `span` is the ID its enter returned.
    pub fn handler_exit(&self, at_ns: u64, event: Label, domain: Label, span: u64) {
        self.push(
            at_ns,
            TraceEvent::HandlerExit {
                event,
                domain,
                span,
            },
        );
    }

    /// An over-budget ephemeral handler was terminated (§3.3).
    pub fn handler_terminated(&self, at_ns: u64, event: Label, domain: Label) {
        let reason = self.intern("handler_terminated");
        self.push(
            at_ns,
            TraceEvent::Drop {
                layer: event,
                reason,
            },
        );
        self.count(Scope::Domain, domain, "terminations", 1);
        self.count(Scope::Drop, reason, "count", 1);
    }

    /// A packet was dropped at `layer` for `reason`.
    pub fn packet_drop(&self, at_ns: u64, layer: &str, reason: &str) {
        let layer = self.intern(layer);
        let reason = self.intern(reason);
        self.push(at_ns, TraceEvent::Drop { layer, reason });
        self.count(Scope::Drop, reason, "count", 1);
    }

    /// A frame was handed to a NIC's transmitter at `at_ns` (the instant
    /// the driver's CPU work finished); the wire costs follow as explicit
    /// durations. Attributed to the packet currently in flight, if any —
    /// for a forwarded or echoed frame that is the packet being answered.
    #[allow(clippy::too_many_arguments)]
    pub fn packet_tx(
        &self,
        at_ns: u64,
        nic: &str,
        bytes: usize,
        wait_ns: u64,
        ser_ns: u64,
        prop_ns: u64,
    ) {
        let nic = self.intern(nic);
        self.push(
            at_ns,
            TraceEvent::PacketTx {
                nic,
                bytes: bytes as u32,
                wait_ns,
                ser_ns,
                prop_ns,
            },
        );
        self.count(Scope::Packet, nic, "tx_frames", 1);
        self.count(Scope::Packet, nic, "tx_bytes", bytes as u64);
        self.count(Scope::Packet, nic, "tx_wait_ns", wait_ns);
    }

    /// A cancelable engine timer fired.
    pub fn timer_fire(&self, at_ns: u64) {
        self.push(at_ns, TraceEvent::TimerFire);
        let label = self.intern("engine");
        self.count(Scope::Timer, label, "fires", 1);
    }

    /// A user/kernel boundary crossing (trap, copyin, copyout).
    pub fn crossing(&self, at_ns: u64, dir: CrossDir, bytes: usize) {
        self.push(
            at_ns,
            TraceEvent::Crossing {
                dir,
                bytes: bytes as u32,
            },
        );
        let label = self.intern(dir.name());
        self.count(Scope::Crossing, label, "count", 1);
        self.count(Scope::Crossing, label, "bytes", bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_reversible() {
        let rec = Recorder::new(8);
        let a = rec.intern("udp_recv");
        let b = rec.intern("ip_recv");
        assert_ne!(a, b);
        assert_eq!(rec.intern("udp_recv"), a);
        assert_eq!(rec.name(a), "udp_recv");
        assert_eq!(rec.name(b), "ip_recv");
    }

    #[test]
    fn packet_ids_are_sequential_and_attributed() {
        let rec = Recorder::new(32);
        let p0 = rec.packet_arrival(100, "Ethernet", 60);
        let ev = rec.intern("eth_recv");
        let dom = rec.intern("kernel");
        let span = rec.handler_enter(150, ev, dom);
        assert_eq!(span, 0, "span IDs start at zero");
        assert_eq!(rec.handler_enter(160, ev, dom), 1, "span IDs are dense");
        rec.handler_exit(170, ev, dom, 1);
        rec.handler_exit(180, ev, dom, span);
        rec.packet_done();
        let p1 = rec.packet_arrival(900, "Ethernet", 61);
        rec.packet_done();
        assert_eq!((p0, p1), (0, 1));
        let evs = rec.events();
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[0].packet, Some(0));
        assert_eq!(evs[1].packet, Some(0), "handler attributed to packet 0");
        assert_eq!(evs[5].packet, Some(1));
        assert_eq!(evs[1].at_ns, 150);
        // Counters landed.
        let key = CounterKey {
            scope: Scope::Packet,
            label: rec.intern("Ethernet"),
            metric: "arrivals",
        };
        assert_eq!(rec.registry().get(key), 2);
    }

    #[test]
    fn guard_counters_split_by_kind_and_verdict() {
        let rec = Recorder::new(8);
        let ev = rec.intern("udp_recv");
        rec.guard_eval(1, ev, GuardKind::Verified, true);
        rec.guard_eval(2, ev, GuardKind::Verified, false);
        rec.guard_eval(3, ev, GuardKind::Closure, true);
        let get = |metric| {
            rec.registry().get(CounterKey {
                scope: Scope::Guard,
                label: ev,
                metric,
            })
        };
        assert_eq!(get("verified.accepts"), 1);
        assert_eq!(get("verified.rejects"), 1);
        assert_eq!(get("closure.accepts"), 1);
        assert_eq!(get("closure.rejects"), 0);
    }
}
