//! Folded-stack flamegraph export.
//!
//! Emits the classic `flamegraph.pl` / speedscope "folded" format: one
//! line per attribution triple, `layer;domain;handler <ns>`, summed over
//! every non-orphan packet. Feed the output straight to
//! `flamegraph.pl --countname=ns` or paste it into
//! <https://www.speedscope.app>.

use std::collections::BTreeMap;

use crate::profile::{Profile, Triple};

/// Renders the profile as folded stacks, sorted by triple so the output
/// is byte-deterministic.
pub fn folded(p: &Profile) -> String {
    let mut sums: BTreeMap<Triple, u64> = BTreeMap::new();
    for pkt in p.packets.iter().filter(|p| !p.orphan) {
        for s in &pkt.slices {
            *sums.entry(s.at.clone()).or_insert(0) += s.ns();
        }
    }
    let mut out = String::new();
    for (t, ns) in sums {
        out.push_str(&format!("{};{};{} {}\n", t.layer, t.domain, t.handler, ns));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn folded_lines_sum_slices_and_sort_deterministically() {
        let rec = Recorder::new(64);
        let ev = rec.intern("Udp.PacketRecv");
        let dom = rec.intern("udp");
        for i in 0..2u64 {
            rec.packet_arrival(i * 1_000, "Ethernet", 60);
            let s = rec.handler_enter(i * 1_000 + 100, ev, dom);
            rec.handler_exit(i * 1_000 + 400, ev, dom, s);
            rec.packet_done();
        }
        let p = Profile::build(&rec);
        let out = folded(&p);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec!["udp;kernel;dispatch 200", "udp;udp;Udp.PacketRecv 600"],
        );
        // Folded total equals total attributed time.
        let folded_total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let attributed: u64 = p.packets.iter().map(|p| p.attributed_ns()).sum();
        assert_eq!(folded_total, attributed);
        assert_eq!(folded(&Profile::build(&rec)), out, "deterministic");
    }
}
