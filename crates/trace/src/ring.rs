//! Bounded, preallocated event ring.

use crate::TraceRecord;

/// A fixed-capacity ring buffer of [`TraceRecord`]s.
///
/// Storage is allocated once at construction; pushing never allocates.
/// When full, the oldest record is overwritten and counted in
/// [`Ring::overwritten`] — a flight recorder keeps the most recent window,
/// not the oldest.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest record (only meaningful once wrapped).
    head: usize,
    overwritten: u64,
}

impl Ring {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Ring {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            overwritten: 0,
        }
    }

    /// Maximum number of records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Old records overwritten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Appends a record, overwriting the oldest if full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Snapshot of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            at_ns: seq * 10,
            seq,
            packet: None,
            journey: None,
            event: TraceEvent::TimerFire,
        }
    }

    #[test]
    fn below_capacity_keeps_everything_in_order() {
        let mut ring = Ring::new(4);
        for i in 0..3 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 0);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut ring = Ring::new(3);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = Ring::new(0);
    }
}
