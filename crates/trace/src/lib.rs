//! # plexus-trace — deterministic flight recorder
//!
//! Observability substrate for the simulated Plexus stack. Everything here
//! is driven by the *simulated* clock (integer nanoseconds), never the host
//! clock, so two runs of the same scenario produce bit-identical traces and
//! byte-identical exported JSON.
//!
//! Pieces:
//!
//! * a bounded, preallocated [`Ring`] of [`TraceRecord`]s — the flight
//!   recorder proper. Records are `Copy` (strings are interned to
//!   [`Label`]s up front), so pushing an event on the packet hot path
//!   allocates nothing once the recorder is warm;
//! * a [`Registry`] of monotonic counters keyed by `(scope, label, metric)`
//!   plus fixed-bucket log2 [`Histogram`]s over nanoseconds — the superset
//!   that backs the dispatcher's `DispatchStats`;
//! * a [`Recorder`] tying both together with the per-packet ID generator
//!   that `sim::nic` stamps on arrival and the dispatcher threads through
//!   handler invocations;
//! * exporters: [`export::chrome_trace`] (Chrome `trace_event` JSON, load
//!   it at `chrome://tracing` or <https://ui.perfetto.dev>) and
//!   [`export::stats_json`] (compact machine-readable stats), plus a tiny
//!   JSON well-formedness checker ([`json::validate`]) used by tests and
//!   the `plexus-trace` CLI to self-check output.
//!
//! The recorder is plumbed as an `Option<Rc<Recorder>>` hung off the
//! simulated CPU/NIC/engine — **not** a global — so instrumented code pays
//! one `Option` test when tracing is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flame;
pub mod journey;
pub mod json;
pub mod profile;
pub mod timeline;

mod recorder;
mod registry;
mod ring;

pub use recorder::{Label, Recorder};
pub use registry::{CounterKey, Histogram, Registry, Scope};
pub use ring::Ring;

/// Which flavour of guard the dispatcher evaluated (§2.3 vs PR 1's
/// verified filter IR).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardKind {
    /// A statically verified filter-IR program.
    Verified,
    /// A native closure (trusted code only).
    Closure,
}

impl GuardKind {
    /// Stable lowercase name, used in counter metrics and exports.
    pub fn name(self) -> &'static str {
        match self {
            GuardKind::Verified => "verified",
            GuardKind::Closure => "closure",
        }
    }
}

/// Direction of a user/kernel boundary crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrossDir {
    /// User space trapping or copying into the kernel.
    UserToKernel,
    /// Kernel delivering or copying out to user space.
    KernelToUser,
}

impl CrossDir {
    /// Stable name, used in counter labels and exports.
    pub fn name(self) -> &'static str {
        match self {
            CrossDir::UserToKernel => "user->kernel",
            CrossDir::KernelToUser => "kernel->user",
        }
    }
}

/// One thing that happened, without its timestamp/packet envelope.
///
/// The event vocabulary deliberately mirrors the paper's cost analysis:
/// every structural step that Figure 5 decomposes an RTT into is visible
/// here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame arrived at a NIC; `packet` in the envelope is the freshly
    /// assigned per-packet ID.
    PacketArrival {
        /// Interned NIC/device name.
        nic: Label,
        /// Interned name of the machine that owns the NIC (empty for NICs
        /// built outside a `World`).
        host: Label,
        /// Frame length in bytes.
        bytes: u32,
    },
    /// The dispatcher evaluated a guard on an event raise.
    GuardEval {
        /// Interned event (table) name.
        event: Label,
        /// Verified IR or native closure.
        kind: GuardKind,
        /// Whether the guard accepted (handler will run).
        matched: bool,
    },
    /// A handler began executing.
    HandlerEnter {
        /// Interned event (table) name.
        event: Label,
        /// Interned owning domain (extension or kernel subsystem).
        domain: Label,
        /// Span-correlation ID, unique per recorder. The matching
        /// [`TraceEvent::HandlerExit`] carries the same value, so the
        /// profiler can pair enter/exit records even when ring wraparound
        /// has dropped part of the stream.
        span: u64,
    },
    /// A handler finished executing.
    HandlerExit {
        /// Interned event (table) name.
        event: Label,
        /// Interned owning domain.
        domain: Label,
        /// Span-correlation ID matching the enter record.
        span: u64,
    },
    /// A packet (or handler) was dropped/terminated.
    Drop {
        /// Interned layer or subsystem that dropped it.
        layer: Label,
        /// Interned reason.
        reason: Label,
    },
    /// A frame was handed to a NIC's transmitter. Timestamped at the
    /// instant the driver finished its CPU work (`ready_at`); the wire
    /// costs that follow are carried as explicit durations so the profiler
    /// can account queueing, serialization, and propagation separately
    /// from CPU time.
    PacketTx {
        /// Interned NIC/device name.
        nic: Label,
        /// Frame length in bytes.
        bytes: u32,
        /// The portion of `wait_ns` spent queued behind this NIC's own
        /// transmit backlog (the tx ring / doorbell queue), as opposed to
        /// a busy half-duplex medium. Always `<= wait_ns`; the journey
        /// pass surfaces it as a `tx_queue` hop segment.
        queue_ns: u64,
        /// Time the frame waited for the transmitter (ring backlog or a
        /// busy half-duplex medium) before serialization started.
        wait_ns: u64,
        /// Serialization time on the wire.
        ser_ns: u64,
        /// One-way propagation to the receiving NIC(s).
        prop_ns: u64,
    },
    /// A receive interrupt fired on a NIC: `frames` frames are handed to
    /// the driver in one batch (always 1 on the per-frame path) and
    /// `ring_after` frames remain queued in the rx ring afterwards. The
    /// timeline folds these into per-window interrupt rates and rx-ring
    /// highwater marks.
    RxInterrupt {
        /// Interned NIC/device name.
        nic: Label,
        /// Frames delivered by this interrupt.
        frames: u32,
        /// Frames still waiting in the rx ring after the batch was taken.
        ring_after: u32,
    },
    /// A latency observation, recorded into the named histogram *and* the
    /// ring so the timeline can compute per-window percentiles.
    LatencySample {
        /// Interned histogram name.
        hist: Label,
        /// The observed latency in nanoseconds.
        ns: u64,
    },
    /// A cancelable timer fired in the engine.
    TimerFire,
    /// A user/kernel boundary crossing (trap, copyin, copyout).
    Crossing {
        /// Direction of the crossing.
        dir: CrossDir,
        /// Bytes copied (0 for a plain trap).
        bytes: u32,
    },
}

/// A trace event with its envelope: simulated timestamp, a monotone
/// sequence number (proof of recording order), and the packet being
/// processed when it was recorded, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time in nanoseconds.
    pub at_ns: u64,
    /// Monotone per-recorder sequence number.
    pub seq: u64,
    /// Per-packet ID in flight when this was recorded.
    pub packet: Option<u64>,
    /// The journey (world-global causal packet chain) in flight when this
    /// was recorded. Unlike `packet`, which is re-assigned at every NIC
    /// arrival, the journey ID crosses the wire: a frame transmitted while
    /// processing journey `J` delivers as a new packet still tagged `J`,
    /// which is what lets [`journey`] stitch per-machine hop ledgers into
    /// one cross-machine waterfall.
    pub journey: Option<u64>,
    /// The event itself.
    pub event: TraceEvent,
}
