//! Minimal JSON utilities: string escaping for the exporters, a
//! well-formedness validator, and a small document parser so tools like
//! `plexus-bench-diff` can read reports back without a JSON dependency
//! (the workspace is offline).

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object members keep their document order (our
/// emitters are deterministic, so order carries meaning in tests).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer kinds).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses `s` as one JSON document. Returns the byte offset and message
/// of the first error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Checks that `s` is one well-formed JSON value. Returns the byte offset
/// and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{} at byte {}", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.literal("\\u")
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("bad \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(lead) => {
                    // Multibyte UTF-8: the lead byte fixes the scalar's
                    // width, so only those bytes are re-checked — never
                    // the whole tail of the document (validating the rest
                    // per character made parsing quadratic, which on a
                    // multi-megabyte chrome trace never finished).
                    let len = match lead {
                        0xF0.. => 4,
                        0xE0.. => 3,
                        _ => 2,
                    };
                    let end = (self.pos + len).min(self.b.len());
                    let s = std::str::from_utf8(&self.b[self.pos..end])
                        .map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut cp = 0u32;
        for _ in 0..4 {
            match self.peek() {
                Some(c) if c.is_ascii_hexdigit() => {
                    cp = cp * 16 + (c as char).to_digit(16).expect("hex digit");
                    self.pos += 1;
                }
                _ => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": []}}"#,
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in ["{", "[1,]", "{\"a\":}", "01x", "\"unterminated", "{} {}"] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let s = format!("{{\"k\": \"{}\"}}", escape("a\"b\\c\nd\te\u{1}"));
        assert!(validate(&s).is_ok(), "{s}");
    }

    #[test]
    fn parse_builds_the_document_tree() {
        let v = parse(r#"{"name": "fig5", "metrics": [{"mean_us": 18.253, "n": 3}]}"#).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig5"));
        let metrics = v.get("metrics").and_then(Value::as_arr).unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(
            metrics[0].get("mean_us").and_then(Value::as_f64),
            Some(18.253)
        );
        assert_eq!(metrics[0].get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}\u{e9}"));
        // Escape then parse is identity.
        let original = "tabs\tquotes\" and \\ and control\u{2} é";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn megabyte_documents_parse_in_linear_time() {
        // Regression guard for the quadratic string scan: a document this
        // size hung for minutes before the per-scalar decode; linear
        // parsing finishes instantly even unoptimized.
        let member = format!("\"k\": \"{}é\"", "x".repeat(1023));
        let doc = format!(
            "[{}]",
            std::iter::repeat_n(format!("{{{member}}}"), 1024)
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(doc.len() > 1 << 20);
        let v = parse(&doc).expect("well-formed");
        assert_eq!(v.as_arr().map(<[Value]>::len), Some(1024));
    }

    #[test]
    fn parse_handles_surrogate_pairs_and_rejects_lone_ones() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }
}
