//! Minimal JSON utilities: string escaping for the exporters and a
//! well-formedness validator so tests and the CLI can self-check emitted
//! output without a JSON dependency (the workspace is offline).

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Checks that `s` is one well-formed JSON value. Returns the byte offset
/// and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{} at byte {}", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": []}}"#,
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in ["{", "[1,]", "{\"a\":}", "01x", "\"unterminated", "{} {}"] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let s = format!("{{\"k\": \"{}\"}}", escape("a\"b\\c\nd\te\u{1}"));
        assert!(validate(&s).is_ok(), "{s}");
    }
}
