//! The monolithic ("DIGITAL UNIX"-like) protocol stack.
//!
//! Same device drivers, same protocol implementations (`plexus-net`), but
//! the conventional OS structure the paper compares against (§4):
//! applications live in *user processes* behind a socket API, so
//!
//! * every send pays a **trap** and a **copyin** as data crosses the
//!   user/kernel boundary, plus socket-layer bookkeeping;
//! * every receive pays the interrupt, a **softirq** queue hop into the
//!   kernel stack proper, socket-layer bookkeeping, a **process wakeup**,
//!   a **context switch**, and a **copyout** before the application sees a
//!   byte.
//!
//! The protocol processing itself (Ethernet/IP/UDP/TCP parsing, checksums)
//! charges exactly the same costs as the Plexus graph — the measured gap
//! between the systems is pure OS structure, as the paper argues.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_net::arp::{ArpCache, ArpPacket, Resolution};
use plexus_net::ether::{self, EtherType, EtherView, MacAddr, ETHER_HDR_LEN};
use plexus_net::icmp::{IcmpMessage, IcmpType};
use plexus_net::ip::{self, IpHeader, Reassembler};
use plexus_net::mbuf::Mbuf;
use plexus_net::udp::{self, UdpConfig};
use plexus_sim::nic::{DriverConfig, Nic};
use plexus_sim::{Cpu, CpuLease, Engine, Machine};

use plexus_kernel::view::view;
use plexus_kernel::vm::AddressSpace;

use crate::tcp_socket::TcpLayer;

/// A datagram delivered to a user process.
#[derive(Debug)]
pub struct UdpMessage {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Payload (already copied out to user space; the copy was charged).
    pub data: Vec<u8>,
}

/// User-process receive callback (runs after wakeup/copyout, i.e. "in the
/// process").
pub type UdpRecvCallback = Rc<dyn Fn(&mut Engine, &mut CpuLease, UdpMessage)>;

struct UdpSocketInner {
    process: Rc<AddressSpace>,
    port: u16,
    recv_cb: RefCell<Option<UdpRecvCallback>>,
    /// Datagrams queued while no process is blocked in `recvfrom`.
    backlog: RefCell<VecDeque<UdpMessage>>,
    checksum: Cell<bool>,
}

/// Counters for the monolithic stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Frames accepted by the MAC filter.
    pub eth_rx: u64,
    /// IP datagrams delivered up.
    pub ip_rx: u64,
    /// IP datagrams dropped.
    pub ip_dropped: u64,
    /// Datagrams sent.
    pub ip_tx: u64,
    /// ICMP echoes answered.
    pub icmp_echoes: u64,
    /// UDP datagrams delivered to sockets.
    pub udp_delivered: u64,
    /// UDP datagrams dropped (no socket bound).
    pub udp_no_socket: u64,
}

/// Shared monolithic-kernel state for one machine.
pub(crate) struct BaselineShared {
    pub(crate) cpu: Rc<Cpu>,
    pub(crate) nic: Rc<Nic>,
    pub(crate) ip: Ipv4Addr,
    pub(crate) mac: MacAddr,
    arp: RefCell<ArpCache>,
    arp_pending: RefCell<HashMap<Ipv4Addr, Vec<Mbuf>>>,
    reasm: RefCell<Reassembler>,
    ip_ident: Cell<u16>,
    udp_socks: RefCell<HashMap<u16, Rc<UdpSocketInner>>>,
    pub(crate) stats: Cell<BaselineStats>,
    prefix_len: Cell<u8>,
    gateway: Cell<Option<Ipv4Addr>>,
}

impl BaselineShared {
    pub(crate) fn bump<F: FnOnce(&mut BaselineStats)>(&self, f: F) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn next_ident(&self) -> u16 {
        let id = self.ip_ident.get();
        self.ip_ident.set(id.wrapping_add(1));
        id
    }

    /// Kernel IP output path: fragment, ARP, driver TX. Direct procedure
    /// calls — no dispatcher — charging the same protocol costs as Plexus.
    pub(crate) fn ip_output(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        dst: Ipv4Addr,
        protocol: u8,
        payload: &Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.ip_proc);
        self.bump(|s| s.ip_tx += 1);
        let hdr = IpHeader {
            src: self.ip,
            dst,
            protocol,
            ident: self.next_ident(),
            ttl: ip::DEFAULT_TTL,
            more_fragments: false,
            frag_offset: 0,
        };
        let frags = ip::fragment(&hdr, payload, self.nic.profile().mtu);
        // Route: on-subnet directly, off-subnet via the gateway.
        let next_hop = if dst == Ipv4Addr::BROADCAST {
            dst
        } else {
            let plen = self.prefix_len.get();
            let mask = if plen == 0 {
                0
            } else {
                u32::MAX << (32 - plen)
            };
            if (u32::from(dst) & mask) == (u32::from(self.ip) & mask) {
                dst
            } else {
                match self.gateway.get() {
                    Some(gw) => gw,
                    None => return, // No route; silently dropped, as sendto would EHOSTUNREACH.
                }
            }
        };
        for frag in frags {
            if dst == Ipv4Addr::BROADCAST {
                self.eth_output(engine, lease, MacAddr::BROADCAST, EtherType::IPV4, frag);
                continue;
            }
            lease.charge(model.arp_lookup);
            let res = self
                .arp
                .borrow_mut()
                .resolve(next_hop, lease.now().as_nanos());
            match res {
                Resolution::Known(mac) => {
                    self.eth_output(engine, lease, mac, EtherType::IPV4, frag);
                }
                Resolution::NeedsRequest(first) => {
                    self.arp_pending
                        .borrow_mut()
                        .entry(next_hop)
                        .or_default()
                        .push(frag);
                    if first {
                        let req = ArpPacket::request(self.mac, self.ip, next_hop);
                        let m = Mbuf::from_payload(ETHER_HDR_LEN, &req.to_bytes());
                        self.eth_output(engine, lease, MacAddr::BROADCAST, EtherType::ARP, m);
                    }
                }
            }
        }
    }

    pub(crate) fn eth_output(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        dst: MacAddr,
        ethertype: EtherType,
        packet: Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.eth_proc);
        let mut frame = packet.share();
        ether::write_header(frame.prepend(ETHER_HDR_LEN), dst, self.mac, ethertype);
        let bytes = frame.to_vec();
        lease.charge(self.nic.profile().tx_cpu_cost(bytes.len()));
        let ready = lease.now();
        self.nic.transmit_frame(engine, ready, bytes);
    }

    /// Wakes the process blocked on `sock` (or queues the message).
    fn deliver_udp(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        sock: &Rc<UdpSocketInner>,
        msg: UdpMessage,
    ) {
        self.bump(|s| s.udp_delivered += 1);
        let cb = sock.recv_cb.borrow().clone();
        let Some(cb) = cb else {
            sock.backlog.borrow_mut().push_back(msg);
            return;
        };
        let model = lease.model().clone();
        // Socket-layer append + wakeup of the blocked process.
        lease.charge(model.socket_layer + model.process_wakeup);
        let ready = lease.now();
        let cpu = self.cpu.clone();
        let process = sock.process.clone();
        engine.schedule_at(ready, move |eng| {
            let mut user = cpu.begin(eng.now());
            let model = user.model().clone();
            // The woken process: context switch in, return from the
            // recvfrom trap, copy the data out to user space.
            user.charge(model.context_switch);
            process.trap(&mut user);
            process.copyout(&mut user, msg.data.len());
            cb(eng, &mut user, msg);
        });
    }
}

/// The monolithic stack bound to one machine + NIC.
pub struct MonolithicStack {
    machine: Rc<Machine>,
    shared: Rc<BaselineShared>,
    tcp: Rc<TcpLayer>,
}

impl MonolithicStack {
    /// Attaches the monolithic kernel stack to `machine`'s `nic`.
    pub fn attach(
        machine: &Rc<Machine>,
        nic: &Rc<Nic>,
        ip_addr: Ipv4Addr,
        mac: MacAddr,
    ) -> Rc<MonolithicStack> {
        let shared = Rc::new(BaselineShared {
            cpu: machine.cpu().clone(),
            nic: nic.clone(),
            ip: ip_addr,
            mac,
            arp: RefCell::new(ArpCache::new()),
            arp_pending: RefCell::new(HashMap::new()),
            reasm: RefCell::new(Reassembler::new()),
            ip_ident: Cell::new(1),
            udp_socks: RefCell::new(HashMap::new()),
            stats: Cell::new(BaselineStats::default()),
            prefix_len: Cell::new(24),
            gateway: Cell::new(None),
        });
        let tcp = TcpLayer::new(&shared);
        let stack = Rc::new(MonolithicStack {
            machine: machine.clone(),
            shared: shared.clone(),
            tcp: tcp.clone(),
        });

        let s = shared.clone();
        let tcp_layer = tcp;
        nic.attach(DriverConfig::per_frame(move |engine, frame| {
            let mut lease = s.cpu.begin(engine.now());
            let model = lease.model().clone();
            lease.charge(model.interrupt_entry);
            lease.charge(s.nic.profile().rx_cpu_cost(frame.len()));
            let Some(v) = view::<EtherView>(&frame) else {
                lease.charge(model.interrupt_exit);
                return;
            };
            let dst = v.dst();
            if dst != s.mac && !dst.is_broadcast() {
                lease.charge(model.interrupt_exit);
                return;
            }
            s.bump(|st| st.eth_rx += 1);
            let ethertype = v.ethertype();
            lease.charge(model.eth_proc);
            match ethertype {
                EtherType::ARP => {
                    Self::arp_input(&s, engine, &mut lease, &frame[ETHER_HDR_LEN..]);
                }
                EtherType::IPV4 => {
                    // The netisr/softirq hop: the interrupt handler queues
                    // the packet and the kernel processes it "later" (we
                    // charge the hop; processing continues on this CPU).
                    lease.charge(model.softirq);
                    let mut pkt = Mbuf::from_wire(&frame);
                    pkt.trim_front(ETHER_HDR_LEN);
                    Self::ip_input(&s, &tcp_layer, engine, &mut lease, pkt);
                }
                _ => {}
            }
            lease.charge(model.interrupt_exit);
        }));
        stack
    }

    fn arp_input(s: &Rc<BaselineShared>, engine: &mut Engine, lease: &mut CpuLease, bytes: &[u8]) {
        let Some(pkt) = ArpPacket::parse(bytes) else {
            return;
        };
        let now = lease.now().as_nanos();
        let satisfied = s.arp.borrow_mut().learn(pkt.sender_ip, pkt.sender_mac, now);
        if satisfied {
            let parked = s.arp_pending.borrow_mut().remove(&pkt.sender_ip);
            for frag in parked.into_iter().flatten() {
                s.eth_output(engine, lease, pkt.sender_mac, EtherType::IPV4, frag);
            }
        }
        if pkt.op == plexus_net::arp::ArpOp::Request && pkt.target_ip == s.ip {
            let reply = ArpPacket::reply_to(&pkt, s.mac, s.ip);
            let m = Mbuf::from_payload(ETHER_HDR_LEN, &reply.to_bytes());
            s.eth_output(engine, lease, pkt.sender_mac, EtherType::ARP, m);
        }
    }

    fn ip_input(
        s: &Rc<BaselineShared>,
        tcp: &Rc<TcpLayer>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        pkt: Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.ip_proc);
        let now = lease.now().as_nanos();
        let offered = {
            let mut reasm = s.reasm.borrow_mut();
            reasm.expire(now);
            reasm.offer(&pkt, now)
        };
        let Some((hdr, payload)) = offered else {
            if pkt.total_len() >= ip::IP_HDR_LEN {
                s.bump(|st| st.ip_dropped += 1);
            }
            return;
        };
        if hdr.dst != s.ip && hdr.dst != Ipv4Addr::BROADCAST {
            s.bump(|st| st.ip_dropped += 1);
            return;
        }
        s.bump(|st| st.ip_rx += 1);
        match hdr.protocol {
            ip::proto::ICMP => Self::icmp_input(s, engine, lease, &hdr, &payload),
            ip::proto::UDP => Self::udp_input(s, engine, lease, &hdr, &payload),
            ip::proto::TCP => tcp.input(engine, lease, &hdr, &payload),
            _ => {}
        }
    }

    fn icmp_input(
        s: &Rc<BaselineShared>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        hdr: &IpHeader,
        payload: &Mbuf,
    ) {
        let model = lease.model().clone();
        let bytes = payload.to_vec();
        lease.charge(model.checksum(bytes.len()));
        let Some(msg) = IcmpMessage::parse(&bytes) else {
            return;
        };
        if msg.kind == IcmpType::EchoRequest {
            s.bump(|st| st.icmp_echoes += 1);
            let reply = IcmpMessage::echo_reply(&msg);
            let m = Mbuf::from_payload(64, &reply.to_bytes());
            lease.charge(model.checksum(m.total_len()));
            s.ip_output(engine, lease, hdr.src, ip::proto::ICMP, &m);
        }
    }

    fn udp_input(
        s: &Rc<BaselineShared>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        hdr: &IpHeader,
        payload: &Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.udp_proc);
        // Find the socket first so the checksum honours its config.
        let head = payload.head();
        if head.len() < udp::UDP_HDR_LEN {
            return;
        }
        let dst_port = u16::from_be_bytes([head[2], head[3]]);
        let sock = s.udp_socks.borrow().get(&dst_port).cloned();
        let Some(sock) = sock else {
            s.bump(|st| st.udp_no_socket += 1);
            return;
        };
        let config = UdpConfig {
            checksum: sock.checksum.get(),
        };
        if config.checksum {
            lease.charge(model.checksum(payload.total_len()));
        }
        let Some(dgram) = udp::decapsulate(hdr.src, hdr.dst, config, payload) else {
            return;
        };
        let msg = UdpMessage {
            src: hdr.src,
            src_port: dgram.src_port,
            data: dgram.payload.to_vec(),
        };
        s.deliver_udp(engine, lease, &sock, msg);
    }

    /// The machine this stack runs on.
    pub fn machine(&self) -> &Rc<Machine> {
        &self.machine
    }

    /// This host's address.
    pub fn ip(&self) -> Ipv4Addr {
        self.shared.ip
    }

    /// This host's MAC.
    pub fn mac(&self) -> MacAddr {
        self.shared.mac
    }

    /// Stack counters.
    pub fn stats(&self) -> BaselineStats {
        self.shared.stats.get()
    }

    /// The TCP socket layer.
    pub fn tcp(&self) -> &Rc<TcpLayer> {
        &self.tcp
    }

    /// Pre-seeds the ARP cache.
    pub fn seed_arp(&self, ip_addr: Ipv4Addr, mac: MacAddr) {
        self.shared.arp.borrow_mut().learn(ip_addr, mac, 0);
    }

    /// Configures the default gateway (and subnet prefix) so off-subnet
    /// destinations route through an IP router (see `plexus-core`).
    pub fn set_gateway(&self, gateway: Ipv4Addr, prefix_len: u8) {
        self.shared.gateway.set(Some(gateway));
        self.shared.prefix_len.set(prefix_len);
    }

    /// Sends an ICMP echo request from the kernel (diagnostics).
    pub fn ping(&self, engine: &mut Engine, dst: Ipv4Addr, ident: u16, seq: u16, data: &[u8]) {
        let msg = IcmpMessage::echo_request(ident, seq, data);
        let m = Mbuf::from_payload(64, &msg.to_bytes());
        let mut lease = self.shared.cpu.begin(engine.now());
        let model = lease.model().clone();
        lease.charge(model.checksum(m.total_len()));
        self.shared
            .ip_output(engine, &mut lease, dst, ip::proto::ICMP, &m);
    }

    /// Opens a UDP socket for a user process. Returns `None` if the port
    /// is taken.
    pub fn udp_socket(
        &self,
        process: &Rc<AddressSpace>,
        port: u16,
        checksum: bool,
    ) -> Option<UdpSocket> {
        let mut socks = self.shared.udp_socks.borrow_mut();
        if socks.contains_key(&port) {
            return None;
        }
        let inner = Rc::new(UdpSocketInner {
            process: process.clone(),
            port,
            recv_cb: RefCell::new(None),
            backlog: RefCell::new(VecDeque::new()),
            checksum: Cell::new(checksum),
        });
        socks.insert(port, inner.clone());
        Some(UdpSocket {
            shared: self.shared.clone(),
            process: process.clone(),
            inner,
        })
    }
}

/// A user-process UDP socket on the monolithic stack.
pub struct UdpSocket {
    shared: Rc<BaselineShared>,
    process: Rc<AddressSpace>,
    inner: Rc<UdpSocketInner>,
}

impl UdpSocket {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.inner.port
    }

    /// `sendto(2)`: trap, copy the payload into the kernel, run the stack.
    pub fn sendto(&self, engine: &mut Engine, dst: Ipv4Addr, dst_port: u16, data: &[u8]) {
        let mut lease = self.shared.cpu.begin(engine.now());
        self.sendto_in(engine, &mut lease, dst, dst_port, data);
    }

    /// [`UdpSocket::sendto`] continuing on an existing lease (e.g. replying
    /// from within a receive callback).
    pub fn sendto_in(
        &self,
        engine: &mut Engine,
        lease: &mut CpuLease,
        dst: Ipv4Addr,
        dst_port: u16,
        data: &[u8],
    ) {
        let model = lease.model().clone();
        self.process.trap(lease);
        self.process.copyin(lease, data.len());
        lease.charge(model.socket_layer);
        lease.charge(model.udp_proc);
        let payload = Mbuf::from_payload(64, data);
        if self.inner.checksum.get() {
            lease.charge(model.checksum(payload.total_len() + udp::UDP_HDR_LEN));
        }
        let config = UdpConfig {
            checksum: self.inner.checksum.get(),
        };
        let dgram = udp::encapsulate(
            self.shared.ip,
            dst,
            self.inner.port,
            dst_port,
            config,
            payload,
        );
        self.shared
            .ip_output(engine, lease, dst, ip::proto::UDP, &dgram);
    }

    /// Parks the process in a `recvfrom(2)` loop: `cb` runs (in user
    /// context, after wakeup + copyout) for every arriving datagram.
    /// Backlogged datagrams are delivered immediately.
    pub fn recv_loop<F>(&self, engine: &mut Engine, cb: F)
    where
        F: Fn(&mut Engine, &mut CpuLease, UdpMessage) + 'static,
    {
        *self.inner.recv_cb.borrow_mut() = Some(Rc::new(cb));
        // Drain anything that arrived before the process blocked.
        let backlog: Vec<UdpMessage> = self.inner.backlog.borrow_mut().drain(..).collect();
        if !backlog.is_empty() {
            let shared = self.shared.clone();
            let sock = self.inner.clone();
            let mut lease = shared.cpu.begin(engine.now());
            for msg in backlog {
                shared.deliver_udp(engine, &mut lease, &sock, msg);
            }
        }
    }

    /// Closes the socket, freeing the port.
    pub fn close(&self) {
        self.shared.udp_socks.borrow_mut().remove(&self.inner.port);
        *self.inner.recv_cb.borrow_mut() = None;
    }
}
