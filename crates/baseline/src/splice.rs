//! The user-level TCP forwarder (§5.2's DIGITAL UNIX comparison).
//!
//! "We have implemented a similar service using DIGITAL UNIX with a
//! user-level process that splices together an incoming and outgoing
//! socket." The splice terminates the client's TCP connection at the
//! forwarder and opens a *second* connection to the backend, so
//!
//! * end-to-end TCP semantics are broken — the backend never sees the
//!   client's connection establishment or teardown, and the forwarder
//!   interposes on window/congestion behaviour; and
//! * every forwarded byte makes two trips through the protocol stack and
//!   is copied twice across the user/kernel boundary.
//!
//! Figure 7 measures the latency consequence; this module is that
//! comparison system.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_kernel::vm::AddressSpace;
use plexus_sim::Engine;

use crate::stack::MonolithicStack;
use crate::tcp_socket::{SocketCallbacks, TcpSocket};

/// A user-level port forwarder process on the monolithic stack.
/// The spliced socket pairs, keyed by the client's source port.
type PairMap = Rc<RefCell<HashMap<u16, (Rc<TcpSocket>, Rc<TcpSocket>)>>>;

/// A user-level port forwarder process on the monolithic stack.
pub struct UserSplice {
    /// Forwarded connections currently alive (client socket, backend
    /// socket), for observation in tests.
    pairs: PairMap,
}

impl UserSplice {
    /// Starts the splice process: accept on `stack`:`port`, connect onward
    /// to `backend`, and shuttle bytes both ways through user space.
    pub fn start(
        stack: &Rc<MonolithicStack>,
        engine: &mut Engine,
        port: u16,
        backend: (Ipv4Addr, u16),
    ) -> UserSplice {
        let _ = engine;
        let process = AddressSpace::new("user-splice");
        let pairs: PairMap = Rc::new(RefCell::new(HashMap::new()));

        let stack2 = stack.clone();
        let process2 = process.clone();
        let pairs2 = pairs.clone();
        stack
            .tcp()
            .listen(&process, port, move |eng, _user, client_sock| {
                // A client connected: open the outgoing socket.
                let backend_sock = stack2.tcp().connect(eng, &process2, backend);
                pairs2.borrow_mut().insert(
                    client_sock.remote().1,
                    (client_sock.clone(), backend_sock.clone()),
                );

                // client -> backend: each chunk was copied out to the splice
                // process by the receive path; send() copies it back in.
                let toward_backend = backend_sock.clone();
                client_sock.set_callbacks(SocketCallbacks {
                    on_data: Some(Rc::new(move |eng, user, _sock, data| {
                        toward_backend.send_in(eng, user, data);
                    })),
                    on_peer_close: Some(Rc::new({
                        let b = backend_sock.clone();
                        move |eng, user, _sock| b.close_in(eng, user)
                    })),
                    ..Default::default()
                });

                // backend -> client.
                let toward_client = client_sock.clone();
                let toward_client_close = client_sock.clone();
                backend_sock.set_callbacks(SocketCallbacks {
                    on_data: Some(Rc::new(move |eng, user, _sock, data| {
                        toward_client.send_in(eng, user, data);
                    })),
                    on_peer_close: Some(Rc::new(move |eng, user, _sock| {
                        toward_client_close.close_in(eng, user)
                    })),
                    ..Default::default()
                });
            });

        UserSplice { pairs }
    }

    /// Number of spliced connection pairs created.
    pub fn pair_count(&self) -> usize {
        self.pairs.borrow().len()
    }
}
