//! TCP sockets for the monolithic stack.
//!
//! Same [`Tcb`] state machine as Plexus; what differs is the delivery
//! structure: data reaches the application only after socket-buffer
//! bookkeeping, a process wakeup, a context switch, a trap return, and a
//! copyout — and application sends pay the mirror-image costs.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_kernel::vm::AddressSpace;
use plexus_net::ip::{proto, IpHeader};
use plexus_net::mbuf::Mbuf;
use plexus_net::tcp::{Actions, Tcb, TcpSegment, TcpState, TCP_HDR_LEN};
use plexus_sim::engine::TimerHandle;
use plexus_sim::time::SimDuration;
use plexus_sim::{CpuLease, Engine};

use crate::stack::BaselineShared;

type ConnKey = (u16, Ipv4Addr, u16);

/// A socket-event callback, run in user context.
pub type SocketCallback = Rc<dyn Fn(&mut Engine, &mut CpuLease, &Rc<TcpSocket>)>;

/// A data-arrival callback, run in user context after the copyout.
pub type SocketDataCallback = Rc<dyn Fn(&mut Engine, &mut CpuLease, &Rc<TcpSocket>, &[u8])>;

/// User-context callbacks for a TCP socket.
#[derive(Default)]
pub struct SocketCallbacks {
    /// Connection established.
    pub on_connected: Option<SocketCallback>,
    /// Data arrived (already copied out; the copy was charged).
    pub on_data: Option<SocketDataCallback>,
    /// Peer half-closed.
    pub on_peer_close: Option<SocketCallback>,
    /// Fully closed.
    pub on_closed: Option<SocketCallback>,
}

type AcceptCallback = SocketCallback;

/// The kernel TCP layer of the monolithic stack.
pub struct TcpLayer {
    shared: Rc<BaselineShared>,
    conns: RefCell<HashMap<ConnKey, Rc<TcpSocket>>>,
    listeners: RefCell<HashMap<u16, (Rc<AddressSpace>, AcceptCallback)>>,
    iss: Cell<u32>,
    next_port: Cell<u16>,
}

impl TcpLayer {
    pub(crate) fn new(shared: &Rc<BaselineShared>) -> Rc<TcpLayer> {
        Rc::new(TcpLayer {
            shared: shared.clone(),
            conns: RefCell::new(HashMap::new()),
            listeners: RefCell::new(HashMap::new()),
            iss: Cell::new(52_000),
            next_port: Cell::new(30_000),
        })
    }

    fn next_iss(&self) -> u32 {
        let v = self.iss.get();
        self.iss.set(v.wrapping_add(64_000));
        v
    }

    /// `listen(2)` + `accept(2)` loop: `on_accept` runs (in user context)
    /// for each new connection.
    pub fn listen<F>(self: &Rc<Self>, process: &Rc<AddressSpace>, port: u16, on_accept: F) -> bool
    where
        F: Fn(&mut Engine, &mut CpuLease, &Rc<TcpSocket>) + 'static,
    {
        let mut listeners = self.listeners.borrow_mut();
        if listeners.contains_key(&port) {
            return false;
        }
        listeners.insert(port, (process.clone(), Rc::new(on_accept)));
        true
    }

    /// `connect(2)`: active open. Costs a trap; the handshake proceeds in
    /// the kernel.
    pub fn connect(
        self: &Rc<Self>,
        engine: &mut Engine,
        process: &Rc<AddressSpace>,
        remote: (Ipv4Addr, u16),
    ) -> Rc<TcpSocket> {
        let port = self.next_port.get();
        self.next_port.set(port.wrapping_add(1).max(30_000));
        let key = (port, remote.0, remote.1);
        let mut lease = self.shared.cpu.begin(engine.now());
        process.trap(&mut lease);
        let now = lease.now().as_nanos();
        let (tcb, actions) = Tcb::connect((self.shared.ip, port), remote, self.next_iss(), now);
        let sock = self.register(process, key, tcb);
        sock.process_actions(engine, &mut lease, actions);
        sock
    }

    fn register(
        self: &Rc<Self>,
        process: &Rc<AddressSpace>,
        key: ConnKey,
        tcb: Tcb,
    ) -> Rc<TcpSocket> {
        let sock = Rc::new(TcpSocket {
            layer: self.clone(),
            process: process.clone(),
            key,
            tcb: RefCell::new(tcb),
            callbacks: RefCell::new(SocketCallbacks::default()),
            timer: RefCell::new(None),
            gone: Cell::new(false),
            pending_data: RefCell::new(Vec::new()),
            wakeup_queued: Cell::new(false),
        });
        self.conns.borrow_mut().insert(key, sock.clone());
        sock
    }

    /// Kernel input path for a TCP segment.
    pub(crate) fn input(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        hdr: &IpHeader,
        payload: &Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.tcp_proc);
        lease.charge(model.checksum(payload.total_len()));
        let bytes = payload.to_vec();
        let Some(seg) = TcpSegment::parse(hdr.src, hdr.dst, &bytes) else {
            return;
        };
        let key = (seg.dst_port, hdr.src, seg.src_port);
        let existing = self.conns.borrow().get(&key).cloned();
        let sock = match existing {
            Some(s) => s,
            None => {
                let listener = self.listeners.borrow().get(&seg.dst_port).cloned();
                let Some((process, accept_cb)) = listener else {
                    return; // No RST generation in the baseline model.
                };
                if !seg.flags.syn || seg.flags.ack {
                    return;
                }
                let tcb = Tcb::listen((self.shared.ip, seg.dst_port), self.next_iss());
                let sock = self.register(&process, key, tcb);
                // The accept runs in user context after a wakeup.
                let s = sock.clone();
                let cpu = self.shared.cpu.clone();
                lease.charge(model.socket_layer + model.process_wakeup);
                let at = lease.now();
                engine.schedule_at(at, move |eng| {
                    let mut user = cpu.begin(eng.now());
                    let m = user.model().clone();
                    user.charge(m.context_switch + m.syscall);
                    accept_cb(eng, &mut user, &s);
                });
                sock
            }
        };
        let actions =
            sock.tcb
                .borrow_mut()
                .on_segment(&seg, (hdr.src, seg.src_port), lease.now().as_nanos());
        sock.process_actions(engine, lease, actions);
    }
}

/// A TCP socket owned by a user process on the monolithic stack.
pub struct TcpSocket {
    layer: Rc<TcpLayer>,
    process: Rc<AddressSpace>,
    key: ConnKey,
    tcb: RefCell<Tcb>,
    callbacks: RefCell<SocketCallbacks>,
    timer: RefCell<Option<TimerHandle>>,
    gone: Cell<bool>,
    /// Socket-buffer bytes awaiting the woken process (wakeups coalesce:
    /// segments arriving while a wakeup is queued share one crossing, as
    /// with a real `soreceive` loop).
    pending_data: RefCell<Vec<u8>>,
    wakeup_queued: Cell<bool>,
}

impl TcpSocket {
    /// Attaches user callbacks.
    pub fn set_callbacks(&self, callbacks: SocketCallbacks) {
        *self.callbacks.borrow_mut() = callbacks;
    }

    /// Connection state.
    pub fn state(&self) -> TcpState {
        self.tcb.borrow().state()
    }

    /// The local port.
    pub fn local_port(&self) -> u16 {
        self.key.0
    }

    /// The remote endpoint.
    pub fn remote(&self) -> (Ipv4Addr, u16) {
        (self.key.1, self.key.2)
    }

    /// Segments retransmitted by this side.
    pub fn retransmits(&self) -> u64 {
        self.tcb.borrow().retransmits
    }

    /// `write(2)`: trap, copyin, socket layer, then the kernel TCP path.
    pub fn send(self: &Rc<Self>, engine: &mut Engine, data: &[u8]) {
        let mut lease = self.layer.shared.cpu.begin(engine.now());
        self.send_in(engine, &mut lease, data);
    }

    /// [`TcpSocket::send`] on an existing lease (from a receive callback).
    pub fn send_in(self: &Rc<Self>, engine: &mut Engine, lease: &mut CpuLease, data: &[u8]) {
        let model = lease.model().clone();
        self.process.trap(lease);
        self.process.copyin(lease, data.len());
        lease.charge(model.socket_layer);
        let actions = self.tcb.borrow_mut().send(data, lease.now().as_nanos());
        self.process_actions(engine, lease, actions);
    }

    /// `close(2)`.
    pub fn close(self: &Rc<Self>, engine: &mut Engine) {
        let mut lease = self.layer.shared.cpu.begin(engine.now());
        let model = lease.model().clone();
        self.process.trap(&mut lease);
        lease.charge(model.socket_layer);
        let now = lease.now().as_nanos();
        let actions = self.tcb.borrow_mut().close(now);
        self.process_actions(engine, &mut lease, actions);
    }

    /// Close from within a user callback.
    pub fn close_in(self: &Rc<Self>, engine: &mut Engine, lease: &mut CpuLease) {
        self.process.trap(lease);
        let now = lease.now().as_nanos();
        let actions = self.tcb.borrow_mut().close(now);
        self.process_actions(engine, lease, actions);
    }

    fn process_actions(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        actions: Actions,
    ) {
        let model = lease.model().clone();
        let (_, rip, _) = self.key;
        for seg in &actions.segments {
            lease.charge(model.tcp_proc);
            lease.charge(model.checksum(seg.payload.len() + TCP_HDR_LEN));
            let bytes = seg.to_bytes(self.layer.shared.ip, rip);
            let m = Mbuf::from_payload(64, &bytes);
            self.layer
                .shared
                .ip_output(engine, lease, rip, proto::TCP, &m);
        }
        if actions.connected {
            self.user_callback(engine, lease, UserEvent::Connected);
        }
        if actions.data_available {
            let data = self.tcb.borrow_mut().take_received();
            if !data.is_empty() {
                self.deliver_data(engine, lease, data);
            }
        }
        if actions.peer_fin {
            self.user_callback(engine, lease, UserEvent::PeerClose);
        }
        if actions.closed {
            self.teardown();
            self.user_callback(engine, lease, UserEvent::Closed);
            return;
        }
        self.rearm_timer(engine);
    }

    /// Appends to the socket buffer and wakes the blocked reader. If a
    /// wakeup is already queued (the process has not run yet), the bytes
    /// ride along with it — one boundary crossing drains the whole buffer,
    /// like `soreceive` after a burst of segments.
    fn deliver_data(self: &Rc<Self>, engine: &mut Engine, lease: &mut CpuLease, data: Vec<u8>) {
        let model = lease.model().clone();
        lease.charge(model.socket_layer);
        self.pending_data.borrow_mut().extend_from_slice(&data);
        if self.wakeup_queued.replace(true) {
            return;
        }
        lease.charge(model.process_wakeup);
        let at = lease.now();
        let cpu = self.layer.shared.cpu.clone();
        let process = self.process.clone();
        let sock = self.clone();
        engine.schedule_at(at, move |eng| {
            let mut user = cpu.begin(eng.now());
            let m = user.model().clone();
            user.charge(m.context_switch);
            process.trap(&mut user);
            sock.wakeup_queued.set(false);
            let data = std::mem::take(&mut *sock.pending_data.borrow_mut());
            if data.is_empty() {
                return;
            }
            process.copyout(&mut user, data.len());
            let cb = sock.callbacks.borrow().on_data.clone();
            if let Some(cb) = cb {
                cb(eng, &mut user, &sock, &data);
            }
        });
    }

    /// Crosses into user space: socket-layer + wakeup on the kernel side,
    /// then context switch + trap return (+ copyout for data) in the
    /// process before the callback runs.
    fn user_callback(self: &Rc<Self>, engine: &mut Engine, lease: &mut CpuLease, ev: UserEvent) {
        let model = lease.model().clone();
        lease.charge(model.socket_layer + model.process_wakeup);
        let at = lease.now();
        let cpu = self.layer.shared.cpu.clone();
        let sock = self.clone();
        let process = self.process.clone();
        engine.schedule_at(at, move |eng| {
            let mut user = cpu.begin(eng.now());
            let m = user.model().clone();
            user.charge(m.context_switch);
            process.trap(&mut user);
            match &ev {
                UserEvent::Connected => {
                    let cb = sock.callbacks.borrow().on_connected.clone();
                    if let Some(cb) = cb {
                        cb(eng, &mut user, &sock);
                    }
                }
                UserEvent::PeerClose => {
                    let cb = sock.callbacks.borrow().on_peer_close.clone();
                    if let Some(cb) = cb {
                        cb(eng, &mut user, &sock);
                    }
                }
                UserEvent::Closed => {
                    let cb = sock.callbacks.borrow().on_closed.clone();
                    if let Some(cb) = cb {
                        cb(eng, &mut user, &sock);
                    }
                }
            }
        });
    }

    fn rearm_timer(self: &Rc<Self>, engine: &mut Engine) {
        if let Some(old) = self.timer.borrow_mut().take() {
            old.cancel();
        }
        let Some(deadline_ns) = self.tcb.borrow().next_timeout() else {
            return;
        };
        let now = engine.now().as_nanos();
        let delay = SimDuration::from_nanos(deadline_ns.saturating_sub(now));
        let sock = self.clone();
        let handle = engine.schedule_cancelable(delay, move |eng| {
            if sock.gone.get() {
                return;
            }
            let mut lease = sock.layer.shared.cpu.begin(eng.now());
            let now = lease.now().as_nanos();
            let actions = sock.tcb.borrow_mut().on_timer(now);
            sock.process_actions(eng, &mut lease, actions);
        });
        *self.timer.borrow_mut() = Some(handle);
    }

    fn teardown(&self) {
        if self.gone.replace(true) {
            return;
        }
        if let Some(t) = self.timer.borrow_mut().take() {
            t.cancel();
        }
        self.layer.conns.borrow_mut().remove(&self.key);
    }
}

enum UserEvent {
    Connected,
    PeerClose,
    Closed,
}
