//! # plexus-baseline — the DIGITAL UNIX stand-in
//!
//! The conventional monolithic operating system the paper compares Plexus
//! against (§4): the *same* device drivers (`plexus-sim`) and the *same*
//! protocol implementations (`plexus-net`), but structured with user
//! processes behind a socket API — traps, user/kernel copies, socket-layer
//! bookkeeping, softirq hops, process wakeups and context switches on
//! every packet. The measured difference between this crate and
//! `plexus-core` is therefore pure OS structure, which is exactly the
//! paper's claim about Figure 5.
//!
//! * [`stack`] — the monolithic kernel path and UDP sockets.
//! * [`tcp_socket`] — TCP sockets over the shared `Tcb` state machine.
//! * [`splice`] — the user-level TCP forwarder of §5.2 (two spliced
//!   sockets; breaks end-to-end semantics, doubles the protocol work).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod splice;
pub mod stack;
pub mod tcp_socket;

pub use splice::UserSplice;
pub use stack::{BaselineStats, MonolithicStack, UdpMessage, UdpSocket};
pub use tcp_socket::{SocketCallbacks, TcpLayer, TcpSocket};
