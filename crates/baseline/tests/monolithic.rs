//! End-to-end tests of the monolithic baseline stack, including the
//! user-level splice forwarder.

use std::cell::{Cell, RefCell};
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_baseline::{MonolithicStack, SocketCallbacks, UserSplice};
use plexus_kernel::vm::AddressSpace;
use plexus_net::ether::MacAddr;
use plexus_sim::nic::NicProfile;
use plexus_sim::time::SimDuration;
use plexus_sim::World;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn two_machines() -> (World, Rc<MonolithicStack>, Rc<MonolithicStack>) {
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let sa = MonolithicStack::attach(&a, &nics[0], ip(1), MacAddr::local(1));
    let sb = MonolithicStack::attach(&b, &nics[1], ip(2), MacAddr::local(2));
    sa.seed_arp(sb.ip(), sb.mac());
    sb.seed_arp(sa.ip(), sa.mac());
    (world, sa, sb)
}

#[test]
fn udp_ping_pong_round_trip_is_slower_than_plexus_target() {
    let (mut world, client, server) = two_machines();
    let cproc = AddressSpace::new("client-proc");
    let sproc = AddressSpace::new("server-proc");

    let echo_sock = Rc::new(server.udp_socket(&sproc, 7, true).expect("bind 7"));
    let echo2 = echo_sock.clone();
    echo_sock.recv_loop(world.engine_mut(), move |eng, user, msg| {
        echo2.sendto_in(eng, user, msg.src, msg.src_port, &msg.data);
    });

    let csock = Rc::new(client.udp_socket(&cproc, 2000, true).expect("bind 2000"));
    let reply_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
    let ra = reply_at.clone();
    csock.recv_loop(world.engine_mut(), move |_eng, user, msg| {
        assert_eq!(msg.data, b"12345678");
        ra.set(Some(user.now().as_nanos()));
    });

    let t0 = world.engine().now().as_nanos();
    csock.sendto(world.engine_mut(), ip(2), 7, b"12345678");
    world.run();

    let rtt_us = (reply_at.get().expect("reply") - t0) as f64 / 1000.0;
    // The paper: DIGITAL UNIX is "substantially slower" than Plexus's
    // <600 us on Ethernet. Expect a four-digit number.
    assert!(
        (700.0..2500.0).contains(&rtt_us),
        "DUNIX Ethernet UDP RTT out of plausible range: {rtt_us} us"
    );
    // The boundary crossings actually happened.
    assert!(cproc.traps() >= 1);
    assert!(sproc.bytes_copied_out() >= 8);
    assert!(sproc.bytes_copied_in() >= 8);
}

#[test]
fn backlogged_datagrams_deliver_when_process_blocks() {
    let (mut world, client, server) = two_machines();
    let cproc = AddressSpace::new("c");
    let sproc = AddressSpace::new("s");
    let ssock = Rc::new(server.udp_socket(&sproc, 7, true).unwrap());
    let csock = csock_helper(&client, &cproc);
    // Send before the server process blocks in recvfrom.
    csock.sendto(world.engine_mut(), ip(2), 7, b"early");
    world.run();
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    ssock.recv_loop(world.engine_mut(), move |_, _, msg| {
        g.borrow_mut().push(msg.data);
    });
    world.run();
    assert_eq!(*got.borrow(), vec![b"early".to_vec()]);
}

fn csock_helper(
    stack: &Rc<MonolithicStack>,
    proc_: &Rc<AddressSpace>,
) -> Rc<plexus_baseline::UdpSocket> {
    Rc::new(stack.udp_socket(proc_, 2000, true).expect("bind"))
}

#[test]
fn port_collision_returns_none() {
    let (_world, _c, server) = two_machines();
    let p = AddressSpace::new("p");
    let _a = server.udp_socket(&p, 9, true).expect("first bind");
    assert!(server.udp_socket(&p, 9, true).is_none());
}

#[test]
fn icmp_echo_is_answered_in_kernel() {
    let (mut world, client, server) = two_machines();
    client.ping(world.engine_mut(), ip(2), 1, 1, b"hello");
    world.run();
    assert_eq!(server.stats().icmp_echoes, 1);
}

#[test]
fn tcp_connect_transfer_close() {
    let (mut world, client, server) = two_machines();
    let cproc = AddressSpace::new("c");
    let sproc = AddressSpace::new("s");

    server.tcp().listen(&sproc, 80, |_eng, _user, sock| {
        sock.set_callbacks(SocketCallbacks {
            on_data: Some(Rc::new(|eng, user, sock, data| {
                let mut out = b"re:".to_vec();
                out.extend_from_slice(data);
                sock.send_in(eng, user, &out);
            })),
            on_peer_close: Some(Rc::new(|eng, user, sock| sock.close_in(eng, user))),
            ..Default::default()
        });
    });

    let got = Rc::new(RefCell::new(Vec::new()));
    let closed = Rc::new(Cell::new(false));
    let conn = client
        .tcp()
        .connect(world.engine_mut(), &cproc, (ip(2), 80));
    let (g, cl) = (got.clone(), closed.clone());
    conn.set_callbacks(SocketCallbacks {
        on_connected: Some(Rc::new(|eng, user, sock| {
            sock.send_in(eng, user, b"payload");
        })),
        on_data: Some(Rc::new(move |_, _, _, data| {
            g.borrow_mut().extend_from_slice(data);
        })),
        on_closed: Some(Rc::new(move |_, _, _| cl.set(true))),
        ..Default::default()
    });
    world.run_for(SimDuration::from_millis(500));
    assert_eq!(*got.borrow(), b"re:payload");
    conn.close(world.engine_mut());
    world.run_for(SimDuration::from_secs(5));
    assert_eq!(conn.state(), plexus_net::tcp::TcpState::Closed);
}

#[test]
fn tcp_bulk_transfer_is_intact() {
    let (mut world, client, server) = two_machines();
    let cproc = AddressSpace::new("c");
    let sproc = AddressSpace::new("s");
    let received = Rc::new(RefCell::new(Vec::new()));
    let r = received.clone();
    server.tcp().listen(&sproc, 5001, move |_eng, _user, sock| {
        let r = r.clone();
        sock.set_callbacks(SocketCallbacks {
            on_data: Some(Rc::new(move |_, _, _, data| {
                r.borrow_mut().extend_from_slice(data);
            })),
            ..Default::default()
        });
    });
    let data: Vec<u8> = (0u32..80_000).map(|x| (x % 249) as u8).collect();
    let conn = client
        .tcp()
        .connect(world.engine_mut(), &cproc, (ip(2), 5001));
    let payload = data.clone();
    conn.set_callbacks(SocketCallbacks {
        on_connected: Some(Rc::new(move |eng, user, sock| {
            sock.send_in(eng, user, &payload);
        })),
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(30));
    assert_eq!(received.borrow().len(), data.len());
    assert_eq!(*received.borrow(), data);
}

#[test]
fn user_splice_forwards_but_breaks_end_to_end() {
    // client -> forwarder(splice, port 8080) -> backend(port 80).
    let mut world = World::new();
    let mc = world.add_machine("client");
    let mf = world.add_machine("fwd");
    let ms = world.add_machine("backend");
    let (_m, nics) = world.connect(
        &[&mc, &mf, &ms],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let client = MonolithicStack::attach(&mc, &nics[0], ip(1), MacAddr::local(1));
    let fwd = MonolithicStack::attach(&mf, &nics[1], ip(2), MacAddr::local(2));
    let backend = MonolithicStack::attach(&ms, &nics[2], ip(3), MacAddr::local(3));
    for (a, b) in [(&client, &fwd), (&client, &backend), (&fwd, &backend)] {
        a.seed_arp(b.ip(), b.mac());
        b.seed_arp(a.ip(), a.mac());
    }

    let bproc = AddressSpace::new("backend-proc");
    backend.tcp().listen(&bproc, 80, |_eng, _user, sock| {
        sock.set_callbacks(SocketCallbacks {
            on_data: Some(Rc::new(|eng, user, sock, data| {
                let mut out = b"srv:".to_vec();
                out.extend_from_slice(data);
                sock.send_in(eng, user, &out);
            })),
            ..Default::default()
        });
    });

    let splice = UserSplice::start(&fwd, world.engine_mut(), 8080, (ip(3), 80));

    let cproc = AddressSpace::new("client-proc");
    let got = Rc::new(RefCell::new(Vec::new()));
    let conn = client
        .tcp()
        .connect(world.engine_mut(), &cproc, (ip(2), 8080));
    let g = got.clone();
    conn.set_callbacks(SocketCallbacks {
        on_connected: Some(Rc::new(|eng, user, sock| sock.send_in(eng, user, b"ping"))),
        on_data: Some(Rc::new(move |_, _, _, data| {
            g.borrow_mut().extend_from_slice(data);
        })),
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(10));
    assert_eq!(*got.borrow(), b"srv:ping", "bytes crossed the splice");
    assert_eq!(splice.pair_count(), 1);
    // The end-to-end break: the client's TCP peer is the forwarder, and
    // the backend's TCP peer is also the forwarder — never each other.
    assert_eq!(conn.remote().0, ip(2));
}

#[test]
fn checksum_disabled_udp_socket_skips_verification() {
    let (mut world, client, server) = two_machines();
    let cproc = AddressSpace::new("c");
    let sproc = AddressSpace::new("s");
    // Both ends opt out of the UDP checksum (§1.1's media-traffic knob,
    // available to DIGITAL UNIX sockets too).
    let ssock = Rc::new(server.udp_socket(&sproc, 7, false).unwrap());
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    ssock.recv_loop(world.engine_mut(), move |_, _, msg| {
        g.borrow_mut().push(msg.data);
    });
    let csock = Rc::new(client.udp_socket(&cproc, 2000, false).unwrap());
    csock.sendto(world.engine_mut(), ip(2), 7, b"no integrity");
    world.run();
    assert_eq!(*got.borrow(), vec![b"no integrity".to_vec()]);
}

#[test]
fn udp_to_unbound_port_is_counted() {
    let (mut world, client, server) = two_machines();
    let cproc = AddressSpace::new("c");
    let csock = Rc::new(client.udp_socket(&cproc, 2000, true).unwrap());
    csock.sendto(world.engine_mut(), ip(2), 4444, b"anyone there?");
    world.run();
    assert_eq!(server.stats().udp_no_socket, 1);
    assert_eq!(server.stats().udp_delivered, 0);
}

#[test]
fn wakeups_coalesce_under_tcp_bursts() {
    // The soreceive-style batching: a burst of segments arriving while the
    // receiving process has not yet run must share boundary crossings, so
    // the number of recv-side traps is well below the segment count. Use
    // the PIO ATM profile, where the receive CPU is the bottleneck and
    // segments genuinely queue behind the woken process.
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::fore_atm_tca100(),
        SimDuration::from_micros(10),
        false,
    );
    let client = MonolithicStack::attach(&a, &nics[0], ip(1), MacAddr::local(1));
    let server = MonolithicStack::attach(&b, &nics[1], ip(2), MacAddr::local(2));
    client.seed_arp(server.ip(), server.mac());
    server.seed_arp(client.ip(), client.mac());
    let cproc = AddressSpace::new("send");
    let sproc = AddressSpace::new("recv");
    let received = Rc::new(Cell::new(0usize));
    let r = received.clone();
    server.tcp().listen(&sproc, 5001, move |_, _, sock| {
        let r = r.clone();
        sock.set_callbacks(SocketCallbacks {
            on_data: Some(Rc::new(move |_, _, _, data| {
                r.set(r.get() + data.len());
            })),
            ..Default::default()
        });
    });
    let total = 200 * 1460;
    let conn = client
        .tcp()
        .connect(world.engine_mut(), &cproc, (ip(2), 5001));
    conn.set_callbacks(SocketCallbacks {
        on_connected: Some(Rc::new(move |eng, user, sock| {
            sock.send_in(eng, user, &vec![3u8; total]);
        })),
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(120));
    assert_eq!(received.get(), total);
    let recv_traps = sproc.traps();
    assert!(
        (recv_traps as usize) < 200,
        "200 segments must coalesce into fewer than 200 crossings: {recv_traps}"
    );
    assert!(recv_traps > 1, "but more than one crossing happened");
}

#[test]
fn splice_handles_multiple_concurrent_clients() {
    // Several clients through one splice port: each gets its own pair of
    // spliced sockets and its own bytes back.
    let mut world = World::new();
    let mc = world.add_machine("clients");
    let mf = world.add_machine("fwd");
    let ms = world.add_machine("backend");
    let (_m, nics) = world.connect(
        &[&mc, &mf, &ms],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let client = MonolithicStack::attach(&mc, &nics[0], ip(1), MacAddr::local(1));
    let fwd = MonolithicStack::attach(&mf, &nics[1], ip(2), MacAddr::local(2));
    let backend = MonolithicStack::attach(&ms, &nics[2], ip(3), MacAddr::local(3));
    for (a, b) in [(&client, &fwd), (&client, &backend), (&fwd, &backend)] {
        a.seed_arp(b.ip(), b.mac());
        b.seed_arp(a.ip(), a.mac());
    }
    let bproc = AddressSpace::new("svc");
    backend.tcp().listen(&bproc, 80, |_eng, _user, sock| {
        sock.set_callbacks(SocketCallbacks {
            on_data: Some(Rc::new(|eng, user, sock, data| {
                sock.send_in(eng, user, data);
            })),
            on_peer_close: Some(Rc::new(|eng, user, sock| sock.close_in(eng, user))),
            ..Default::default()
        });
    });
    let splice = UserSplice::start(&fwd, world.engine_mut(), 8080, (ip(3), 80));

    const N: usize = 8;
    let cproc = AddressSpace::new("cli");
    let results: Rc<RefCell<Vec<Option<Vec<u8>>>>> = Rc::new(RefCell::new(vec![None; N]));
    for i in 0..N {
        let conn = client
            .tcp()
            .connect(world.engine_mut(), &cproc, (ip(2), 8080));
        let res = results.clone();
        let body = vec![i as u8 + 1; 24];
        let b2 = body.clone();
        conn.set_callbacks(SocketCallbacks {
            on_connected: Some(Rc::new(move |eng, user, sock| {
                sock.send_in(eng, user, &b2);
            })),
            on_data: Some(Rc::new(move |_, _, _, data| {
                res.borrow_mut()[i] = Some(data.to_vec());
            })),
            ..Default::default()
        });
    }
    world.run_for(SimDuration::from_secs(20));
    assert_eq!(splice.pair_count(), N);
    for i in 0..N {
        assert_eq!(
            results.borrow()[i].as_deref(),
            Some(&vec![i as u8 + 1; 24][..]),
            "client {i} got its own bytes back"
        );
    }
}
