//! # plexus-net — the protocol suite
//!
//! The protocols of Figure 1's graph, shared (exactly as in the paper, §4)
//! by both the Plexus graph (`plexus-core`) and the monolithic baseline
//! (`plexus-baseline`):
//!
//! * [`mbuf`] — Berkeley memory buffers with zero-copy sharing and explicit
//!   copy-on-write (§3.4).
//! * [`checksum`] — the Internet checksum, incremental updates.
//! * [`ether`] / [`arp`] / [`ip`] / [`icmp`] / [`udp`] / [`tcp`] — the
//!   wire protocols; headers are accessed through the kernel's `VIEW`
//!   framework (zero-copy typed views, §3.2).
//! * [`http`] — a minimal HTTP/1.0 for the §7 demonstration.
//!
//! Everything here is pure protocol logic — no simulator dependencies —
//! which is what lets the same code run under both OS structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod checksum;
pub mod ether;
pub mod http;
pub mod icmp;
pub mod ip;
pub mod mbuf;
pub mod tcp;
pub mod udp;

pub use ether::{EtherType, MacAddr};
pub use mbuf::Mbuf;
