//! The Internet checksum (RFC 1071) and incremental updates (RFC 1624).
//!
//! Used by IP (header), ICMP (whole message), UDP and TCP (pseudo-header +
//! payload; UDP's may be disabled, which is exactly the application-
//! specific optimization §1.1 motivates for audio/video). The forwarding
//! extension (§5.2) uses the incremental form to fix up checksums after
//! rewriting addresses without rescanning the payload.

use crate::mbuf::Mbuf;

/// Accumulates the one's-complement sum incrementally.
#[derive(Clone, Copy, Debug, Default)]
pub struct Checksum {
    sum: u32,
    /// True if an odd byte is pending (affects alignment of the next chunk).
    odd: bool,
    pending: u8,
}

impl Checksum {
    /// Starts an empty sum.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Starts from an already-accumulated (unfolded) partial sum — how a
    /// NIC with checksum offload resumes the pseudo-header partial the
    /// stack handed down in the packet header.
    pub fn with_partial(sum: u32) -> Checksum {
        Checksum {
            sum,
            ..Checksum::default()
        }
    }

    /// The unfolded partial sum accumulated so far (only meaningful while
    /// no odd byte is pending).
    pub fn partial(&self) -> u32 {
        debug_assert!(!self.odd, "partial taken mid-byte");
        self.sum
    }

    /// Feeds bytes into the sum, handling odd-length chunks across calls.
    pub fn add(&mut self, bytes: &[u8]) -> &mut Self {
        let mut i = 0;
        if self.odd && !bytes.is_empty() {
            self.sum += u16::from_be_bytes([self.pending, bytes[0]]) as u32;
            self.odd = false;
            i = 1;
        }
        while i + 1 < bytes.len() {
            self.sum += u16::from_be_bytes([bytes[i], bytes[i + 1]]) as u32;
            i += 2;
        }
        if i < bytes.len() {
            self.pending = bytes[i];
            self.odd = true;
        }
        self
    }

    /// Feeds a big-endian `u16`.
    pub fn add_u16(&mut self, v: u16) -> &mut Self {
        self.add(&v.to_be_bytes())
    }

    /// Feeds a big-endian `u32`.
    pub fn add_u32(&mut self, v: u32) -> &mut Self {
        self.add(&v.to_be_bytes())
    }

    /// Folds and complements, producing the wire checksum value.
    pub fn finish(&self) -> u16 {
        let mut sum = self.sum;
        if self.odd {
            sum += u16::from_be_bytes([self.pending, 0]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a contiguous buffer.
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add(bytes);
    c.finish()
}

/// Checksum of an mbuf chain's payload (segment boundaries may fall on odd
/// offsets; the accumulator handles that).
pub fn checksum_mbuf(m: &Mbuf) -> u16 {
    let mut c = Checksum::new();
    for seg in m.segments() {
        c.add(seg);
    }
    c.finish()
}

/// Checksum of the tail of an mbuf chain starting at byte offset `from`,
/// seeded with an unfolded partial sum (the pseudo-header). This is the
/// gather a checksum-offload NIC performs while DMAing the chain: segment
/// boundaries may fall anywhere, including on odd offsets.
pub fn checksum_mbuf_from(m: &Mbuf, from: usize, partial: u32) -> u16 {
    let mut c = Checksum::with_partial(partial);
    let mut skip = from;
    for seg in m.segments() {
        if skip >= seg.len() {
            skip -= seg.len();
            continue;
        }
        c.add(&seg[skip..]);
        skip = 0;
    }
    c.finish()
}

/// Verifies a buffer whose checksum field is *included*: the sum over
/// everything must be zero.
pub fn verify(bytes: &[u8]) -> bool {
    checksum(bytes) == 0
}

/// Verifies a transport segment (header + payload, checksum field
/// included) against its pseudo-header partial sum: valid iff the seeded
/// sum folds to zero. This is what receivers — and the offload
/// equivalence tests — check on frames whose checksum the NIC filled.
pub fn verify_checksum(region: &[u8], pseudo: u32) -> bool {
    let mut c = Checksum::with_partial(pseudo);
    c.add(region);
    c.finish() == 0
}

/// A transmit checksum deferred to the NIC: the stack leaves the field
/// zero and stamps this descriptor in the packet header; the adapter
/// computes the Internet checksum over the tail of the frame during the
/// DMA gather and patches the field on the way out.
///
/// Offsets count from the packet *end*, so the link/network headers that
/// lower layers prepend after the request is stamped never invalidate
/// them (nothing on the transmit path appends trailing bytes).
///
/// This is the simulator's [`plexus_sim::nic::TxCsum`] under the name the
/// protocol stack uses — one descriptor type travels from the transport
/// layer down through the driver API to the adapter.
pub use plexus_sim::nic::TxCsum as CsumOffload;

/// Computes a deferred checksum over `m` (the full frame as it will be
/// serialized) exactly as the offloading NIC does during the DMA gather —
/// but walking the mbuf chain in place, for tests and host-side
/// verification, rather than over the gathered wire image.
pub fn compute_offload(req: &CsumOffload, m: &Mbuf) -> u16 {
    let total = m.total_len();
    debug_assert!(req.start_from_end <= total && req.field_from_end + 2 <= total);
    let v = checksum_mbuf_from(m, total - req.start_from_end, req.pseudo);
    if v == 0 && req.zero_to_ones {
        0xFFFF
    } else {
        v
    }
}

/// RFC 1624 incremental update: given the old checksum and a 16-bit field
/// change `old -> new`, returns the new checksum without rescanning.
pub fn incremental_update(check: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m') (RFC 1624 eqn. 3).
    let mut sum = (!check as u32) + (!old as u32) + new as u32;
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // RFC 1071 §3 example data.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0xddf2, checksum = ~0xddf2 = 0x220d.
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_of_message_including_its_checksum_is_zero() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 1;
        assert!(!verify(&data), "corruption must be detected");
    }

    #[test]
    fn odd_length_handled() {
        let data = [1u8, 2, 3];
        // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
        assert_eq!(checksum(&data), 0xfbfd);
    }

    #[test]
    fn chunked_feeding_matches_one_shot() {
        let data: Vec<u8> = (0..=254).collect();
        for split in [1usize, 2, 7, 128, 253] {
            let mut c = Checksum::new();
            c.add(&data[..split]).add(&data[split..]);
            assert_eq!(c.finish(), checksum(&data), "split at {split}");
        }
    }

    #[test]
    fn mbuf_chain_matches_linearized() {
        let data: Vec<u8> = (0u16..5001).map(|x| (x * 7) as u8).collect();
        let m = Mbuf::from_payload(13, &data);
        assert!(m.segment_count() > 1);
        assert_eq!(checksum_mbuf(&m), checksum(&data));
    }

    #[test]
    fn seeded_chain_tail_matches_contiguous() {
        let data: Vec<u8> = (0u16..4097).map(|x| (x * 13) as u8).collect();
        let m = Mbuf::from_payload(9, &data);
        assert!(m.segment_count() > 1);
        for from in [0usize, 1, 7, 2048, 4000] {
            let mut want = Checksum::with_partial(0x1234);
            want.add(&data[from..]);
            assert_eq!(
                checksum_mbuf_from(&m, from, 0x1234),
                want.finish(),
                "from {from}"
            );
        }
    }

    #[test]
    fn offload_compute_matches_software_and_verifies() {
        // A fake transport segment: 8-byte header (checksum at offset 6)
        // plus an odd-length payload, behind 34 bytes of lower headers.
        let mut pkt = vec![0u8; 34];
        let mut seg = vec![0x11u8, 0x22, 0x00, 0x29, 0x00, 0x00, 0x00, 0x00];
        seg.extend((0u16..33).map(|x| (x * 3) as u8));
        let pseudo = {
            let mut c = Checksum::new();
            c.add_u32(0x0a000001).add_u32(0x0a000002).add_u16(17);
            c.add_u16(seg.len() as u16);
            c.partial()
        };
        // Software pass over pseudo + segment (field zeroed).
        let mut sw = Checksum::with_partial(pseudo);
        sw.add(&seg);
        let want = sw.finish();
        pkt.extend_from_slice(&seg);
        let m = Mbuf::from_payload(0, &pkt);
        let req = CsumOffload {
            start_from_end: seg.len(),
            field_from_end: seg.len() - 6,
            pseudo,
            zero_to_ones: true,
        };
        assert_eq!(compute_offload(&req, &m), want);
        // Patch the field like the NIC does; the result must verify.
        let field = pkt.len() - req.field_from_end;
        pkt[field..field + 2].copy_from_slice(&want.to_be_bytes());
        assert!(verify_checksum(&pkt[pkt.len() - seg.len()..], pseudo));
        pkt[field] ^= 0x40;
        assert!(!verify_checksum(&pkt[pkt.len() - seg.len()..], pseudo));
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0u8; 20];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 31) as u8;
        }
        let old_field = u16::from_be_bytes([data[4], data[5]]);
        let old_check = checksum(&data);
        let new_field: u16 = 0xBEEF;
        data[4..6].copy_from_slice(&new_field.to_be_bytes());
        let recomputed = checksum(&data);
        assert_eq!(
            incremental_update(old_check, old_field, new_field),
            recomputed
        );
    }
}
