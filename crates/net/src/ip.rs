//! IPv4: header handling, fragmentation/reassembly, and routing.
//!
//! The middle of Figure 1's protocol graph. Both the Plexus graph and the
//! monolithic baseline call into this module, mirroring the paper's "same
//! TCP/IP implementation" methodology.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use plexus_kernel::view::{be16, be32, put_be16, WireView};

use crate::checksum::checksum;
use crate::mbuf::Mbuf;

/// IP protocol numbers.
pub mod proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// Length of an IPv4 header without options.
pub const IP_HDR_LEN: usize = 20;

/// Default initial TTL.
pub const DEFAULT_TTL: u8 = 64;

/// Zero-copy view of an IPv4 header.
pub struct IpView<'a>(&'a [u8]);

impl<'a> WireView<'a> for IpView<'a> {
    const WIRE_SIZE: usize = IP_HDR_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        IpView(bytes)
    }
}

impl IpView<'_> {
    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.0[0] >> 4
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        ((self.0[0] & 0x0F) as usize) * 4
    }

    /// Total datagram length (header + payload).
    pub fn total_len(&self) -> usize {
        be16(self.0, 2) as usize
    }

    /// Identification field (fragment grouping).
    pub fn ident(&self) -> u16 {
        be16(self.0, 4)
    }

    /// True if the More Fragments flag is set.
    pub fn more_fragments(&self) -> bool {
        self.0[6] & 0x20 != 0
    }

    /// True if the Don't Fragment flag is set.
    pub fn dont_fragment(&self) -> bool {
        self.0[6] & 0x40 != 0
    }

    /// Fragment offset in bytes.
    pub fn frag_offset(&self) -> usize {
        ((be16(self.0, 6) & 0x1FFF) as usize) * 8
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.0[8]
    }

    /// Payload protocol number.
    pub fn protocol(&self) -> u8 {
        self.0[9]
    }

    /// Header checksum field.
    pub fn checksum_field(&self) -> u16 {
        be16(self.0, 10)
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::from(be32(self.0, 12))
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::from(be32(self.0, 16))
    }

    /// Verifies the header checksum.
    pub fn checksum_ok(&self) -> bool {
        checksum(&self.0[..IP_HDR_LEN]) == 0
    }

    /// True if this datagram is a fragment (not the whole).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.frag_offset() != 0
    }
}

/// The header fields a sender chooses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpHeader {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: u8,
    /// Identification (for fragment grouping).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in bytes (multiple of 8 unless last).
    pub frag_offset: usize,
}

impl IpHeader {
    /// A whole (unfragmented) datagram header.
    pub fn simple(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ident: u16) -> IpHeader {
        IpHeader {
            src,
            dst,
            protocol,
            ident,
            ttl: DEFAULT_TTL,
            more_fragments: false,
            frag_offset: 0,
        }
    }
}

/// Writes a 20-byte IPv4 header (with correct checksum) into `buf`.
///
/// # Panics
///
/// Panics if `buf` is shorter than [`IP_HDR_LEN`] or the fragment offset is
/// not a multiple of 8.
pub fn write_header(buf: &mut [u8], hdr: &IpHeader, payload_len: usize) {
    assert!(buf.len() >= IP_HDR_LEN);
    assert_eq!(hdr.frag_offset % 8, 0, "fragment offset must be 8-aligned");
    buf[0] = 0x45; // Version 4, IHL 5.
    buf[1] = 0; // TOS.
    put_be16(buf, 2, (IP_HDR_LEN + payload_len) as u16);
    put_be16(buf, 4, hdr.ident);
    let flags_frag = ((hdr.more_fragments as u16) << 13) | ((hdr.frag_offset / 8) as u16 & 0x1FFF);
    put_be16(buf, 6, flags_frag);
    buf[8] = hdr.ttl;
    buf[9] = hdr.protocol;
    put_be16(buf, 10, 0);
    buf[12..16].copy_from_slice(&hdr.src.octets());
    buf[16..20].copy_from_slice(&hdr.dst.octets());
    let c = checksum(&buf[..IP_HDR_LEN]);
    put_be16(buf, 10, c);
}

/// Prepends an IP header onto `payload`, producing the datagram.
pub fn encapsulate(hdr: &IpHeader, mut payload: Mbuf) -> Mbuf {
    let len = payload.total_len();
    let space = payload.prepend(IP_HDR_LEN);
    write_header(space, hdr, len);
    payload.stamp_pkthdr();
    payload
}

/// Splits a datagram's payload into IP fragments that fit in `mtu`-byte
/// datagrams. Returns whole datagrams (header + piece). Payloads that fit
/// yield a single unfragmented datagram.
///
/// # Panics
///
/// Panics if `mtu` cannot carry the header plus at least 8 payload bytes.
pub fn fragment(hdr: &IpHeader, payload: &Mbuf, mtu: usize) -> Vec<Mbuf> {
    let total = payload.total_len();
    assert!(mtu >= IP_HDR_LEN + 8, "mtu too small to fragment into");
    let max_piece = (mtu - IP_HDR_LEN) & !7; // Fragment data is 8-aligned.
    if total + IP_HDR_LEN <= mtu {
        return vec![encapsulate(hdr, payload.share())];
    }
    let mut out = Vec::new();
    let mut off = 0;
    while off < total {
        let piece = max_piece.min(total - off);
        let last = off + piece == total;
        let fhdr = IpHeader {
            more_fragments: !last,
            frag_offset: hdr.frag_offset + off,
            ..*hdr
        };
        out.push(encapsulate(&fhdr, payload.range(off, piece)));
        off += piece;
    }
    out
}

/// Key identifying a fragment group.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ident: u16,
    protocol: u8,
}

struct FragGroup {
    /// Received `(offset, bytes)` pieces.
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total length, known once the last fragment arrives.
    total: Option<usize>,
    /// Arrival time of the first fragment, for expiry.
    born_ns: u64,
}

/// Reassembles fragmented datagrams; incomplete groups expire.
pub struct Reassembler {
    groups: HashMap<FragKey, FragGroup>,
    /// Lifetime of an incomplete group, in nanoseconds (default 30 s).
    pub timeout_ns: u64,
    expired: u64,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new()
    }
}

impl Reassembler {
    /// Creates an empty reassembler with the default 30 s timeout.
    pub fn new() -> Reassembler {
        Reassembler {
            groups: HashMap::new(),
            timeout_ns: 30_000_000_000,
            expired: 0,
        }
    }

    /// Number of incomplete groups held.
    pub fn pending(&self) -> usize {
        self.groups.len()
    }

    /// Groups dropped by expiry so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Offers one datagram. Non-fragments pass straight through as
    /// `(header, payload)`. Fragments are held until their group completes,
    /// at which point the reassembled `(header, payload)` is returned.
    pub fn offer(&mut self, dgram: &Mbuf, now_ns: u64) -> Option<(IpHeader, Mbuf)> {
        // Only the header is inspected up front: copy at most the largest
        // legal IP header instead of flattening the whole datagram (the
        // receive path offers every packet, so this runs per arrival).
        let mut bytes = Vec::with_capacity(60);
        dgram.copy_into(0, dgram.total_len().min(60), &mut bytes);
        let v: IpView = plexus_kernel::view::view(&bytes)?;
        if !v.checksum_ok() || v.version() != 4 {
            return None;
        }
        let hlen = v.header_len();
        let data_len = v.total_len().checked_sub(hlen)?;
        if dgram.total_len() < hlen + data_len {
            return None;
        }
        let hdr = IpHeader {
            src: v.src(),
            dst: v.dst(),
            protocol: v.protocol(),
            ident: v.ident(),
            ttl: v.ttl(),
            more_fragments: false,
            frag_offset: 0,
        };
        if !v.is_fragment() {
            return Some((hdr, dgram.range(hlen, data_len)));
        }
        let key = FragKey {
            src: hdr.src,
            dst: hdr.dst,
            ident: hdr.ident,
            protocol: hdr.protocol,
        };
        let group = self.groups.entry(key).or_insert_with(|| FragGroup {
            pieces: Vec::new(),
            total: None,
            born_ns: now_ns,
        });
        let off = v.frag_offset();
        let mut piece = Vec::with_capacity(data_len);
        dgram.copy_into(hlen, data_len, &mut piece);
        group.pieces.push((off, piece));
        if !v.more_fragments() {
            group.total = Some(off + data_len);
        }
        // Check completeness: contiguous coverage of [0, total).
        let total = group.total?;
        let mut pieces: Vec<&(usize, Vec<u8>)> = group.pieces.iter().collect();
        pieces.sort_by_key(|(o, _)| *o);
        let mut covered = 0;
        for (o, d) in &pieces {
            if *o > covered {
                return None; // Hole remains.
            }
            covered = covered.max(o + d.len());
        }
        if covered < total {
            return None;
        }
        // Complete: splice the payload together (overlaps take the later
        // bytes, matching BSD behaviour closely enough for our traffic).
        let mut data = vec![0u8; total];
        for (o, d) in &pieces {
            data[*o..*o + d.len()].copy_from_slice(d);
        }
        self.groups.remove(&key);
        Some((hdr, Mbuf::from_payload(0, &data)))
    }

    /// Drops groups older than the timeout. Returns how many were dropped.
    pub fn expire(&mut self, now_ns: u64) -> usize {
        let timeout = self.timeout_ns;
        let before = self.groups.len();
        self.groups
            .retain(|_, g| now_ns.saturating_sub(g.born_ns) < timeout);
        let dropped = before - self.groups.len();
        self.expired += dropped as u64;
        dropped
    }
}

/// A routing table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Destination network.
    pub prefix: Ipv4Addr,
    /// Prefix length in bits (0 = default route).
    pub prefix_len: u8,
    /// Outgoing interface index.
    pub iface: usize,
    /// Next hop; `None` for directly attached networks.
    pub gateway: Option<Ipv4Addr>,
}

/// Longest-prefix-match routing table.
#[derive(Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Adds a route.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn add(
        &mut self,
        prefix: Ipv4Addr,
        prefix_len: u8,
        iface: usize,
        gateway: Option<Ipv4Addr>,
    ) {
        assert!(prefix_len <= 32);
        self.routes.push(Route {
            prefix,
            prefix_len,
            iface,
            gateway,
        });
    }

    /// Looks up the most specific route for `dst`.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<Route> {
        let d = u32::from(dst);
        self.routes
            .iter()
            .filter(|r| {
                let mask = if r.prefix_len == 0 {
                    0
                } else {
                    u32::MAX << (32 - r.prefix_len)
                };
                (d & mask) == (u32::from(r.prefix) & mask)
            })
            .max_by_key(|r| r.prefix_len)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_kernel::view::view;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn header_round_trips_with_valid_checksum() {
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 0x1234);
        let payload = Mbuf::from_payload(64, b"hello");
        let dgram = encapsulate(&hdr, payload);
        let bytes = dgram.to_vec();
        let v: IpView = view(&bytes).expect("full header present");
        assert_eq!(v.version(), 4);
        assert_eq!(v.header_len(), IP_HDR_LEN);
        assert_eq!(v.total_len(), IP_HDR_LEN + 5);
        assert_eq!(v.src(), addr(1));
        assert_eq!(v.dst(), addr(2));
        assert_eq!(v.protocol(), proto::UDP);
        assert_eq!(v.ident(), 0x1234);
        assert!(v.checksum_ok());
        assert!(!v.is_fragment());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 1);
        let mut dgram = encapsulate(&hdr, Mbuf::from_payload(64, b"x"));
        let mut b = [0u8; 1];
        dgram.read_at(8, &mut b);
        dgram.write_at(8, &[b[0] ^ 0xFF]); // Flip the TTL.
        let bytes = dgram.to_vec();
        let v: IpView = view(&bytes).unwrap();
        assert!(!v.checksum_ok());
    }

    #[test]
    fn small_payload_is_not_fragmented() {
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 7);
        let payload = Mbuf::from_payload(64, &[9u8; 100]);
        let frags = fragment(&hdr, &payload, 1500);
        assert_eq!(frags.len(), 1);
        let bytes = frags[0].to_vec();
        let v: IpView = view(&bytes).unwrap();
        assert!(!v.is_fragment());
    }

    #[test]
    fn fragmentation_covers_payload_exactly() {
        let data: Vec<u8> = (0u16..4000).map(|x| x as u8).collect();
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 42);
        let frags = fragment(&hdr, &Mbuf::from_payload(0, &data), 1500);
        assert_eq!(frags.len(), 3);
        let mut covered = Vec::new();
        for (i, f) in frags.iter().enumerate() {
            let bytes = f.to_vec();
            let v: IpView = view(&bytes).unwrap();
            assert!(v.checksum_ok());
            assert_eq!(v.ident(), 42);
            assert_eq!(v.more_fragments(), i != frags.len() - 1);
            assert_eq!(v.frag_offset(), covered.len());
            covered.extend_from_slice(&bytes[IP_HDR_LEN..]);
            assert!(bytes.len() <= 1500);
        }
        assert_eq!(covered, data);
    }

    #[test]
    fn reassembly_restores_payload_even_out_of_order() {
        let data: Vec<u8> = (0u16..5000).map(|x| (x * 3) as u8).collect();
        let hdr = IpHeader::simple(addr(3), addr(4), proto::UDP, 77);
        let mut frags = fragment(&hdr, &Mbuf::from_payload(0, &data), 1004);
        assert!(frags.len() >= 5);
        frags.reverse(); // Worst-case arrival order.
        let mut r = Reassembler::new();
        let mut result = None;
        for (k, f) in frags.iter().enumerate() {
            result = r.offer(f, 0);
            if result.is_some() && k != frags.len() - 1 {
                panic!("completed before all fragments arrived");
            }
        }
        let (hdr2, payload) = result.expect("all fragments offered");
        assert_eq!(hdr2.src, addr(3));
        assert_eq!(hdr2.protocol, proto::UDP);
        assert_eq!(payload.to_vec(), data);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn non_fragment_passes_straight_through() {
        let hdr = IpHeader::simple(addr(1), addr(2), proto::ICMP, 9);
        let dgram = encapsulate(&hdr, Mbuf::from_payload(64, b"ping"));
        let mut r = Reassembler::new();
        let (h, p) = r.offer(&dgram, 0).expect("whole datagram");
        assert_eq!(h.protocol, proto::ICMP);
        assert_eq!(p.to_vec(), b"ping");
    }

    #[test]
    fn offer_fast_path_allocates_no_clusters() {
        // The pre-parse header peek is a bounded stack-of-the-Vec copy and
        // the non-fragment result is a range view sharing the input's
        // storage — offering a whole datagram must not touch the cluster
        // pool. This pins the removal of the old full `to_vec()` flatten.
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 11);
        let dgram = encapsulate(&hdr, Mbuf::from_payload(64, &[5u8; 900]));
        let mut r = Reassembler::new();
        let before = crate::mbuf::cluster_pool_stats();
        let (_, p) = r.offer(&dgram, 0).expect("whole datagram");
        let after = crate::mbuf::cluster_pool_stats();
        assert_eq!(p.total_len(), 900);
        assert_eq!(
            after.allocated + after.reused + after.unpooled,
            before.allocated + before.reused + before.unpooled,
            "fast-path offer must not allocate cluster storage"
        );
    }

    #[test]
    fn incomplete_groups_expire() {
        let data = vec![1u8; 3000];
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 5);
        let frags = fragment(&hdr, &Mbuf::from_payload(0, &data), 1500);
        let mut r = Reassembler::new();
        assert!(r.offer(&frags[0], 1_000).is_none());
        assert_eq!(r.pending(), 1);
        assert_eq!(r.expire(2_000), 0, "too early to expire");
        assert_eq!(r.expire(40_000_000_000), 1);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.expired(), 1);
    }

    #[test]
    fn corrupt_fragments_are_ignored() {
        let hdr = IpHeader::simple(addr(1), addr(2), proto::UDP, 5);
        let mut dgram = encapsulate(&hdr, Mbuf::from_payload(64, b"data"));
        dgram.write_at(12, &[0xFF]); // Break the source address (and checksum).
        let mut r = Reassembler::new();
        assert!(r.offer(&dgram, 0).is_none());
    }

    #[test]
    fn route_table_prefers_longest_prefix() {
        let mut rt = RouteTable::new();
        rt.add(Ipv4Addr::new(0, 0, 0, 0), 0, 0, Some(addr(254))); // Default.
        rt.add(Ipv4Addr::new(10, 0, 0, 0), 8, 1, None);
        rt.add(Ipv4Addr::new(10, 0, 0, 0), 24, 2, None);
        let r = rt.lookup(addr(5)).expect("matches");
        assert_eq!(r.iface, 2);
        let r = rt.lookup(Ipv4Addr::new(10, 9, 9, 9)).expect("matches /8");
        assert_eq!(r.iface, 1);
        let r = rt.lookup(Ipv4Addr::new(8, 8, 8, 8)).expect("default");
        assert_eq!(r.iface, 0);
        assert_eq!(r.gateway, Some(addr(254)));
    }

    #[test]
    fn empty_route_table_has_no_match() {
        let rt = RouteTable::new();
        assert!(rt.lookup(addr(1)).is_none());
    }
}
