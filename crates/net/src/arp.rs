//! ARP: IPv4-over-Ethernet address resolution.
//!
//! One of the first-level nodes in Figure 1's protocol graph (the guard
//! `eth.type == ARP?` routes frames here). Provides packet build/parse and
//! a cache with pending-queue semantics: datagrams sent to an unresolved
//! address wait until the reply arrives.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use plexus_kernel::view::{be16, put_be16, WireView};

use crate::ether::MacAddr;

/// ARP packet length for IPv4 over Ethernet.
pub const ARP_LEN: usize = 28;

/// ARP operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

/// A parsed ARP packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// Builds the reply answering `req` on behalf of `my_mac`/`my_ip`.
    pub fn reply_to(req: &ArpPacket, my_mac: MacAddr, my_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: my_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    /// Serializes to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = vec![0u8; ARP_LEN];
        put_be16(&mut b, 0, 1); // Hardware: Ethernet.
        put_be16(&mut b, 2, 0x0800); // Protocol: IPv4.
        b[4] = 6; // MAC length.
        b[5] = 4; // IPv4 length.
        put_be16(
            &mut b,
            6,
            match self.op {
                ArpOp::Request => 1,
                ArpOp::Reply => 2,
            },
        );
        b[8..14].copy_from_slice(&self.sender_mac.0);
        b[14..18].copy_from_slice(&self.sender_ip.octets());
        b[18..24].copy_from_slice(&self.target_mac.0);
        b[24..28].copy_from_slice(&self.target_ip.octets());
        b
    }

    /// Parses from wire format. Returns `None` for malformed or non
    /// IPv4-over-Ethernet packets.
    pub fn parse(bytes: &[u8]) -> Option<ArpPacket> {
        let v: ArpRawView = plexus_kernel::view::view(bytes)?;
        v.decode()
    }
}

/// Raw zero-copy view used by [`ArpPacket::parse`].
struct ArpRawView<'a>(&'a [u8]);

impl<'a> WireView<'a> for ArpRawView<'a> {
    const WIRE_SIZE: usize = ARP_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        ArpRawView(bytes)
    }
}

impl ArpRawView<'_> {
    fn decode(&self) -> Option<ArpPacket> {
        let b = self.0;
        if be16(b, 0) != 1 || be16(b, 2) != 0x0800 || b[4] != 6 || b[5] != 4 {
            return None;
        }
        let op = match be16(b, 6) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        Some(ArpPacket {
            op,
            sender_mac: MacAddr(b[8..14].try_into().expect("fixed slice")),
            sender_ip: Ipv4Addr::new(b[14], b[15], b[16], b[17]),
            target_mac: MacAddr(b[18..24].try_into().expect("fixed slice")),
            target_ip: Ipv4Addr::new(b[24], b[25], b[26], b[27]),
        })
    }
}

/// Result of asking the cache to resolve an address.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The MAC is known.
    Known(MacAddr),
    /// Unknown; the caller should broadcast a request (only `true` the
    /// first time per address while unresolved, to suppress request storms).
    NeedsRequest(bool),
}

/// The ARP cache with entry expiry.
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, (MacAddr, u64)>,
    pending: HashMap<Ipv4Addr, u64>,
    /// Entry lifetime in nanoseconds (default 20 minutes, as in BSD).
    pub ttl_ns: u64,
}

impl Default for ArpCache {
    fn default() -> Self {
        ArpCache::new()
    }
}

impl ArpCache {
    /// Creates an empty cache.
    pub fn new() -> ArpCache {
        ArpCache {
            entries: HashMap::new(),
            pending: HashMap::new(),
            ttl_ns: 20 * 60 * 1_000_000_000,
        }
    }

    /// Looks up `ip`, or notes that a request is needed.
    pub fn resolve(&mut self, ip: Ipv4Addr, now_ns: u64) -> Resolution {
        if let Some((mac, stamped)) = self.entries.get(&ip) {
            if now_ns.saturating_sub(*stamped) < self.ttl_ns {
                return Resolution::Known(*mac);
            }
            self.entries.remove(&ip);
        }
        let first = !self.pending.contains_key(&ip);
        self.pending.insert(ip, now_ns);
        Resolution::NeedsRequest(first)
    }

    /// Learns a binding (from a reply, or opportunistically from a
    /// request's sender fields). Returns `true` if it satisfied a pending
    /// resolution.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr, now_ns: u64) -> bool {
        self.entries.insert(ip, (mac, now_ns));
        self.pending.remove(&ip).is_some()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn request_reply_round_trip() {
        let req = ArpPacket::request(MacAddr::local(1), ip(1), ip(2));
        let parsed = ArpPacket::parse(&req.to_bytes()).expect("well-formed");
        assert_eq!(parsed, req);
        let rep = ArpPacket::reply_to(&parsed, MacAddr::local(2), ip(2));
        let parsed_rep = ArpPacket::parse(&rep.to_bytes()).expect("well-formed");
        assert_eq!(parsed_rep.op, ArpOp::Reply);
        assert_eq!(parsed_rep.sender_mac, MacAddr::local(2));
        assert_eq!(parsed_rep.target_mac, MacAddr::local(1));
        assert_eq!(parsed_rep.target_ip, ip(1));
    }

    #[test]
    fn malformed_packets_are_rejected() {
        assert!(ArpPacket::parse(&[0u8; 10]).is_none(), "too short");
        let mut bad = ArpPacket::request(MacAddr::local(1), ip(1), ip(2)).to_bytes();
        bad[1] = 99; // Wrong hardware type.
        assert!(ArpPacket::parse(&bad).is_none());
        let mut badop = ArpPacket::request(MacAddr::local(1), ip(1), ip(2)).to_bytes();
        badop[7] = 9; // Unknown op.
        assert!(ArpPacket::parse(&badop).is_none());
    }

    #[test]
    fn cache_resolves_after_learning() {
        let mut cache = ArpCache::new();
        assert_eq!(cache.resolve(ip(9), 0), Resolution::NeedsRequest(true));
        // Second ask while pending must not re-broadcast.
        assert_eq!(cache.resolve(ip(9), 10), Resolution::NeedsRequest(false));
        assert!(cache.learn(ip(9), MacAddr::local(9), 20));
        assert_eq!(
            cache.resolve(ip(9), 30),
            Resolution::Known(MacAddr::local(9))
        );
        assert!(
            !cache.learn(ip(9), MacAddr::local(9), 40),
            "not pending now"
        );
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut cache = ArpCache::new();
        cache.ttl_ns = 1_000;
        cache.learn(ip(1), MacAddr::local(1), 0);
        assert_eq!(
            cache.resolve(ip(1), 500),
            Resolution::Known(MacAddr::local(1))
        );
        assert_eq!(cache.resolve(ip(1), 1_500), Resolution::NeedsRequest(true));
        assert!(cache.is_empty());
    }
}
