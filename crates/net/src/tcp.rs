//! TCP: segments, the connection state machine, sliding window, slow
//! start/congestion avoidance, and retransmission.
//!
//! The paper's TCP is commercial vendor code shared by both systems
//! (§4.2); what matters for the reproduction is that Plexus and the
//! baseline run the *same* transport logic, differing only in OS structure.
//! This module is that shared logic, written as a pure state machine: a
//! [`Tcb`] consumes segments/app calls/timer pokes and emits [`Actions`] —
//! segments to transmit, data delivered, timers to (re)arm — with no
//! dependency on the simulator, which makes it exhaustively testable.
//!
//! Time is a bare `u64` of nanoseconds supplied by the caller.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use plexus_kernel::view::{be16, be32, put_be16, put_be32, WireView};

use crate::checksum::{Checksum, CsumOffload};
use crate::ip::proto;
use crate::mbuf::Mbuf;

/// TCP header length (no options on the wire after the SYN's MSS option is
/// folded into [`Tcb::mss`]; we keep headers fixed-size for simplicity).
pub const TCP_HDR_LEN: usize = 20;

/// Default maximum segment size (Ethernet-friendly).
pub const DEFAULT_MSS: usize = 1460;

/// Default receive window.
pub const DEFAULT_WINDOW: u16 = 65535;

/// TCP header flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// No more data from sender.
    pub fin: bool,
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
}

impl TcpFlags {
    /// Just SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        rst: false,
        ack: false,
    };
    /// Just ACK.
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        syn: false,
        fin: false,
        rst: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        syn: false,
        rst: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        rst: true,
        syn: false,
        fin: false,
        ack: false,
    };

    fn to_wire(self) -> u8 {
        (self.fin as u8)
            | ((self.syn as u8) << 1)
            | ((self.rst as u8) << 2)
            | ((self.ack as u8) << 4)
    }

    fn from_wire(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment in parsed form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// MSS option (present on SYN segments).
    pub mss: Option<u16>,
    /// Payload.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Serializes with a pseudo-header checksum for `src`→`dst`. A SYN
    /// carrying an MSS value emits the kind-2 option (RFC 793 §3.1).
    pub fn to_bytes(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let opt_len = if self.mss.is_some() && self.flags.syn {
            4
        } else {
            0
        };
        let hdr_len = TCP_HDR_LEN + opt_len;
        let len = hdr_len + self.payload.len();
        let mut b = vec![0u8; len];
        put_be16(&mut b, 0, self.src_port);
        put_be16(&mut b, 2, self.dst_port);
        put_be32(&mut b, 4, self.seq);
        put_be32(&mut b, 8, self.ack);
        b[12] = ((hdr_len / 4) as u8) << 4;
        b[13] = self.flags.to_wire();
        put_be16(&mut b, 14, self.window);
        if opt_len > 0 {
            b[TCP_HDR_LEN] = 2; // Kind: MSS.
            b[TCP_HDR_LEN + 1] = 4; // Length.
            put_be16(&mut b, TCP_HDR_LEN + 2, self.mss.expect("checked"));
        }
        b[hdr_len..].copy_from_slice(&self.payload);
        let mut c = Checksum::new();
        c.add(&src.octets())
            .add(&dst.octets())
            .add_u16(proto::TCP as u16)
            .add_u16(len as u16)
            .add(&b);
        let sum = c.finish();
        put_be16(&mut b, 16, sum);
        b
    }

    /// Serializes straight into an mbuf with `leading` spare bytes ahead of
    /// the TCP header for lower-layer encapsulation. The payload is copied
    /// once (into the mbuf) instead of the twice [`TcpSegment::to_bytes`] +
    /// `Mbuf::from_payload` would cost, and the checksum streams over the
    /// mbuf chain in place.
    pub fn to_mbuf(&self, src: Ipv4Addr, dst: Ipv4Addr, leading: usize) -> Mbuf {
        let opt_len = if self.mss.is_some() && self.flags.syn {
            4
        } else {
            0
        };
        let hdr_len = TCP_HDR_LEN + opt_len;
        let len = hdr_len + self.payload.len();
        let mut m = Mbuf::from_payload(leading + hdr_len, &self.payload);
        let b = m.prepend(hdr_len);
        put_be16(b, 0, self.src_port);
        put_be16(b, 2, self.dst_port);
        put_be32(b, 4, self.seq);
        put_be32(b, 8, self.ack);
        b[12] = ((hdr_len / 4) as u8) << 4;
        b[13] = self.flags.to_wire();
        put_be16(b, 14, self.window);
        if opt_len > 0 {
            b[TCP_HDR_LEN] = 2; // Kind: MSS.
            b[TCP_HDR_LEN + 1] = 4; // Length.
            put_be16(b, TCP_HDR_LEN + 2, self.mss.expect("checked"));
        }
        let mut c = Checksum::new();
        c.add(&src.octets())
            .add(&dst.octets())
            .add_u16(proto::TCP as u16)
            .add_u16(len as u16);
        for seg in m.segments() {
            c.add(seg);
        }
        let sum = c.finish();
        m.write_at(16, &sum.to_be_bytes());
        m
    }

    /// [`TcpSegment::to_mbuf`] with the checksum deferred to a NIC that
    /// advertises checksum offload: the field stays zero and a
    /// [`CsumOffload`] descriptor (pseudo-header partial included) is
    /// stamped in the packet header for the adapter to fill during the DMA
    /// gather. Unlike UDP, a computed zero stays zero on the wire.
    pub fn to_mbuf_offload(&self, src: Ipv4Addr, dst: Ipv4Addr, leading: usize) -> Mbuf {
        let opt_len = if self.mss.is_some() && self.flags.syn {
            4
        } else {
            0
        };
        let hdr_len = TCP_HDR_LEN + opt_len;
        let len = hdr_len + self.payload.len();
        let mut m = Mbuf::from_payload(leading + hdr_len, &self.payload);
        let b = m.prepend(hdr_len);
        put_be16(b, 0, self.src_port);
        put_be16(b, 2, self.dst_port);
        put_be32(b, 4, self.seq);
        put_be32(b, 8, self.ack);
        b[12] = ((hdr_len / 4) as u8) << 4;
        b[13] = self.flags.to_wire();
        put_be16(b, 14, self.window);
        if opt_len > 0 {
            b[TCP_HDR_LEN] = 2; // Kind: MSS.
            b[TCP_HDR_LEN + 1] = 4; // Length.
            put_be16(b, TCP_HDR_LEN + 2, self.mss.expect("checked"));
        }
        m.stamp_pkthdr();
        let mut c = Checksum::new();
        c.add(&src.octets())
            .add(&dst.octets())
            .add_u16(proto::TCP as u16)
            .add_u16(len as u16);
        m.pkthdr_mut().csum = Some(CsumOffload {
            start_from_end: len,
            field_from_end: len - 16,
            pseudo: c.partial(),
            zero_to_ones: false,
        });
        m
    }

    /// Parses and verifies the checksum. `None` on malformed/corrupt input.
    pub fn parse(src: Ipv4Addr, dst: Ipv4Addr, bytes: &[u8]) -> Option<TcpSegment> {
        let v: TcpRawView = plexus_kernel::view::view(bytes)?;
        let data_off = ((v.0[12] >> 4) as usize) * 4;
        if data_off < TCP_HDR_LEN || data_off > bytes.len() {
            return None;
        }
        let mut c = Checksum::new();
        c.add(&src.octets())
            .add(&dst.octets())
            .add_u16(proto::TCP as u16)
            .add_u16(bytes.len() as u16)
            .add(bytes);
        if c.finish() != 0 {
            return None;
        }
        // Walk the options area for an MSS option (kind 2).
        let mut mss = None;
        let mut i = TCP_HDR_LEN;
        while i < data_off {
            match bytes[i] {
                0 => break,  // End of options.
                1 => i += 1, // NOP.
                2 if i + 4 <= data_off && bytes[i + 1] == 4 => {
                    mss = Some(be16(bytes, i + 2));
                    i += 4;
                }
                _ => {
                    let l = *bytes.get(i + 1)? as usize;
                    if l < 2 {
                        return None;
                    }
                    i += l;
                }
            }
        }
        Some(TcpSegment {
            src_port: be16(bytes, 0),
            dst_port: be16(bytes, 2),
            seq: be32(bytes, 4),
            ack: be32(bytes, 8),
            flags: TcpFlags::from_wire(bytes[13]),
            window: be16(bytes, 14),
            mss,
            payload: bytes[data_off..].to_vec(),
        })
    }

    /// Sequence space this segment occupies (payload + SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }
}

struct TcpRawView<'a>(&'a [u8]);

impl<'a> WireView<'a> for TcpRawView<'a> {
    const WIRE_SIZE: usize = TCP_HDR_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        TcpRawView(bytes)
    }
}

/// Modular sequence comparison: `a < b`.
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Modular sequence comparison: `a <= b`.
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Connection states (RFC 793).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open.
    Listen,
    /// Active open sent SYN.
    SynSent,
    /// SYN received, SYN+ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// Active close, FIN sent.
    FinWait1,
    /// Our FIN acked, waiting for peer's.
    FinWait2,
    /// Peer closed, we may still send.
    CloseWait,
    /// Simultaneous close.
    Closing,
    /// Passive close, FIN sent.
    LastAck,
    /// Draining old duplicates.
    TimeWait,
}

/// What a [`Tcb`] wants done after processing an input.
#[derive(Debug, Default)]
pub struct Actions {
    /// Segments to transmit, in order.
    pub segments: Vec<TcpSegment>,
    /// The connection just reached `Established`.
    pub connected: bool,
    /// New in-order data is available via [`Tcb::take_received`].
    pub data_available: bool,
    /// The connection fully closed (reached `Closed`).
    pub closed: bool,
    /// The connection was reset by the peer.
    pub reset: bool,
    /// The peer finished sending (its FIN was consumed); no more data will
    /// arrive. The application may close its side in response.
    pub peer_fin: bool,
}

impl Actions {
    fn merge(&mut self, other: Actions) {
        self.segments.extend(other.segments);
        self.connected |= other.connected;
        self.data_available |= other.data_available;
        self.closed |= other.closed;
        self.reset |= other.reset;
        self.peer_fin |= other.peer_fin;
    }
}

const INITIAL_RTO_NS: u64 = 1_000_000_000;
const MAX_RTO_NS: u64 = 64_000_000_000;
/// 2×MSL for TIME_WAIT (shortened from 2×30 s to keep simulations brisk;
/// still far longer than any segment lifetime in the simulated networks).
const TIME_WAIT_NS: u64 = 1_000_000_000;

/// A TCP control block: one connection endpoint.
pub struct Tcb {
    state: TcpState,
    local: (Ipv4Addr, u16),
    remote: Option<(Ipv4Addr, u16)>,

    // Send sequence space.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    /// Unacked + unsent bytes; `send_buf[0]` is sequence `snd_una`
    /// (+1 while our SYN is unacked).
    send_buf: Vec<u8>,
    fin_pending: bool,
    fin_seq: Option<u32>,

    // Receive sequence space.
    rcv_nxt: u32,
    rcv_wnd: u16,
    recv_ready: Vec<u8>,
    ooo: BTreeMap<u32, Vec<u8>>,
    peer_fin_seq: Option<u32>,

    // Congestion control.
    /// Congestion window, bytes.
    pub cwnd: usize,
    /// Slow-start threshold, bytes.
    pub ssthresh: usize,
    /// Maximum segment size.
    pub mss: usize,
    /// Segmentation-offload factor: the TCB emits super-segments of up to
    /// `mss * gso_segs` bytes and relies on a lower layer (the TCP manager
    /// driving a TSO-capable NIC) to split them into wire-MSS chunks. 1
    /// disables the optimization; the wire never carries more than `mss`
    /// bytes per segment either way.
    gso_segs: usize,
    dup_acks: u32,

    // Retransmission.
    rto_ns: u64,
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    rtt_sample: Option<(u32, u64)>,
    timer_deadline: Option<u64>,
    time_wait_deadline: Option<u64>,
    /// Retransmitted segments (statistics; drives the bench reports).
    pub retransmits: u64,
}

impl Tcb {
    fn new(local: (Ipv4Addr, u16), iss: u32) -> Tcb {
        Tcb {
            state: TcpState::Closed,
            local,
            remote: None,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: DEFAULT_WINDOW as u32,
            send_buf: Vec::new(),
            fin_pending: false,
            fin_seq: None,
            rcv_nxt: 0,
            rcv_wnd: DEFAULT_WINDOW,
            recv_ready: Vec::new(),
            ooo: BTreeMap::new(),
            peer_fin_seq: None,
            cwnd: 2 * DEFAULT_MSS,
            ssthresh: 64 * 1024,
            mss: DEFAULT_MSS,
            gso_segs: 1,
            dup_acks: 0,
            rto_ns: INITIAL_RTO_NS,
            srtt_ns: None,
            rttvar_ns: 0,
            rtt_sample: None,
            timer_deadline: None,
            time_wait_deadline: None,
            retransmits: 0,
        }
    }

    /// Passive open: waits for a SYN.
    pub fn listen(local: (Ipv4Addr, u16), iss: u32) -> Tcb {
        let mut t = Tcb::new(local, iss);
        t.state = TcpState::Listen;
        t
    }

    /// Active open: returns the TCB and the SYN to transmit.
    pub fn connect(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        now_ns: u64,
    ) -> (Tcb, Actions) {
        let mut t = Tcb::new(local, iss);
        t.remote = Some(remote);
        t.state = TcpState::SynSent;
        t.snd_nxt = iss.wrapping_add(1);
        let seg = t.make_segment(iss, TcpFlags::SYN, Vec::new());
        t.arm_timer(now_ns);
        let mut a = Actions::default();
        a.segments.push(seg);
        (t, a)
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local address/port.
    pub fn local(&self) -> (Ipv4Addr, u16) {
        self.local
    }

    /// Remote address/port, once known.
    pub fn remote(&self) -> Option<(Ipv4Addr, u16)> {
        self.remote
    }

    /// Bytes buffered but not yet acknowledged (or not yet sent).
    pub fn unacked_len(&self) -> usize {
        self.send_buf.len()
    }

    /// The next instant [`Tcb::on_timer`] should be called, if any.
    pub fn next_timeout(&self) -> Option<u64> {
        match (self.timer_deadline, self.time_wait_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drains data received in order.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_ready)
    }

    fn make_segment(&self, seq: u32, flags: TcpFlags, payload: Vec<u8>) -> TcpSegment {
        TcpSegment {
            src_port: self.local.1,
            dst_port: self.remote.map(|r| r.1).unwrap_or(0),
            seq,
            ack: if flags.ack { self.rcv_nxt } else { 0 },
            flags,
            window: self.advertised_window(),
            mss: if flags.syn {
                Some(self.mss as u16)
            } else {
                None
            },
            payload,
        }
    }

    /// The window we advertise: buffer capacity minus data the application
    /// has not yet drained with [`Tcb::take_received`]. A non-draining
    /// receiver closes the window and flow-controls the sender.
    fn advertised_window(&self) -> u16 {
        (self.rcv_wnd as usize).saturating_sub(self.recv_ready.len()) as u16
    }

    fn arm_timer(&mut self, now_ns: u64) {
        self.timer_deadline = Some(now_ns + self.rto_ns);
    }

    fn cancel_timer(&mut self) {
        self.timer_deadline = None;
    }

    /// Offset of `snd_una` into `send_buf` sequence space: while our SYN is
    /// unacked, sequence `snd_una` is the SYN itself, not data.
    fn syn_in_flight(&self) -> bool {
        matches!(self.state, TcpState::SynSent | TcpState::SynRcvd)
    }

    /// Enables TSO/GSO-style segmentation: output is chunked at
    /// `mss * segs` instead of `mss`, amortizing per-segment protocol
    /// processing. The layer below must split super-segments back to wire
    /// MSS before transmission (see the TCP manager). `segs` is clamped to
    /// at least 1.
    pub fn set_gso_segs(&mut self, segs: usize) {
        self.gso_segs = segs.max(1);
    }

    /// Current segmentation-offload factor (1 = disabled).
    pub fn gso_segs(&self) -> usize {
        self.gso_segs
    }

    /// Largest payload a single emitted segment may carry: the wire MSS
    /// scaled by the GSO factor.
    fn chunk_cap(&self) -> usize {
        self.mss * self.gso_segs
    }

    /// Queues application data; emits whatever the windows allow.
    pub fn send(&mut self, data: &[u8], now_ns: u64) -> Actions {
        assert!(
            matches!(
                self.state,
                TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynRcvd
            ),
            "send in state {:?}",
            self.state
        );
        self.send_buf.extend_from_slice(data);
        self.pump_output(now_ns)
    }

    /// Begins an orderly close; a FIN goes out once the send buffer drains.
    pub fn close(&mut self, now_ns: u64) -> Actions {
        let mut a = Actions::default();
        match self.state {
            TcpState::Closed | TcpState::Listen => {
                self.state = TcpState::Closed;
                a.closed = true;
                return a;
            }
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                a.closed = true;
                return a;
            }
            _ => return a,
        }
        self.fin_pending = true;
        a.merge(self.pump_output(now_ns));
        a
    }

    /// Emits as much queued data (and a pending FIN) as the congestion and
    /// peer windows allow.
    fn pump_output(&mut self, now_ns: u64) -> Actions {
        let mut a = Actions::default();
        if self.syn_in_flight() {
            return a; // Nothing but the SYN until the handshake completes.
        }
        let wnd = self.snd_wnd.min(self.cwnd as u32);
        loop {
            let in_flight = self.snd_nxt.wrapping_sub(self.snd_una);
            let sent_off = in_flight as usize; // Bytes of send_buf already in flight.
            let remaining = self.send_buf.len().saturating_sub(sent_off);
            let room = wnd.saturating_sub(in_flight) as usize;
            let chunk = remaining.min(room).min(self.chunk_cap());
            if chunk == 0 {
                break;
            }
            let payload = self.send_buf[sent_off..sent_off + chunk].to_vec();
            let seg = self.make_segment(self.snd_nxt, TcpFlags::ACK, payload);
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt, now_ns));
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk as u32);
            a.segments.push(seg);
        }
        // FIN once everything queued has been handed to the network.
        let all_sent = self.snd_nxt.wrapping_sub(self.snd_una) as usize >= self.send_buf.len();
        if self.fin_pending && all_sent && self.fin_seq.is_none() {
            let seg = self.make_segment(self.snd_nxt, TcpFlags::FIN_ACK, Vec::new());
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            a.segments.push(seg);
        }
        if !a.segments.is_empty() && self.timer_deadline.is_none() {
            self.arm_timer(now_ns);
        }
        // Window closed with data waiting and nothing outstanding: keep a
        // persist timer running.
        let in_flight = self.snd_nxt.wrapping_sub(self.snd_una);
        if in_flight == 0
            && !self.send_buf.is_empty()
            && self.snd_wnd.min(self.cwnd as u32) == 0
            && self.timer_deadline.is_none()
        {
            self.arm_timer(now_ns);
        }
        a
    }

    /// Handles a retransmission or TIME_WAIT timer having (possibly)
    /// expired. Call with the current time whenever [`Tcb::next_timeout`]
    /// passes.
    pub fn on_timer(&mut self, now_ns: u64) -> Actions {
        let mut a = Actions::default();
        if let Some(tw) = self.time_wait_deadline {
            if now_ns >= tw {
                self.time_wait_deadline = None;
                self.state = TcpState::Closed;
                a.closed = true;
                return a;
            }
        }
        let Some(deadline) = self.timer_deadline else {
            return a;
        };
        if now_ns < deadline {
            return a;
        }
        // Zero-window persist: nothing in flight but data queued and the
        // peer advertised no room — probe with one byte so the window
        // update cannot be lost forever (RFC 1122 §4.2.2.17).
        let flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
        if flight == 0 && !self.syn_in_flight() {
            if !self.send_buf.is_empty() && self.snd_wnd == 0 {
                let probe =
                    self.make_segment(self.snd_una, TcpFlags::ACK, self.send_buf[..1].to_vec());
                self.snd_nxt = self.snd_una.wrapping_add(1);
                self.rto_ns = (self.rto_ns * 2).min(MAX_RTO_NS);
                a.segments.push(probe);
                self.arm_timer(now_ns);
                return a;
            }
            self.cancel_timer();
            return a;
        }
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.dup_acks = 0;
        self.rto_ns = (self.rto_ns * 2).min(MAX_RTO_NS);
        self.rtt_sample = None; // Karn's algorithm: no samples on rexmit.
        self.retransmits += 1;
        a.segments.push(self.retransmit_head());
        self.arm_timer(now_ns);
        a
    }

    /// Builds the oldest outstanding segment for retransmission.
    fn retransmit_head(&self) -> TcpSegment {
        match self.state {
            TcpState::SynSent => self.make_segment(self.iss, TcpFlags::SYN, Vec::new()),
            TcpState::SynRcvd => self.make_segment(self.iss, TcpFlags::SYN_ACK, Vec::new()),
            _ => {
                if let Some(fin_seq) = self.fin_seq {
                    if self.snd_una == fin_seq {
                        return self.make_segment(fin_seq, TcpFlags::FIN_ACK, Vec::new());
                    }
                }
                let chunk = self
                    .send_buf
                    .len()
                    .min(self.chunk_cap())
                    .min(self.snd_nxt.wrapping_sub(self.snd_una) as usize);
                let payload = self.send_buf[..chunk].to_vec();
                self.make_segment(self.snd_una, TcpFlags::ACK, payload)
            }
        }
    }

    /// Processes an incoming segment addressed to this connection.
    pub fn on_segment(&mut self, seg: &TcpSegment, peer: (Ipv4Addr, u16), now_ns: u64) -> Actions {
        let mut a = Actions::default();
        if seg.flags.rst {
            if self.state != TcpState::Listen && self.state != TcpState::Closed {
                self.state = TcpState::Closed;
                self.cancel_timer();
                a.reset = true;
                a.closed = true;
            }
            return a;
        }
        match self.state {
            TcpState::Closed => {
                a.segments.push(self.reset_for(seg));
            }
            TcpState::Listen => {
                if seg.flags.syn {
                    self.remote = Some(peer);
                    if let Some(peer_mss) = seg.mss {
                        self.mss = self.mss.min(peer_mss as usize);
                    }
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_nxt = self.iss.wrapping_add(1);
                    self.snd_wnd = seg.window as u32;
                    self.state = TcpState::SynRcvd;
                    a.segments
                        .push(self.make_segment(self.iss, TcpFlags::SYN_ACK, Vec::new()));
                    self.arm_timer(now_ns);
                }
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
                    if let Some(peer_mss) = seg.mss {
                        self.mss = self.mss.min(peer_mss as usize);
                    }
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_una = seg.ack;
                    self.snd_wnd = seg.window as u32;
                    self.state = TcpState::Established;
                    self.cancel_timer();
                    self.rto_ns = INITIAL_RTO_NS;
                    a.connected = true;
                    a.segments
                        .push(self.make_segment(self.snd_nxt, TcpFlags::ACK, Vec::new()));
                    a.merge(self.pump_output(now_ns));
                }
            }
            _ => {
                a.merge(self.on_synchronized_segment(seg, now_ns));
            }
        }
        a
    }

    fn reset_for(&self, seg: &TcpSegment) -> TcpSegment {
        TcpSegment {
            src_port: self.local.1,
            dst_port: seg.src_port,
            seq: seg.ack,
            ack: seg.seq.wrapping_add(seg.seq_len()),
            flags: TcpFlags::RST,
            window: 0,
            mss: None,
            payload: Vec::new(),
        }
    }

    fn on_synchronized_segment(&mut self, seg: &TcpSegment, now_ns: u64) -> Actions {
        let mut a = Actions::default();

        // --- ACK processing -------------------------------------------------
        if seg.flags.ack {
            let ack = seg.ack;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
                // New data acknowledged.
                let mut acked = ack.wrapping_sub(self.snd_una) as usize;
                if self.state == TcpState::SynRcvd {
                    // Our SYN consumed one sequence number.
                    acked = acked.saturating_sub(1);
                    self.state = TcpState::Established;
                    self.rto_ns = INITIAL_RTO_NS;
                    a.connected = true;
                }
                if let Some(fin_seq) = self.fin_seq {
                    if seq_lt(fin_seq, ack) {
                        acked = acked.saturating_sub(1); // FIN acked too.
                        a.merge(self.on_fin_acked());
                    }
                }
                let acked = acked.min(self.send_buf.len());
                self.send_buf.drain(..acked);
                self.snd_una = ack;
                self.dup_acks = 0;
                // RTT sampling (Karn-compliant: sample only set on fresh data).
                if let Some((sample_seq, sent_at)) = self.rtt_sample {
                    if seq_lt(sample_seq, ack) {
                        self.update_rtt(now_ns.saturating_sub(sent_at));
                        self.rtt_sample = None;
                    }
                }
                // Congestion window growth.
                if self.cwnd < self.ssthresh {
                    self.cwnd += self.mss; // Slow start.
                } else {
                    self.cwnd += (self.mss * self.mss / self.cwnd).max(1); // AIMD.
                }
                if self.snd_una == self.snd_nxt {
                    self.cancel_timer(); // Everything acked.
                } else {
                    self.arm_timer(now_ns); // Restart for remaining flight.
                }
            } else if ack == self.snd_una
                && self.snd_nxt != self.snd_una
                && seg.payload.is_empty()
                && !seg.flags.fin
            {
                // Duplicate ACK; three trigger fast retransmit.
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    let flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
                    self.ssthresh = (flight / 2).max(2 * self.mss);
                    self.cwnd = self.ssthresh;
                    self.retransmits += 1;
                    a.segments.push(self.retransmit_head());
                    self.arm_timer(now_ns);
                }
            }
            self.snd_wnd = seg.window as u32;
        }

        // --- Payload processing ---------------------------------------------
        let had_payload_or_fin = !seg.payload.is_empty() || seg.flags.fin;
        if !seg.payload.is_empty() {
            self.ingest_payload(seg.seq, &seg.payload);
            if !self.recv_ready.is_empty() {
                a.data_available = true;
            }
        }
        if seg.flags.fin {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            self.peer_fin_seq = Some(fin_seq);
        }
        // Consume the peer's FIN only when all data before it has arrived.
        if let Some(fin_seq) = self.peer_fin_seq {
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_fin_seq = None;
                a.merge(self.on_peer_fin(now_ns));
            }
        }
        if had_payload_or_fin {
            // Acknowledge (immediate ACK; no delayed-ACK timer in the model).
            a.segments
                .push(self.make_segment(self.snd_nxt, TcpFlags::ACK, Vec::new()));
        }

        // Window may have opened: push more data.
        a.merge(self.pump_output(now_ns));
        a
    }

    fn ingest_payload(&mut self, seq: u32, payload: &[u8]) {
        // Stash, then drain everything now contiguous.
        if seq_le(seq, self.rcv_nxt) {
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip < payload.len() {
                self.recv_ready.extend_from_slice(&payload[skip..]);
                self.rcv_nxt = self.rcv_nxt.wrapping_add((payload.len() - skip) as u32);
            }
        } else {
            self.ooo.insert(seq, payload.to_vec());
        }
        while let Some((&seq, _)) = self.ooo.iter().next() {
            // BTreeMap ordering is numeric, not modular; fine for our
            // simulated transfers, which stay far from wraparound.
            if seq_le(seq, self.rcv_nxt) {
                let data = self.ooo.remove(&seq).expect("key just seen");
                let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
                if skip < data.len() {
                    self.recv_ready.extend_from_slice(&data[skip..]);
                    self.rcv_nxt = self.rcv_nxt.wrapping_add((data.len() - skip) as u32);
                }
            } else {
                break;
            }
        }
    }

    fn on_fin_acked(&mut self) -> Actions {
        let mut a = Actions::default();
        match self.state {
            TcpState::FinWait1 => self.state = TcpState::FinWait2,
            TcpState::Closing => {
                self.state = TcpState::TimeWait;
                self.time_wait_deadline = Some(u64::MAX); // Set on next timer call.
            }
            TcpState::LastAck => {
                self.state = TcpState::Closed;
                self.cancel_timer();
                a.closed = true;
            }
            _ => {}
        }
        a
    }

    fn on_peer_fin(&mut self, now_ns: u64) -> Actions {
        let mut a = Actions::default();
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => self.state = TcpState::Closing,
            TcpState::FinWait2 => {
                self.state = TcpState::TimeWait;
                self.cancel_timer();
                self.time_wait_deadline = Some(now_ns + TIME_WAIT_NS);
            }
            _ => {}
        }
        a.peer_fin = true;
        a.data_available = !self.recv_ready.is_empty();
        a
    }

    fn update_rtt(&mut self, sample_ns: u64) {
        // Jacobson/Karels.
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(sample_ns);
                self.rttvar_ns = sample_ns / 2;
            }
            Some(srtt) => {
                let err = sample_ns.abs_diff(srtt);
                self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
                self.srtt_ns = Some((7 * srtt + sample_ns) / 8);
            }
        }
        let srtt = self.srtt_ns.expect("just set");
        self.rto_ns = (srtt + 4 * self.rttvar_ns).clamp(200_000_000, MAX_RTO_NS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::compute_offload;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 0, last)
    }

    const A: u16 = 4001;
    const B: u16 = 80;

    /// Pipes actions between two TCBs until neither produces output.
    /// Returns the number of segments exchanged. `drop_nth` drops the n-th
    /// segment (0-based) crossing the wire, once.
    fn exchange(a: &mut Tcb, b: &mut Tcb, mut now: u64, drop_nth: Option<usize>) -> (usize, u64) {
        let mut to_b: Vec<TcpSegment> = Vec::new();
        let mut to_a: Vec<TcpSegment> = Vec::new();
        let mut count = 0usize;
        let mut dropped = false;
        loop {
            let mut progressed = false;
            for seg in std::mem::take(&mut to_b) {
                progressed = true;
                if Some(count) == drop_nth && !dropped {
                    dropped = true;
                    count += 1;
                    continue;
                }
                count += 1;
                let acts = b.on_segment(&seg, (ip(1), A), now);
                to_a.extend(acts.segments);
            }
            for seg in std::mem::take(&mut to_a) {
                progressed = true;
                if Some(count) == drop_nth && !dropped {
                    dropped = true;
                    count += 1;
                    continue;
                }
                count += 1;
                let acts = a.on_segment(&seg, (ip(2), B), now);
                to_b.extend(acts.segments);
            }
            if !progressed {
                // Fire any due timers to recover from drops.
                let mut fired = false;
                for is_a in [true, false] {
                    let t: &mut Tcb = if is_a { &mut *a } else { &mut *b };
                    if let Some(dl) = t.next_timeout() {
                        now = now.max(dl);
                        let acts = t.on_timer(now);
                        if !acts.segments.is_empty() {
                            fired = true;
                            if is_a {
                                to_b.extend(acts.segments);
                            } else {
                                to_a.extend(acts.segments);
                            }
                        }
                    }
                }
                if !fired && to_a.is_empty() && to_b.is_empty() {
                    break;
                }
            }
        }
        (count, now)
    }

    fn established_pair() -> (Tcb, Tcb) {
        let mut server = Tcb::listen((ip(2), B), 9000);
        let (mut client, syn) = Tcb::connect((ip(1), A), (ip(2), B), 100, 0);
        let mut to_server = syn.segments;
        let mut to_client: Vec<TcpSegment> = Vec::new();
        while !to_server.is_empty() || !to_client.is_empty() {
            for seg in std::mem::take(&mut to_server) {
                to_client.extend(server.on_segment(&seg, (ip(1), A), 0).segments);
            }
            for seg in std::mem::take(&mut to_client) {
                to_server.extend(client.on_segment(&seg, (ip(2), B), 0).segments);
            }
        }
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let mut server = Tcb::listen((ip(2), B), 9000);
        let (mut client, mut acts) = Tcb::connect((ip(1), A), (ip(2), B), 100, 0);
        assert_eq!(client.state(), TcpState::SynSent);
        let syn = acts.segments.pop().expect("SYN emitted");
        assert_eq!(syn.flags, TcpFlags::SYN);
        assert_eq!(syn.seq, 100);

        let acts = server.on_segment(&syn, (ip(1), A), 10);
        assert_eq!(server.state(), TcpState::SynRcvd);
        let synack = &acts.segments[0];
        assert_eq!(synack.flags, TcpFlags::SYN_ACK);
        assert_eq!(synack.ack, 101);

        let acts = client.on_segment(synack, (ip(2), B), 20);
        assert!(acts.connected);
        assert_eq!(client.state(), TcpState::Established);
        let ack = &acts.segments[0];
        assert_eq!(ack.flags, TcpFlags::ACK);

        let acts = server.on_segment(ack, (ip(1), A), 30);
        assert!(acts.connected);
        assert_eq!(server.state(), TcpState::Established);
    }

    #[test]
    fn segment_wire_round_trip_and_checksum() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0xDEADBEEF,
            ack: 0x01020304,
            flags: TcpFlags::FIN_ACK,
            window: 4096,
            mss: None,
            payload: b"payload bytes".to_vec(),
        };
        let bytes = seg.to_bytes(ip(1), ip(2));
        let parsed = TcpSegment::parse(ip(1), ip(2), &bytes).expect("valid");
        assert_eq!(parsed, seg);
        // Corruption rejected.
        let mut bad = bytes.clone();
        bad[25] ^= 1;
        assert!(TcpSegment::parse(ip(1), ip(2), &bad).is_none());
        // Wrong pseudo-header (spoofed address) rejected.
        assert!(TcpSegment::parse(ip(7), ip(2), &bytes).is_none());
    }

    #[test]
    fn to_mbuf_matches_to_bytes_exactly() {
        for mss in [None, Some(1460u16)] {
            let seg = TcpSegment {
                src_port: 7,
                dst_port: 9,
                seq: 0x1000,
                ack: 0x2000,
                flags: if mss.is_some() {
                    TcpFlags::SYN
                } else {
                    TcpFlags::FIN_ACK
                },
                window: 8192,
                mss,
                payload: (0..200u8).collect(),
            };
            let bytes = seg.to_bytes(ip(1), ip(2));
            let m = seg.to_mbuf(ip(1), ip(2), 64);
            assert_eq!(m.to_vec(), bytes, "mss={mss:?}");
            // The leading space really is there for lower layers.
            let mut m2 = seg.to_mbuf(ip(1), ip(2), 64);
            m2.prepend(64);
            // And the wire form still parses + verifies.
            assert_eq!(
                TcpSegment::parse(ip(1), ip(2), &m.to_vec()).expect("valid"),
                seg
            );
        }
    }

    #[test]
    fn offloaded_checksum_matches_the_software_pass_byte_for_byte() {
        let seg = TcpSegment {
            src_port: 7,
            dst_port: 9,
            seq: 0x1000,
            ack: 0x2000,
            flags: TcpFlags::ACK,
            window: 8192,
            mss: None,
            payload: (0u16..777).map(|x| (x * 5) as u8).collect(),
        };
        let sw = seg.to_mbuf(ip(1), ip(2), 64);
        let mut hw = seg.to_mbuf_offload(ip(1), ip(2), 64);
        let req = hw.pkthdr().unwrap().csum.expect("offload stamped");
        let mut wire = hw.to_vec();
        assert_eq!(&wire[16..18], &[0, 0], "field deferred to the NIC");
        let v = compute_offload(&req, &hw);
        let field = wire.len() - req.field_from_end;
        wire[field..field + 2].copy_from_slice(&v.to_be_bytes());
        assert_eq!(wire, sw.to_vec(), "NIC-filled frame identical to software");
        // And it parses + verifies as a received segment.
        hw.write_at(16, &v.to_be_bytes());
        assert_eq!(
            TcpSegment::parse(ip(1), ip(2), &hw.to_vec()).expect("valid"),
            seg
        );
    }

    #[test]
    fn gso_emits_super_segments_that_partial_acks_still_cover() {
        let (mut client, mut server) = established_pair();
        client.set_gso_segs(4);
        client.cwnd = 64 * 1024;
        let data: Vec<u8> = (0u32..10_000).map(|x| (x * 3) as u8).collect();
        let acts = client.send(&data, 1000);
        assert!(
            acts.segments.iter().any(|s| s.payload.len() > client.mss),
            "GSO emits super-segments beyond one MSS"
        );
        for s in &acts.segments {
            assert!(s.payload.len() <= client.mss * 4, "bounded by mss*gso_segs");
        }
        // The receiver still reassembles the full stream when a lower
        // layer resegments each super-segment at wire MSS.
        let mut got = Vec::new();
        for s in &acts.segments {
            let mut off = 0;
            while off < s.payload.len() {
                let take = (s.payload.len() - off).min(client.mss);
                let wire_seg = TcpSegment {
                    seq: s.seq.wrapping_add(off as u32),
                    payload: s.payload[off..off + take].to_vec(),
                    ..s.clone()
                };
                let a = server.on_segment(&wire_seg, (ip(1), client.local().1), 2000);
                got.extend(server.take_received());
                for ack in &a.segments {
                    client.on_segment(ack, (ip(2), server.local().1), 3000);
                }
                off += take;
            }
        }
        assert_eq!(got, data, "stream intact across resegmentation");
        assert_eq!(client.unacked_len(), 0, "everything acknowledged");
    }

    #[test]
    fn data_flows_and_is_acked() {
        let (mut client, mut server) = established_pair();
        let data = vec![0xABu8; 5000];
        let acts = client.send(&data, 1000);
        assert!(acts.segments.len() >= 2, "5000 B > one MSS");
        let mut got = Vec::new();
        let mut to_client = Vec::new();
        for seg in &acts.segments {
            let sa = server.on_segment(seg, (ip(1), A), 1100);
            if sa.data_available {
                got.extend(server.take_received());
            }
            to_client.extend(sa.segments);
        }
        for seg in &to_client {
            client.on_segment(seg, (ip(2), B), 1200);
        }
        // Window may have limited the first flight; keep pumping.
        let (_, _) = exchange(&mut client, &mut server, 1300, None);
        got.extend(server.take_received());
        assert_eq!(got, data);
        assert_eq!(client.unacked_len(), 0, "all data acked");
        assert_eq!(client.next_timeout(), None, "timer cancelled");
    }

    #[test]
    fn lost_data_segment_is_retransmitted() {
        let (mut client, mut server) = established_pair();
        let data: Vec<u8> = (0u16..6000).map(|x| x as u8).collect();
        let acts = client.send(&data, 0);
        let mut pending = acts.segments;
        // Drop the first data segment.
        pending.remove(0);
        let mut to_client = Vec::new();
        for seg in &pending {
            to_client.extend(server.on_segment(seg, (ip(1), A), 10).segments);
        }
        for seg in &to_client {
            client.on_segment(seg, (ip(2), B), 20);
        }
        let before = client.retransmits;
        exchange(&mut client, &mut server, 30, None);
        assert!(client.retransmits > before, "a retransmission happened");
        let mut got = server.take_received();
        // Some data may still be buffered out-of-order until rexmit lands.
        exchange(&mut client, &mut server, 1_000_000, None);
        got.extend(server.take_received());
        assert_eq!(got, data);
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut client, mut server) = established_pair();
        let data: Vec<u8> = (0u16..4000).map(|x| (x * 7) as u8).collect();
        let acts = client.send(&data, 0);
        let mut segs = acts.segments;
        segs.reverse();
        let mut acks = Vec::new();
        for seg in &segs {
            acks.extend(server.on_segment(seg, (ip(1), A), 10).segments);
        }
        for seg in &acks {
            client.on_segment(seg, (ip(2), B), 20);
        }
        exchange(&mut client, &mut server, 30, None);
        let mut got = server.take_received();
        exchange(&mut client, &mut server, 40, None);
        got.extend(server.take_received());
        assert_eq!(got, data);
    }

    #[test]
    fn duplicate_acks_trigger_fast_retransmit() {
        let (mut client, mut server) = established_pair();
        // Inflate cwnd so four segments go out at once.
        client.cwnd = 64 * 1024;
        let data = vec![1u8; DEFAULT_MSS * 4];
        let acts = client.send(&data, 0);
        assert_eq!(acts.segments.len(), 4);
        // Deliver segments 1..4, skipping 0: three dup ACKs result.
        let mut dup_acks = Vec::new();
        for seg in &acts.segments[1..] {
            dup_acks.extend(server.on_segment(seg, (ip(1), A), 10).segments);
        }
        assert_eq!(dup_acks.len(), 3);
        let before = client.retransmits;
        let mut rexmit = Vec::new();
        for ack in &dup_acks {
            rexmit.extend(client.on_segment(ack, (ip(2), B), 20).segments);
        }
        assert_eq!(client.retransmits, before + 1, "fast retransmit fired");
        assert!(rexmit.iter().any(|s| s.seq == dup_acks[0].ack));
    }

    #[test]
    fn slow_start_grows_cwnd_exponentially() {
        let (mut client, mut server) = established_pair();
        let start_cwnd = client.cwnd;
        let data = vec![0u8; 64 * 1024];
        let acts = client.send(&data, 0);
        let mut to_client = Vec::new();
        for seg in &acts.segments {
            to_client.extend(server.on_segment(seg, (ip(1), A), 10).segments);
        }
        let acks = to_client.len();
        for seg in &to_client {
            client.on_segment(seg, (ip(2), B), 20);
        }
        assert!(acks >= 1);
        assert_eq!(
            client.cwnd,
            start_cwnd + acks * client.mss,
            "one MSS per ACK during slow start"
        );
        exchange(&mut client, &mut server, 30, None);
    }

    #[test]
    fn rto_collapses_cwnd() {
        let (mut client, mut _server) = established_pair();
        client.cwnd = 32 * 1024;
        let acts = client.send(&vec![0u8; 8 * 1024], 0);
        assert!(!acts.segments.is_empty());
        let deadline = client.next_timeout().expect("rexmit timer armed");
        let acts = client.on_timer(deadline);
        assert_eq!(acts.segments.len(), 1, "retransmit the head segment");
        assert_eq!(client.cwnd, client.mss, "multiplicative decrease");
        assert!(client.ssthresh >= 2 * client.mss);
    }

    #[test]
    fn orderly_close_walks_the_states() {
        let (mut client, mut server) = established_pair();
        let acts = client.close(0);
        assert_eq!(client.state(), TcpState::FinWait1);
        let fin = &acts.segments[0];
        assert!(fin.flags.fin);

        let sa = server.on_segment(fin, (ip(1), A), 10);
        assert_eq!(server.state(), TcpState::CloseWait);
        for seg in &sa.segments {
            client.on_segment(seg, (ip(2), B), 20);
        }
        assert_eq!(client.state(), TcpState::FinWait2);

        let sa = server.close(30);
        assert_eq!(server.state(), TcpState::LastAck);
        let mut last_ack = Vec::new();
        for seg in &sa.segments {
            last_ack.extend(client.on_segment(seg, (ip(2), B), 40).segments);
        }
        assert_eq!(client.state(), TcpState::TimeWait);
        let final_acts: Vec<Actions> = last_ack
            .iter()
            .map(|seg| server.on_segment(seg, (ip(1), A), 50))
            .collect();
        assert_eq!(server.state(), TcpState::Closed);
        assert!(final_acts.iter().any(|a| a.closed));

        // TIME_WAIT expires back to CLOSED.
        let dl = client.next_timeout().expect("time-wait timer");
        let acts = client.on_timer(dl);
        assert!(acts.closed);
        assert_eq!(client.state(), TcpState::Closed);
    }

    #[test]
    fn data_before_fin_is_delivered_despite_reordering() {
        let (mut client, mut server) = established_pair();
        let data = b"last words".to_vec();
        let mut segs = client.send(&data, 0).segments;
        segs.extend(client.close(0).segments);
        assert!(segs.iter().any(|s| s.flags.fin));
        segs.reverse(); // FIN arrives before the data.
        for seg in &segs {
            server.on_segment(seg, (ip(1), A), 10);
        }
        assert_eq!(server.take_received(), data);
        assert_eq!(server.state(), TcpState::CloseWait, "FIN consumed in order");
    }

    #[test]
    fn peer_reset_tears_down() {
        let (mut client, _server) = established_pair();
        let rst = TcpSegment {
            src_port: B,
            dst_port: A,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            mss: None,
            payload: Vec::new(),
        };
        let acts = client.on_segment(&rst, (ip(2), B), 0);
        assert!(acts.reset);
        assert!(acts.closed);
        assert_eq!(client.state(), TcpState::Closed);
    }

    #[test]
    fn segment_to_closed_port_elicits_rst() {
        let mut closed = Tcb::new((ip(2), 9999), 1);
        let seg = TcpSegment {
            src_port: A,
            dst_port: 9999,
            seq: 55,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 100,
            mss: None,
            payload: Vec::new(),
        };
        let acts = closed.on_segment(&seg, (ip(1), A), 0);
        assert_eq!(acts.segments.len(), 1);
        assert!(acts.segments[0].flags.rst);
        assert_eq!(acts.segments[0].ack, 56);
    }

    #[test]
    fn receiver_window_throttles_sender() {
        let (mut client, _server) = established_pair();
        client.cwnd = 1 << 20;
        client.snd_wnd = 2000; // Peer advertised a tiny window.
        let acts = client.send(&vec![0u8; 10_000], 0);
        let sent: usize = acts.segments.iter().map(|s| s.payload.len()).sum();
        assert!(
            sent <= 2000,
            "must respect the advertised window, sent {sent}"
        );
    }

    #[test]
    fn lost_syn_is_retransmitted() {
        let (mut client, mut acts) = Tcb::connect((ip(1), A), (ip(2), B), 100, 0);
        let _lost_syn = acts.segments.pop();
        let dl = client.next_timeout().expect("handshake timer");
        let acts = client.on_timer(dl);
        assert_eq!(acts.segments.len(), 1);
        assert_eq!(acts.segments[0].flags, TcpFlags::SYN);
        assert_eq!(client.retransmits, 1);
    }

    #[test]
    fn bulk_transfer_with_loss_completes() {
        let (mut client, mut server) = established_pair();
        let data: Vec<u8> = (0u32..40_000).map(|x| (x % 251) as u8).collect();
        let first = client.send(&data, 0);
        let mut to_server = first.segments;
        // Feed initial burst with the 2nd segment dropped, then run the
        // exchange loop (which fires timers) until quiescent.
        if to_server.len() > 1 {
            to_server.remove(1);
        }
        let mut to_client = Vec::new();
        for seg in &to_server {
            let sa = server.on_segment(seg, (ip(1), A), 10);
            to_client.extend(sa.segments);
        }
        for seg in &to_client {
            client.on_segment(seg, (ip(2), B), 20);
        }
        exchange(&mut client, &mut server, 30, None);
        let got = server.take_received();
        assert_eq!(got.len(), data.len());
        assert_eq!(got, data);
    }

    #[test]
    fn seq_arithmetic_wraps() {
        assert!(seq_lt(u32::MAX, 0));
        assert!(seq_lt(u32::MAX - 5, 5));
        assert!(!seq_lt(5, u32::MAX));
        assert!(seq_le(7, 7));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 0, last)
    }

    #[test]
    fn mss_option_round_trips_on_the_wire() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 10,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 100,
            mss: Some(536),
            payload: Vec::new(),
        };
        let bytes = seg.to_bytes(ip(1), ip(2));
        assert_eq!(bytes.len(), TCP_HDR_LEN + 4, "SYN carries a 4-byte option");
        let parsed = TcpSegment::parse(ip(1), ip(2), &bytes).expect("valid");
        assert_eq!(parsed.mss, Some(536));
        assert_eq!(parsed, seg);
    }

    #[test]
    fn handshake_negotiates_the_smaller_mss() {
        let mut server = Tcb::listen((ip(2), 80), 9000);
        server.mss = 536; // E.g. a SLIP-attached peer.
        let (mut client, acts) = Tcb::connect((ip(1), 4000), (ip(2), 80), 100, 0);
        assert_eq!(client.mss, DEFAULT_MSS);
        let syn = &acts.segments[0];
        assert_eq!(syn.mss, Some(DEFAULT_MSS as u16));
        let sa = server.on_segment(syn, (ip(1), 4000), 0);
        assert_eq!(server.mss, 536, "server keeps its smaller MSS");
        let synack = &sa.segments[0];
        assert_eq!(synack.mss, Some(536));
        client.on_segment(synack, (ip(2), 80), 0);
        assert_eq!(client.mss, 536, "client adopts the peer's smaller MSS");
        // Data now segments at the negotiated size.
        client.cwnd = 1 << 20;
        client.snd_wnd = 1 << 16;
        let acts = client.send(&vec![0u8; 2000], 0);
        assert!(acts.segments.iter().all(|s| s.payload.len() <= 536));
    }

    #[test]
    fn receiver_window_shrinks_until_app_drains() {
        let mut server = Tcb::listen((ip(2), 80), 9000);
        let (mut client, acts) = Tcb::connect((ip(1), 4000), (ip(2), 80), 100, 0);
        let sa = server.on_segment(&acts.segments[0], (ip(1), 4000), 0);
        let ca = client.on_segment(&sa.segments[0], (ip(2), 80), 0);
        for seg in &ca.segments {
            server.on_segment(seg, (ip(1), 4000), 0);
        }
        // Client sends 10 KB; the server app never reads.
        client.snd_wnd = 1 << 16;
        client.cwnd = 1 << 20;
        let acts = client.send(&vec![7u8; 10_000], 0);
        let mut last_window = DEFAULT_WINDOW;
        for seg in &acts.segments {
            let sa = server.on_segment(seg, (ip(1), 4000), 0);
            if let Some(ack) = sa.segments.last() {
                last_window = ack.window;
            }
        }
        assert_eq!(
            last_window as usize,
            DEFAULT_WINDOW as usize - 10_000,
            "window reflects undrained data"
        );
        // Draining reopens it on the next segment's ACK.
        let drained = server.take_received();
        assert_eq!(drained.len(), 10_000);
    }

    #[test]
    fn zero_window_is_probed_until_it_reopens() {
        let (mut client, _srv) = {
            // Build an established pair quickly.
            let mut server = Tcb::listen((ip(2), 80), 9000);
            let (mut client, acts) = Tcb::connect((ip(1), 4000), (ip(2), 80), 100, 0);
            let sa = server.on_segment(&acts.segments[0], (ip(1), 4000), 0);
            let ca = client.on_segment(&sa.segments[0], (ip(2), 80), 0);
            for seg in &ca.segments {
                server.on_segment(seg, (ip(1), 4000), 0);
            }
            (client, server)
        };
        // Peer advertises a zero window.
        client.snd_wnd = 0;
        let acts = client.send(b"blocked data", 0);
        assert!(acts.segments.is_empty(), "no room: nothing may be sent");
        let dl = client.next_timeout().expect("persist timer armed");
        let acts = client.on_timer(dl);
        assert_eq!(acts.segments.len(), 1, "one-byte window probe");
        assert_eq!(acts.segments[0].payload.len(), 1);
        // The probe's ACK reopens the window; data then flows.
        let window_update = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: client.rcv_nxt,
            ack: client.snd_nxt,
            flags: TcpFlags::ACK,
            window: 4096,
            mss: None,
            payload: Vec::new(),
        };
        let acts = client.on_segment(&window_update, (ip(2), 80), dl + 1);
        let sent: usize = acts.segments.iter().map(|s| s.payload.len()).sum();
        assert_eq!(sent, b"blocked data".len() - 1, "remaining bytes flow");
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 11, 0, last)
    }

    fn established_pair() -> (Tcb, Tcb) {
        let mut server = Tcb::listen((ip(2), 80), 9000);
        let (mut client, acts) = Tcb::connect((ip(1), 4000), (ip(2), 80), 100, 0);
        let sa = server.on_segment(&acts.segments[0], (ip(1), 4000), 0);
        let ca = client.on_segment(&sa.segments[0], (ip(2), 80), 0);
        for seg in &ca.segments {
            server.on_segment(seg, (ip(1), 4000), 0);
        }
        (client, server)
    }

    #[test]
    fn simultaneous_close_reaches_closed_on_both_sides() {
        let (mut a, mut b) = established_pair();
        // Both sides close before seeing the other's FIN.
        let fa = a.close(0);
        let fb = b.close(0);
        assert_eq!(a.state(), TcpState::FinWait1);
        assert_eq!(b.state(), TcpState::FinWait1);
        // Cross-deliver the FINs.
        let ra: Vec<_> = fb
            .segments
            .iter()
            .flat_map(|s| a.on_segment(s, (ip(2), 80), 10).segments)
            .collect();
        let rb: Vec<_> = fa
            .segments
            .iter()
            .flat_map(|s| b.on_segment(s, (ip(1), 4000), 10).segments)
            .collect();
        assert_eq!(a.state(), TcpState::Closing);
        assert_eq!(b.state(), TcpState::Closing);
        // Cross-deliver the ACKs of the FINs.
        for s in &ra {
            b.on_segment(s, (ip(1), 4000), 20);
        }
        for s in &rb {
            a.on_segment(s, (ip(2), 80), 20);
        }
        assert_eq!(a.state(), TcpState::TimeWait);
        assert_eq!(b.state(), TcpState::TimeWait);
        // TIME_WAIT expires to CLOSED.
        let da = a.next_timeout().expect("time-wait timer");
        assert!(a.on_timer(da).closed);
        let db = b.next_timeout().expect("time-wait timer");
        assert!(b.on_timer(db).closed);
    }

    #[test]
    fn rst_during_handshake_aborts_the_client() {
        let (mut client, _syn) = Tcb::connect((ip(1), 4000), (ip(2), 80), 100, 0);
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 0,
            ack: 101,
            flags: TcpFlags::RST,
            window: 0,
            mss: None,
            payload: Vec::new(),
        };
        let acts = client.on_segment(&rst, (ip(2), 80), 10);
        assert!(acts.reset && acts.closed);
        assert_eq!(client.state(), TcpState::Closed);
        assert_eq!(client.next_timeout(), None, "handshake timer cancelled");
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let (mut client, _server) = established_pair();
        client.send(&[1u8; 100], 0);
        let d1 = client.next_timeout().expect("armed");
        let a1 = client.on_timer(d1);
        assert_eq!(a1.segments.len(), 1);
        let d2 = client.next_timeout().expect("re-armed");
        let gap1 = d2 - d1;
        let a2 = client.on_timer(d2);
        assert_eq!(a2.segments.len(), 1);
        let d3 = client.next_timeout().expect("re-armed again");
        let gap2 = d3 - d2;
        assert_eq!(gap2, gap1 * 2, "doubling backoff");
        assert_eq!(client.retransmits, 2);
    }

    #[test]
    fn stale_acks_are_ignored() {
        let (mut client, mut server) = established_pair();
        let acts = client.send(&[9u8; 100], 0);
        let acks: Vec<_> = acts
            .segments
            .iter()
            .flat_map(|s| server.on_segment(s, (ip(1), 4000), 10).segments)
            .collect();
        for a in &acks {
            client.on_segment(a, (ip(2), 80), 20);
        }
        assert_eq!(client.unacked_len(), 0);
        // Replay an old ACK: must not disturb anything.
        let before_cwnd = client.cwnd;
        let mut stale = acks[0].clone();
        stale.ack = stale.ack.wrapping_sub(50); // Older than snd_una.
        let out = client.on_segment(&stale, (ip(2), 80), 30);
        assert!(out.segments.is_empty());
        assert_eq!(client.cwnd, before_cwnd);
        assert_eq!(client.state(), TcpState::Established);
    }

    #[test]
    fn duplicate_data_is_not_delivered_twice() {
        let (mut client, mut server) = established_pair();
        let acts = client.send(b"once only", 0);
        let seg = &acts.segments[0];
        server.on_segment(seg, (ip(1), 4000), 10);
        let first = server.take_received();
        assert_eq!(first, b"once only");
        // The same segment again (a spurious retransmission).
        server.on_segment(seg, (ip(1), 4000), 20);
        assert!(server.take_received().is_empty(), "no double delivery");
    }
}
