//! Ethernet-II framing.
//!
//! The bottom edge of Figure 1's protocol graph: a 14-byte header of
//! destination MAC, source MAC, and EtherType. The type field is what the
//! active-message guard of Figure 2 discriminates on.

use std::fmt;

use plexus_kernel::view::{be16, put_be16, WireView};

/// A 48-bit IEEE MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A locally administered unicast address derived from a small id —
    /// handy for simulated machines.
    pub fn local(id: u8) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, id])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An EtherType value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP.
    pub const ARP: EtherType = EtherType(0x0806);
    /// The experimental type our active-message extension claims (§3.3) —
    /// an IEEE "local experimental" EtherType.
    pub const ACTIVE_MESSAGE: EtherType = EtherType(0x88B5);
}

/// Length of the Ethernet-II header.
pub const ETHER_HDR_LEN: usize = 14;

/// Zero-copy view of an Ethernet header (the paper's `Ethernet.T`).
pub struct EtherView<'a>(&'a [u8]);

impl<'a> WireView<'a> for EtherView<'a> {
    const WIRE_SIZE: usize = ETHER_HDR_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        EtherView(bytes)
    }
}

impl EtherView<'_> {
    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        MacAddr(self.0[0..6].try_into().expect("length checked by view"))
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        MacAddr(self.0[6..12].try_into().expect("length checked by view"))
    }

    /// EtherType.
    pub fn ethertype(&self) -> EtherType {
        EtherType(be16(self.0, 12))
    }
}

/// Writes an Ethernet header into `buf` (which must be at least
/// [`ETHER_HDR_LEN`] long).
pub fn write_header(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: EtherType) {
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    put_be16(buf, 12, ethertype.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_kernel::view::view;

    #[test]
    fn header_round_trips() {
        let mut buf = [0u8; ETHER_HDR_LEN];
        write_header(
            &mut buf,
            MacAddr::local(2),
            MacAddr::local(1),
            EtherType::IPV4,
        );
        let v: EtherView = view(&buf).expect("exactly one header");
        assert_eq!(v.dst(), MacAddr::local(2));
        assert_eq!(v.src(), MacAddr::local(1));
        assert_eq!(v.ethertype(), EtherType::IPV4);
    }

    #[test]
    fn short_frame_is_not_viewable() {
        let buf = [0u8; ETHER_HDR_LEN - 1];
        assert!(view::<EtherView>(&buf).is_none());
    }

    #[test]
    fn broadcast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::local(1).is_broadcast());
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
    }

    #[test]
    fn display_formats_colon_hex() {
        assert_eq!(MacAddr::local(0x0A).to_string(), "02:00:00:00:00:0a");
    }
}
