//! Berkeley memory buffers (mbufs).
//!
//! Plexus passes packets through the protocol graph as mbufs — "the
//! Berkeley memory buffer implementation … directly used by most UNIX
//! device drivers" (§3.4, footnote 1). An [`Mbuf`] is a chain of segments;
//! each segment references a cluster of storage with a window (`off`,
//! `len`) into it, so headers can be *prepended* into leading space and
//! *trimmed* off without moving payload bytes.
//!
//! Sharing and read-only semantics (§3.4): clusters are reference-counted
//! (`Rc<Vec<u8>>`), so [`Mbuf::share`] is cheap and multiple graph nodes can
//! view the same packet. Handlers receive `&Mbuf` and cannot mutate through
//! it; a handler that wants to modify data must hold its own `Mbuf` and
//! write through [`Mbuf::write_at`]/[`Mbuf::head_mut`], which perform an
//! explicit copy-on-write when the cluster is shared — the Rust rendering
//! of Figure 4's `GoodPacketRecv`.

use std::cell::RefCell;
use std::rc::Rc;

use plexus_trace::{Recorder, Scope};

/// Bytes of storage in a small mbuf cluster.
pub const MLEN: usize = 128;

/// Bytes of storage in a large cluster.
pub const MCLBYTES: usize = 2048;

/// Default leading space reserved for link/network/transport headers when
/// building a packet from payload (enough for Ethernet+IP+TCP with slack).
pub const LEADING_SPACE: usize = 64;

/// Packet-level metadata carried by the first mbuf of a packet (BSD
/// `m_pkthdr`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PktHdr {
    /// Total length of the packet when the header was stamped (advisory;
    /// [`Mbuf::total_len`] is authoritative).
    pub len: usize,
    /// Index of the interface the packet arrived on, if any.
    pub rcvif: Option<usize>,
    /// Flight-recorder packet ID assigned at NIC delivery, if tracing is
    /// on. Survives [`Mbuf::share`], so handlers deep in the graph can
    /// attribute work to the arriving packet.
    pub packet_id: Option<u64>,
    /// End-to-end journey ID the frame carried across the wire, if
    /// tracing is on. Unlike `packet_id` (one hop on one machine) the
    /// journey ID is globally unique across the whole simulated world and
    /// is preserved when a forwarder retransmits the packet, so a
    /// post-hoc pass can stitch the per-machine hops into one ledger.
    pub journey_id: Option<u64>,
    /// A transmit checksum deferred to the NIC (BSD `csum_flags` +
    /// `csum_data` in spirit): the transport layer stamps this when the
    /// egress device advertises checksum offload instead of running the
    /// software pass, and the adapter fills the field during DMA.
    pub csum: Option<crate::checksum::CsumOffload>,
}

#[derive(Clone)]
struct Segment {
    cluster: Rc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Segment {
    fn bytes(&self) -> &[u8] {
        &self.cluster[self.off..self.off + self.len]
    }

    /// Mutable access with copy-on-write if the cluster is shared.
    fn bytes_mut(&mut self) -> &mut [u8] {
        let cluster = Rc::make_mut(&mut self.cluster);
        &mut cluster[self.off..self.off + self.len]
    }

    fn leading(&self) -> usize {
        self.off
    }
}

/// A packet: a chain of storage segments.
pub struct Mbuf {
    segments: Vec<Segment>,
    pkthdr: Option<PktHdr>,
}

// Running count of cluster allocations, for the tests.
#[cfg(test)]
thread_local! {
    static ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Counters for the cluster free-list pool. All values are cumulative
/// since the pool was last reset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Clusters allocated fresh from the heap.
    pub allocated: u64,
    /// Clusters handed out from a free list (no heap allocation).
    pub reused: u64,
    /// Clusters returned to a free list at drop.
    pub recycled: u64,
    /// Clusters not recycled because another `Rc` holder was still live
    /// when the owning mbuf dropped.
    pub shared_at_drop: u64,
    /// Clusters not recycled because they are not a pool size class or the
    /// free list was full.
    pub unpooled: u64,
}

/// Upper bound on retained clusters per size class; beyond this, retired
/// clusters fall back to the heap so an overload burst cannot pin memory.
const POOL_CAP: usize = 1024;

struct Pool {
    enabled: bool,
    small: Vec<Rc<Vec<u8>>>,
    large: Vec<Rc<Vec<u8>>>,
    stats: PoolStats,
    recorder: Option<Rc<Recorder>>,
}

impl Pool {
    fn count(&self, metric: &'static str, delta: u64) {
        if let Some(rec) = &self.recorder {
            let label = rec.intern("mbuf-pool");
            rec.count(Scope::App, label, metric, delta);
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool {
        enabled: true,
        small: Vec::new(),
        large: Vec::new(),
        stats: PoolStats::default(),
        recorder: None,
    });
}

/// Enables or disables the cluster pool (default: enabled). Disabling
/// drops the free lists. Returns the previous setting.
pub fn set_cluster_pool_enabled(on: bool) -> bool {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let was = p.enabled;
        p.enabled = on;
        if !on {
            p.small.clear();
            p.large.clear();
        }
        was
    })
}

/// Whether the cluster pool is enabled.
pub fn cluster_pool_enabled() -> bool {
    POOL.with(|p| p.borrow().enabled)
}

/// Snapshot of the pool counters.
pub fn cluster_pool_stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Clears the free lists and zeroes the counters (leaves enablement and
/// any installed recorder as-is). Benchmarks call this between phases so
/// "allocations after warmup" is well-defined.
pub fn reset_cluster_pool() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.small.clear();
        p.large.clear();
        p.stats = PoolStats::default();
    })
}

/// Mirrors the pool counters into `recorder`'s registry as they change
/// (`Scope::App`, label `mbuf-pool`, metrics `cluster.alloc` /
/// `cluster.reuse` / `cluster.recycled`). Pass `None` to detach.
pub fn set_cluster_pool_recorder(recorder: Option<Rc<Recorder>>) {
    POOL.with(|p| p.borrow_mut().recorder = recorder)
}

/// Rounds a requested cluster size up to its pool size class. Requests
/// beyond `MCLBYTES` are allocated exactly and bypass the pool.
fn class_for(min: usize) -> usize {
    if min <= MLEN {
        MLEN
    } else if min <= MCLBYTES {
        MCLBYTES
    } else {
        min
    }
}

/// Allocates (or reuses) a zero-filled cluster of at least `min` bytes.
/// The returned `Rc` is uniquely held.
fn new_cluster(min: usize) -> Rc<Vec<u8>> {
    let size = class_for(min);
    let pooled = POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            return None;
        }
        let hit = match size {
            MLEN => p.small.pop(),
            MCLBYTES => p.large.pop(),
            _ => None,
        };
        if let Some(mut cluster) = hit {
            Rc::get_mut(&mut cluster)
                .expect("pooled cluster is uniquely held")
                .fill(0);
            p.stats.reused += 1;
            p.count("cluster.reuse", 1);
            Some(cluster)
        } else {
            None
        }
    });
    if let Some(cluster) = pooled {
        return cluster;
    }
    #[cfg(test)]
    ALLOCS.with(|a| a.set(a.get() + 1));
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.stats.allocated += 1;
        p.count("cluster.alloc", 1);
    });
    Rc::new(vec![0u8; size])
}

/// Mutable access to a freshly obtained (uniquely held) cluster.
fn cluster_mut(cluster: &mut Rc<Vec<u8>>) -> &mut Vec<u8> {
    Rc::get_mut(cluster).expect("fresh cluster is uniquely held")
}

/// Offers a retired cluster back to the pool. Only accepted when this is
/// the *last* reference (respecting `Rc` sharing: a cluster still viewed
/// by another mbuf must not be handed out again) and the size is a pool
/// class with free-list room.
fn retire_cluster(cluster: Rc<Vec<u8>>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            return;
        }
        if Rc::strong_count(&cluster) != 1 {
            p.stats.shared_at_drop += 1;
            return;
        }
        let pooled_class = matches!(cluster.len(), MLEN | MCLBYTES);
        let room = match cluster.len() {
            MLEN => p.small.len() < POOL_CAP,
            _ => p.large.len() < POOL_CAP,
        };
        if !pooled_class || !room {
            p.stats.unpooled += 1;
            return;
        }
        p.stats.recycled += 1;
        p.count("cluster.recycled", 1);
        match cluster.len() {
            MLEN => p.small.push(cluster),
            _ => p.large.push(cluster),
        }
    })
}

impl Mbuf {
    /// An empty packet with a packet header and `LEADING_SPACE` bytes of
    /// room to prepend into.
    pub fn empty() -> Mbuf {
        let cluster = new_cluster(MLEN);
        Mbuf {
            segments: vec![Segment {
                off: LEADING_SPACE,
                len: 0,
                cluster,
            }],
            pkthdr: Some(PktHdr::default()),
        }
    }

    /// Builds a packet holding `payload`, with `leading` bytes of prepend
    /// room before it. Large payloads span multiple clusters.
    pub fn from_payload(leading: usize, payload: &[u8]) -> Mbuf {
        let mut segments = Vec::new();
        let first_capacity = MCLBYTES.max(leading + 1) - leading;
        let first_len = payload.len().min(first_capacity);
        let mut cluster = new_cluster(leading + first_len);
        cluster_mut(&mut cluster)[leading..leading + first_len]
            .copy_from_slice(&payload[..first_len]);
        segments.push(Segment {
            cluster,
            off: leading,
            len: first_len,
        });
        let mut rest = &payload[first_len..];
        while !rest.is_empty() {
            let n = rest.len().min(MCLBYTES);
            let mut cluster = new_cluster(n);
            cluster_mut(&mut cluster)[..n].copy_from_slice(&rest[..n]);
            segments.push(Segment {
                cluster,
                off: 0,
                len: n,
            });
            rest = &rest[n..];
        }
        let mut m = Mbuf {
            segments,
            pkthdr: Some(PktHdr::default()),
        };
        m.stamp_pkthdr();
        m
    }

    /// Builds a packet from raw received bytes (driver receive path): no
    /// leading space, single window over one cluster per `MCLBYTES`.
    pub fn from_wire(bytes: &[u8]) -> Mbuf {
        Mbuf::from_payload(0, bytes)
    }

    /// The packet header, if this mbuf leads a packet.
    pub fn pkthdr(&self) -> Option<&PktHdr> {
        self.pkthdr.as_ref()
    }

    /// Mutable packet header access, creating one if absent.
    pub fn pkthdr_mut(&mut self) -> &mut PktHdr {
        self.pkthdr.get_or_insert_with(PktHdr::default)
    }

    /// Re-stamps `pkthdr.len` from the chain. Returns the length.
    pub fn stamp_pkthdr(&mut self) -> usize {
        let len = self.total_len();
        self.pkthdr_mut().len = len;
        len
    }

    /// Total payload bytes across the chain.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// True if the packet holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Number of segments in the chain.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The first segment's bytes (the contiguous head).
    pub fn head(&self) -> &[u8] {
        self.segments.first().map(Segment::bytes).unwrap_or(&[])
    }

    /// Mutable head bytes; copies the cluster first if shared.
    pub fn head_mut(&mut self) -> &mut [u8] {
        match self.segments.first_mut() {
            Some(s) => s.bytes_mut(),
            None => &mut [],
        }
    }

    /// Iterates the chain's segments.
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        self.segments.iter().map(Segment::bytes)
    }

    /// Linearizes the packet into one `Vec` (copies).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.total_len());
        for s in self.segments() {
            v.extend_from_slice(s);
        }
        v
    }

    /// Shares the packet: a new chain referencing the same clusters
    /// (no data copy; reference counts bump). The shared copy gets its own
    /// packet header.
    pub fn share(&self) -> Mbuf {
        Mbuf {
            segments: self.segments.clone(),
            pkthdr: self.pkthdr.clone(),
        }
    }

    /// True if any cluster in this chain is shared with another mbuf
    /// (so an in-place write would need copy-on-write).
    pub fn is_shared(&self) -> bool {
        self.segments
            .iter()
            .any(|s| Rc::strong_count(&s.cluster) > 1)
    }

    /// Grows the front by `n` bytes and returns them for the caller to
    /// fill — BSD `M_PREPEND`. Uses the head segment's leading space when
    /// available (no copy); otherwise chains a new header mbuf in front.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        let use_leading = self
            .segments
            .first()
            .map(|s| s.leading() >= n && Rc::strong_count(&s.cluster) == 1)
            .unwrap_or(false);
        if use_leading {
            let s = &mut self.segments[0];
            s.off -= n;
            s.len += n;
            return &mut s.bytes_mut()[..n];
        }
        let cluster = new_cluster(n);
        let size = cluster.len();
        self.segments.insert(
            0,
            Segment {
                off: size - n,
                len: n,
                cluster,
            },
        );
        &mut self.segments[0].bytes_mut()[..n]
    }

    /// Removes `n` bytes from the front (BSD `m_adj(m, n)`), dropping
    /// emptied segments.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the packet length.
    pub fn trim_front(&mut self, mut n: usize) {
        assert!(n <= self.total_len(), "trim_front past end of packet");
        while n > 0 {
            let s = &mut self.segments[0];
            if s.len > n {
                s.off += n;
                s.len -= n;
                n = 0;
            } else {
                n -= s.len;
                let seg = self.segments.remove(0);
                retire_cluster(seg.cluster);
            }
        }
        self.segments.retain(|s| s.len > 0);
    }

    /// Removes `n` bytes from the back (BSD `m_adj(m, -n)`).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the packet length.
    pub fn trim_back(&mut self, mut n: usize) {
        assert!(n <= self.total_len(), "trim_back past end of packet");
        while n > 0 {
            let last = self.segments.last_mut().expect("length checked");
            if last.len > n {
                last.len -= n;
                n = 0;
            } else {
                n -= last.len;
                if let Some(seg) = self.segments.pop() {
                    retire_cluster(seg.cluster);
                }
            }
        }
        self.segments.retain(|s| s.len > 0);
    }

    /// Ensures the first `n` bytes are contiguous in the head segment
    /// (BSD `m_pullup`). Returns `false` if the packet is shorter than `n`.
    pub fn pullup(&mut self, n: usize) -> bool {
        if n > self.total_len() {
            return false;
        }
        if self.segments.first().map(|s| s.len >= n).unwrap_or(false) {
            return true;
        }
        // Gather the first n bytes into a fresh head cluster, keeping the
        // remainder of the chain.
        let mut cluster = new_cluster(LEADING_SPACE + n);
        let mut filled = LEADING_SPACE;
        let mut need = n;
        while need > 0 {
            let s = &mut self.segments[0];
            let take = s.len.min(need);
            cluster_mut(&mut cluster)[filled..filled + take].copy_from_slice(&s.bytes()[..take]);
            filled += take;
            if take == s.len {
                let seg = self.segments.remove(0);
                retire_cluster(seg.cluster);
            } else {
                s.off += take;
                s.len -= take;
            }
            need -= take;
        }
        self.segments.insert(
            0,
            Segment {
                off: LEADING_SPACE,
                len: n,
                cluster,
            },
        );
        true
    }

    /// Appends another packet's chain to this one (BSD `m_cat`). The
    /// appended packet's header is discarded.
    pub fn append(&mut self, mut other: Mbuf) {
        self.segments.append(&mut other.segments);
    }

    /// Copies `buf.len()` bytes starting at `off` into `buf`
    /// (BSD `m_copydata`). Returns `false` if the range is out of bounds.
    pub fn read_at(&self, mut off: usize, buf: &mut [u8]) -> bool {
        if off + buf.len() > self.total_len() {
            return false;
        }
        let mut filled = 0;
        for s in self.segments() {
            if off >= s.len() {
                off -= s.len();
                continue;
            }
            let take = (s.len() - off).min(buf.len() - filled);
            buf[filled..filled + take].copy_from_slice(&s[off..off + take]);
            filled += take;
            off = 0;
            if filled == buf.len() {
                break;
            }
        }
        true
    }

    /// Appends `len` bytes starting at `off` onto `out` without building
    /// an intermediate packet copy (BSD `m_copydata` into a growing
    /// buffer). The segment walk is the same as [`Mbuf::read_at`]'s; this
    /// is the hot-path alternative to `to_vec()` when the caller already
    /// owns a reusable buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_into(&self, mut off: usize, mut len: usize, out: &mut Vec<u8>) {
        assert!(off + len <= self.total_len(), "copy_into out of bounds");
        out.reserve(len);
        for s in self.segments() {
            if len == 0 {
                break;
            }
            if off >= s.len() {
                off -= s.len();
                continue;
            }
            let take = (s.len() - off).min(len);
            out.extend_from_slice(&s[off..off + take]);
            len -= take;
            off = 0;
        }
    }

    /// Writes `data` at offset `off`, copy-on-write on shared clusters.
    /// Returns `false` if the range is out of bounds.
    pub fn write_at(&mut self, mut off: usize, data: &[u8]) -> bool {
        if off + data.len() > self.total_len() {
            return false;
        }
        let mut written = 0;
        for s in &mut self.segments {
            if off >= s.len {
                off -= s.len;
                continue;
            }
            let take = (s.len - off).min(data.len() - written);
            s.bytes_mut()[off..off + take].copy_from_slice(&data[written..written + take]);
            written += take;
            off = 0;
            if written == data.len() {
                break;
            }
        }
        true
    }

    /// Extracts `len` bytes from `off` as a new packet that *shares* the
    /// underlying clusters where possible (BSD `m_copym` with `M_COPYALL`
    /// semantics on a range).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn range(&self, mut off: usize, mut len: usize) -> Mbuf {
        assert!(off + len <= self.total_len(), "range out of bounds");
        let mut segments = Vec::new();
        for s in &self.segments {
            if len == 0 {
                break;
            }
            if off >= s.len {
                off -= s.len;
                continue;
            }
            let take = (s.len - off).min(len);
            segments.push(Segment {
                cluster: s.cluster.clone(),
                off: s.off + off,
                len: take,
            });
            len -= take;
            off = 0;
        }
        let mut m = Mbuf {
            segments,
            pkthdr: Some(PktHdr::default()),
        };
        m.stamp_pkthdr();
        m
    }
}

impl Clone for Mbuf {
    /// Cloning shares clusters (cheap); writes through either copy trigger
    /// copy-on-write.
    fn clone(&self) -> Self {
        self.share()
    }
}

/// An mbuf chain *is* a scatter-gather transmit buffer: the simulated
/// NIC's DMA engine walks the chain's segments straight onto the wire
/// (no host-side flatten) and honors any checksum-offload descriptor
/// stamped in the packet header. This impl is the seam between the
/// protocol stack and the device model — `Nic::transmit` takes any
/// [`plexus_sim::nic::TxBuf`], and this makes `&Mbuf` one.
impl plexus_sim::nic::TxBuf for Mbuf {
    fn total_len(&self) -> usize {
        Mbuf::total_len(self)
    }

    fn gather(&self, f: &mut dyn FnMut(&[u8])) {
        for seg in self.segments() {
            f(seg);
        }
    }

    fn tx_csum(&self) -> Option<plexus_sim::nic::TxCsum> {
        self.pkthdr().and_then(|h| h.csum)
    }
}

impl Drop for Mbuf {
    /// Offers the chain's clusters back to the free-list pool. A cluster
    /// is recycled only when this mbuf held the last reference; clusters
    /// still shared with a live mbuf are left to that holder.
    fn drop(&mut self) {
        for seg in self.segments.drain(..) {
            retire_cluster(seg.cluster);
        }
    }
}

impl std::fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Mbuf({} bytes, {} segs)",
            self.total_len(),
            self.segment_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(test)]
    fn allocs() -> u64 {
        ALLOCS.with(|a| a.get())
    }

    #[test]
    fn from_payload_round_trips() {
        let data: Vec<u8> = (0..=255).collect();
        let m = Mbuf::from_payload(LEADING_SPACE, &data);
        assert_eq!(m.total_len(), 256);
        assert_eq!(m.to_vec(), data);
        assert_eq!(m.pkthdr().unwrap().len, 256);
    }

    #[test]
    fn large_payloads_span_clusters() {
        let data = vec![7u8; 5000];
        let m = Mbuf::from_payload(LEADING_SPACE, &data);
        assert!(m.segment_count() >= 3, "5000 B must span clusters");
        assert_eq!(m.to_vec(), data);
    }

    #[test]
    fn prepend_uses_leading_space_without_allocating() {
        let m0 = Mbuf::from_payload(LEADING_SPACE, &[1, 2, 3]);
        let before = allocs();
        let mut m = m0;
        let hdr = m.prepend(14);
        hdr.copy_from_slice(&[9u8; 14]);
        assert_eq!(
            allocs(),
            before,
            "prepend into leading space must not allocate"
        );
        assert_eq!(m.total_len(), 17);
        assert_eq!(&m.to_vec()[..14], &[9u8; 14]);
        assert_eq!(&m.to_vec()[14..], &[1, 2, 3]);
    }

    #[test]
    fn prepend_without_room_chains_a_header_mbuf() {
        let mut m = Mbuf::from_payload(0, &[1, 2, 3]);
        let before_segs = m.segment_count();
        m.prepend(20).copy_from_slice(&[8u8; 20]);
        assert_eq!(m.segment_count(), before_segs + 1);
        assert_eq!(m.total_len(), 23);
        assert_eq!(&m.to_vec()[..20], &[8u8; 20]);
    }

    #[test]
    fn trim_front_walks_segments() {
        let data: Vec<u8> = (0..100).collect();
        let mut m = Mbuf::from_payload(0, &data);
        m.prepend(10).fill(0xEE);
        m.trim_front(10);
        assert_eq!(m.to_vec(), data);
        m.trim_front(60);
        assert_eq!(m.to_vec(), (60..100).collect::<Vec<u8>>());
    }

    #[test]
    fn trim_back_shortens() {
        let mut m = Mbuf::from_payload(0, &[1, 2, 3, 4, 5]);
        m.trim_back(2);
        assert_eq!(m.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "trim_front past end")]
    fn trim_front_past_end_panics() {
        let mut m = Mbuf::from_payload(0, &[1]);
        m.trim_front(2);
    }

    #[test]
    fn pullup_makes_headers_contiguous() {
        // Build a packet whose first segment holds only 2 bytes.
        let mut m = Mbuf::from_payload(0, &[3, 4, 5, 6, 7]);
        m.prepend(2).copy_from_slice(&[1, 2]);
        assert!(m.head().len() < 7);
        assert!(m.pullup(7));
        assert!(m.head().len() >= 7);
        assert_eq!(&m.head()[..7], &[1, 2, 3, 4, 5, 6, 7]);
        assert!(!m.pullup(100), "pullup past end must fail");
    }

    #[test]
    fn share_is_zero_copy_and_write_is_cow() {
        let m = Mbuf::from_payload(LEADING_SPACE, &[1, 2, 3, 4]);
        let mut shared = m.share();
        assert!(m.is_shared());
        assert!(shared.is_shared());
        // Writing through the share must not disturb the original.
        assert!(shared.write_at(0, &[9, 9]));
        assert_eq!(shared.to_vec(), vec![9, 9, 3, 4]);
        assert_eq!(m.to_vec(), vec![1, 2, 3, 4]);
        // After CoW the share owns its cluster.
        assert!(!shared.is_shared());
    }

    #[test]
    fn read_and_write_at_cross_segments() {
        let data: Vec<u8> = (0..=255).cycle().take(4096).map(|x| x as u8).collect();
        let mut m = Mbuf::from_payload(0, &data);
        assert!(m.segment_count() >= 2);
        let mut buf = [0u8; 100];
        assert!(m.read_at(2000, &mut buf));
        assert_eq!(&buf[..], &data[2000..2100]);
        assert!(m.write_at(2040, &[0xAB; 8]));
        let mut check = [0u8; 8];
        m.read_at(2040, &mut check);
        assert_eq!(check, [0xAB; 8]);
        assert!(!m.read_at(4090, &mut buf), "read past end must fail");
        assert!(!m.write_at(4090, &[0u8; 100]), "write past end must fail");
    }

    #[test]
    fn range_shares_clusters() {
        let data: Vec<u8> = (0u16..3000).map(|x| x as u8).collect();
        let m = Mbuf::from_payload(0, &data);
        let before = allocs();
        let part = m.range(100, 2500);
        assert_eq!(allocs(), before, "range must not copy");
        assert_eq!(part.to_vec(), &data[100..2600]);
        assert_eq!(part.pkthdr().unwrap().len, 2500);
    }

    #[test]
    fn append_concatenates_chains() {
        let mut a = Mbuf::from_payload(0, &[1, 2]);
        let b = Mbuf::from_payload(0, &[3, 4, 5]);
        a.append(b);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(a.stamp_pkthdr(), 5);
    }

    #[test]
    fn empty_packet_accepts_prepends() {
        let mut m = Mbuf::empty();
        assert!(m.is_empty());
        m.prepend(8).copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.total_len(), 8);
        assert_eq!(m.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn rcvif_survives_sharing() {
        let mut m = Mbuf::from_wire(&[1, 2, 3]);
        m.pkthdr_mut().rcvif = Some(2);
        let s = m.share();
        assert_eq!(s.pkthdr().unwrap().rcvif, Some(2));
    }

    #[test]
    fn copy_into_matches_to_vec_across_segments() {
        let data: Vec<u8> = (0..=255).cycle().take(4500).map(|x| x as u8).collect();
        let m = Mbuf::from_payload(LEADING_SPACE, &data);
        assert!(m.segment_count() >= 2);
        let mut out = Vec::new();
        m.copy_into(0, m.total_len(), &mut out);
        assert_eq!(out, m.to_vec());
        out.clear();
        m.copy_into(1000, 2000, &mut out);
        assert_eq!(out, &data[1000..3000]);
        // Appending: copy_into must not clobber what's already there.
        let mut out = vec![0xFF];
        m.copy_into(0, 4, &mut out);
        assert_eq!(out, vec![0xFF, data[0], data[1], data[2], data[3]]);
    }

    #[test]
    #[should_panic(expected = "copy_into out of bounds")]
    fn copy_into_past_end_panics() {
        let m = Mbuf::from_payload(0, &[1, 2, 3]);
        let mut out = Vec::new();
        m.copy_into(2, 2, &mut out);
    }

    #[test]
    fn dropped_clusters_are_recycled_and_reused() {
        reset_cluster_pool();
        let m = Mbuf::from_payload(LEADING_SPACE, &[7u8; 32]);
        let before = allocs();
        drop(m);
        assert_eq!(cluster_pool_stats().recycled, 1);
        // The next same-class allocation comes from the free list, zeroed.
        let m2 = Mbuf::from_payload(LEADING_SPACE, &[0u8; 8]);
        assert_eq!(allocs(), before, "reuse must not hit the heap");
        assert_eq!(cluster_pool_stats().reused, 1);
        assert_eq!(m2.to_vec(), vec![0u8; 8]);
        // And no stale bytes from the previous tenant are visible.
        let mut probe = Mbuf::from_payload(0, &[0u8; 0]);
        drop(m2);
        probe.prepend(4).copy_from_slice(&[0, 0, 0, 0]);
        assert_eq!(probe.to_vec(), vec![0u8; 4]);
    }

    #[test]
    fn shared_clusters_are_never_handed_out_while_a_holder_is_live() {
        reset_cluster_pool();
        let m = Mbuf::from_payload(LEADING_SPACE, &[9u8; 16]);
        let holder = m.share();
        drop(m);
        // The cluster is still referenced: it must NOT enter the pool.
        assert_eq!(cluster_pool_stats().recycled, 0);
        assert_eq!(cluster_pool_stats().shared_at_drop, 1);
        let before = allocs();
        let fresh = Mbuf::from_payload(LEADING_SPACE, &[1u8; 4]);
        assert_eq!(allocs(), before + 1, "allocation must be fresh");
        // The live holder's bytes are untouched.
        assert_eq!(holder.to_vec(), vec![9u8; 16]);
        drop(fresh);
        drop(holder); // Last reference: now it recycles.
        assert_eq!(cluster_pool_stats().recycled, 2);
    }

    #[test]
    fn pooled_and_unpooled_runs_build_identical_packets() {
        let build = || {
            let mut m = Mbuf::from_payload(
                LEADING_SPACE,
                &(0..200).map(|x| x as u8).collect::<Vec<u8>>(),
            );
            m.prepend(8).copy_from_slice(&[0xAA; 8]);
            m.trim_front(3);
            m.trim_back(5);
            let r = m.range(10, 100);
            let mut out = m.to_vec();
            out.extend(r.to_vec());
            out
        };
        reset_cluster_pool();
        let pooled: Vec<Vec<u8>> = (0..8).map(|_| build()).collect();
        let was = set_cluster_pool_enabled(false);
        let unpooled: Vec<Vec<u8>> = (0..8).map(|_| build()).collect();
        set_cluster_pool_enabled(was);
        assert_eq!(pooled, unpooled, "pooling must not change packet bytes");
    }

    #[test]
    fn steady_state_churn_performs_zero_allocations_after_warmup() {
        reset_cluster_pool();
        let churn = || {
            let mut m = Mbuf::from_payload(LEADING_SPACE, &[0x42u8; 512]);
            m.prepend(42).fill(0x11);
            m.trim_front(42);
            drop(m);
        };
        churn(); // Warmup populates the free lists.
        let before = allocs();
        for _ in 0..100 {
            churn();
        }
        assert_eq!(allocs(), before, "steady-state churn must recycle");
        assert!(cluster_pool_stats().reused >= 100);
    }

    #[test]
    fn disabled_pool_neither_recycles_nor_reuses() {
        reset_cluster_pool();
        let was = set_cluster_pool_enabled(false);
        let m = Mbuf::from_payload(0, &[1u8; 16]);
        drop(m);
        let before = allocs();
        let _m2 = Mbuf::from_payload(0, &[2u8; 16]);
        assert_eq!(allocs(), before + 1);
        assert_eq!(cluster_pool_stats().recycled, 0);
        assert_eq!(cluster_pool_stats().reused, 0);
        set_cluster_pool_enabled(was);
    }
}
