//! ICMP: echo, destination unreachable, time exceeded.
//!
//! A leaf of the IP node in Figure 1's protocol graph. The Plexus ICMP
//! handler answers echo requests in-kernel; the baseline does the same in
//! its monolithic input path.

use plexus_kernel::view::{be16, put_be16, WireView};

use crate::checksum::checksum;

/// ICMP header length (for the message types we implement).
pub const ICMP_HDR_LEN: usize = 8;

/// ICMP message types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3); code carried separately.
    DestUnreachable,
    /// Echo request (type 8).
    EchoRequest,
    /// Time exceeded (type 11).
    TimeExceeded,
}

impl IcmpType {
    fn to_wire(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
        }
    }

    fn from_wire(v: u8) -> Option<IcmpType> {
        match v {
            0 => Some(IcmpType::EchoReply),
            3 => Some(IcmpType::DestUnreachable),
            8 => Some(IcmpType::EchoRequest),
            11 => Some(IcmpType::TimeExceeded),
            _ => None,
        }
    }
}

/// A parsed ICMP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Message type.
    pub kind: IcmpType,
    /// Code (unreachable reason, etc.).
    pub code: u8,
    /// Identifier (echo) or unused.
    pub ident: u16,
    /// Sequence number (echo) or unused.
    pub seq: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Builds an echo request.
    pub fn echo_request(ident: u16, seq: u16, payload: &[u8]) -> IcmpMessage {
        IcmpMessage {
            kind: IcmpType::EchoRequest,
            code: 0,
            ident,
            seq,
            payload: payload.to_vec(),
        }
    }

    /// Builds the reply to an echo request (echoes ident/seq/payload).
    pub fn echo_reply(req: &IcmpMessage) -> IcmpMessage {
        IcmpMessage {
            kind: IcmpType::EchoReply,
            code: 0,
            ident: req.ident,
            seq: req.seq,
            payload: req.payload.clone(),
        }
    }

    /// Builds a destination-unreachable carrying the offending datagram's
    /// leading bytes, per RFC 792 (`code` 3 = port unreachable).
    pub fn unreachable(code: u8, original: &[u8]) -> IcmpMessage {
        IcmpMessage {
            kind: IcmpType::DestUnreachable,
            code,
            ident: 0,
            seq: 0,
            payload: original[..original.len().min(28)].to_vec(),
        }
    }

    /// Serializes with a correct checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = vec![0u8; ICMP_HDR_LEN + self.payload.len()];
        b[0] = self.kind.to_wire();
        b[1] = self.code;
        put_be16(&mut b, 4, self.ident);
        put_be16(&mut b, 6, self.seq);
        b[ICMP_HDR_LEN..].copy_from_slice(&self.payload);
        let c = checksum(&b);
        put_be16(&mut b, 2, c);
        b
    }

    /// Parses and verifies the checksum.
    pub fn parse(bytes: &[u8]) -> Option<IcmpMessage> {
        let v: IcmpRawView = plexus_kernel::view::view(bytes)?;
        if checksum(bytes) != 0 {
            return None;
        }
        Some(IcmpMessage {
            kind: IcmpType::from_wire(v.0[0])?,
            code: v.0[1],
            ident: be16(v.0, 4),
            seq: be16(v.0, 6),
            payload: bytes[ICMP_HDR_LEN..].to_vec(),
        })
    }
}

struct IcmpRawView<'a>(&'a [u8]);

impl<'a> WireView<'a> for IcmpRawView<'a> {
    const WIRE_SIZE: usize = ICMP_HDR_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        IcmpRawView(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let req = IcmpMessage::echo_request(0xBEEF, 3, b"abcdefgh");
        let bytes = req.to_bytes();
        let parsed = IcmpMessage::parse(&bytes).expect("checksum valid");
        assert_eq!(parsed, req);
        let rep = IcmpMessage::echo_reply(&parsed);
        assert_eq!(rep.kind, IcmpType::EchoReply);
        assert_eq!(rep.ident, 0xBEEF);
        assert_eq!(rep.seq, 3);
        assert_eq!(rep.payload, b"abcdefgh");
    }

    #[test]
    fn corrupted_message_rejected() {
        let mut bytes = IcmpMessage::echo_request(1, 1, b"data").to_bytes();
        bytes[9] ^= 0x10;
        assert!(IcmpMessage::parse(&bytes).is_none());
        assert!(IcmpMessage::parse(&bytes[..4]).is_none(), "too short");
    }

    #[test]
    fn unreachable_quotes_original_datagram() {
        let original = vec![0x45u8; 60];
        let msg = IcmpMessage::unreachable(3, &original);
        assert_eq!(msg.payload.len(), 28, "IP header + 8 bytes");
        let parsed = IcmpMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.kind, IcmpType::DestUnreachable);
        assert_eq!(parsed.code, 3);
    }

    #[test]
    fn unknown_types_rejected() {
        let mut msg = IcmpMessage::echo_request(1, 1, b"").to_bytes();
        msg[0] = 42;
        // Fix the checksum for the mutated type so only the type check fails.
        msg[2] = 0;
        msg[3] = 0;
        let c = checksum(&msg);
        msg[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(IcmpMessage::parse(&msg).is_none());
    }
}
