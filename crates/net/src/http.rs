//! Minimal HTTP/1.0, for the paper's HTTP demonstration (§7: "a
//! demonstration of the protocol stack as it services HTTP requests").
//!
//! Request parsing tolerates incremental arrival (byte streams from TCP);
//! responses are built with correct `Content-Length` framing.

use std::collections::BTreeMap;

/// An HTTP request line + headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Method (`GET`, `HEAD`, …).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Protocol version string (e.g. `HTTP/1.0`).
    pub version: String,
    /// Header fields, lower-cased names.
    pub headers: BTreeMap<String, String>,
}

/// Result of feeding bytes to [`parse_request`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// Need more bytes; the head terminator has not arrived.
    Incomplete,
    /// Parsed; `consumed` bytes belonged to the head.
    Complete {
        /// The request.
        request: Request,
        /// Bytes consumed from the input.
        consumed: usize,
    },
    /// The bytes do not form an HTTP request head.
    Malformed,
}

/// Parses a request head from the front of `buf` (which may hold more).
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    let Some(end) = find_head_end(buf) else {
        return ParseOutcome::Incomplete;
    };
    let head = match std::str::from_utf8(&buf[..end]) {
        Ok(s) => s,
        Err(_) => return ParseOutcome::Malformed,
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Malformed;
    };
    if !version.starts_with("HTTP/") {
        return ParseOutcome::Malformed;
    }
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Malformed;
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    ParseOutcome::Complete {
        request: Request {
            method: method.to_string(),
            path: path.to_string(),
            version: version.to_string(),
            headers,
        },
        consumed: end + 4,
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Builds a response with status line, `Content-Length`, and body.
pub fn build_response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nServer: plexus\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Parses a response into `(status, body)` — enough for test clients.
pub fn parse_response(bytes: &[u8]) -> Option<(u16, Vec<u8>)> {
    let end = find_head_end(bytes)?;
    let head = std::str::from_utf8(&bytes[..end]).ok()?;
    let status_line = head.split("\r\n").next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, bytes[end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let raw = b"GET /index.html HTTP/1.0\r\nHost: spin.cs.washington.edu\r\nAccept: */*\r\n\r\nTRAILING";
        match parse_request(raw) {
            ParseOutcome::Complete { request, consumed } => {
                assert_eq!(request.method, "GET");
                assert_eq!(request.path, "/index.html");
                assert_eq!(request.version, "HTTP/1.0");
                assert_eq!(
                    request.headers.get("host").map(String::as_str),
                    Some("spin.cs.washington.edu")
                );
                assert_eq!(&raw[consumed..], b"TRAILING");
            }
            other => panic!("expected complete parse, got {other:?}"),
        }
    }

    #[test]
    fn partial_request_is_incomplete() {
        assert_eq!(
            parse_request(b"GET / HTTP/1.0\r\nHost: x"),
            ParseOutcome::Incomplete
        );
        assert_eq!(parse_request(b""), ParseOutcome::Incomplete);
    }

    #[test]
    fn garbage_is_malformed() {
        assert_eq!(parse_request(b"NOT HTTP\r\n\r\n"), ParseOutcome::Malformed);
        assert_eq!(
            parse_request(b"GET /x BADPROTO/9\r\n\r\n"),
            ParseOutcome::Malformed
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.0\r\nbad header line\r\n\r\n"),
            ParseOutcome::Malformed
        );
    }

    #[test]
    fn response_round_trip() {
        let body = b"<html>SPIN</html>";
        let resp = build_response(200, "OK", "text/html", body);
        let (status, got) = parse_response(&resp).expect("parseable");
        assert_eq!(status, 200);
        assert_eq!(got, body);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.contains("Content-Length: 17"));
    }
}
