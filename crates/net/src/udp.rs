//! UDP, with the checksum optional.
//!
//! §1.1's motivating example: "applications where data integrity is
//! optional, such as audio and some flavors of video, might use an
//! implementation of UDP for which the checksum has been disabled" — a
//! legitimate optimization when both ends agree. [`UdpConfig::checksum`]
//! is that knob; the network-video protocol (§5.1) and the `custom_udp`
//! example exercise it.

use std::net::Ipv4Addr;

use plexus_kernel::view::{be16, put_be16, WireView};

use crate::checksum::{Checksum, CsumOffload};
use crate::ip::proto;
use crate::mbuf::Mbuf;

/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;

/// Per-endpoint UDP options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpConfig {
    /// Compute/verify the payload checksum. Standard UDP over IPv4 makes
    /// this optional; disabling it trades integrity for CPU time.
    pub checksum: bool,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig { checksum: true }
    }
}

/// Zero-copy view of a UDP header.
pub struct UdpView<'a>(&'a [u8]);

impl<'a> WireView<'a> for UdpView<'a> {
    const WIRE_SIZE: usize = UDP_HDR_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        UdpView(bytes)
    }
}

impl UdpView<'_> {
    /// Source port.
    pub fn src_port(&self) -> u16 {
        be16(self.0, 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        be16(self.0, 2)
    }

    /// Length field (header + payload).
    pub fn len(&self) -> usize {
        be16(self.0, 4) as usize
    }

    /// True when the length field claims no payload beyond the header.
    pub fn is_empty(&self) -> bool {
        self.len() <= UDP_HDR_LEN
    }

    /// Checksum field (0 = disabled).
    pub fn checksum_field(&self) -> u16 {
        be16(self.0, 6)
    }
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, udp_len: usize) -> Checksum {
    let mut c = Checksum::new();
    c.add(&src.octets())
        .add(&dst.octets())
        .add_u16(proto::UDP as u16)
        .add_u16(udp_len as u16);
    c
}

/// Prepends a UDP header onto `payload`. With `config.checksum` the
/// pseudo-header checksum is computed; otherwise the field is 0 (disabled).
pub fn encapsulate(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    config: UdpConfig,
    mut payload: Mbuf,
) -> Mbuf {
    let udp_len = UDP_HDR_LEN + payload.total_len();
    let mut check = 0u16;
    if config.checksum {
        let mut c = pseudo_header_sum(src, dst, udp_len);
        c.add_u16(src_port)
            .add_u16(dst_port)
            .add_u16(udp_len as u16)
            .add_u16(0);
        for seg in payload.segments() {
            c.add(seg);
        }
        check = c.finish();
        if check == 0 {
            check = 0xFFFF; // 0 means "no checksum" on the wire.
        }
    }
    let hdr = payload.prepend(UDP_HDR_LEN);
    put_be16(hdr, 0, src_port);
    put_be16(hdr, 2, dst_port);
    put_be16(hdr, 4, udp_len as u16);
    put_be16(hdr, 6, check);
    payload.stamp_pkthdr();
    payload
}

/// [`encapsulate`] with the checksum deferred to a NIC that advertises
/// checksum offload: the field is left zero and a [`CsumOffload`]
/// descriptor (pseudo-header partial included) is stamped in the packet
/// header for the adapter to fill during the DMA gather. Once the NIC
/// patches the field the wire bytes are identical to the software path's.
pub fn encapsulate_offload(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    mut payload: Mbuf,
) -> Mbuf {
    let udp_len = UDP_HDR_LEN + payload.total_len();
    let hdr = payload.prepend(UDP_HDR_LEN);
    put_be16(hdr, 0, src_port);
    put_be16(hdr, 2, dst_port);
    put_be16(hdr, 4, udp_len as u16);
    put_be16(hdr, 6, 0);
    payload.stamp_pkthdr();
    payload.pkthdr_mut().csum = Some(CsumOffload {
        start_from_end: udp_len,
        field_from_end: udp_len - 6,
        pseudo: pseudo_header_sum(src, dst, udp_len).partial(),
        zero_to_ones: true,
    });
    payload
}

/// A decapsulated datagram.
#[derive(Debug)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload (shares the input's storage).
    pub payload: Mbuf,
}

/// Parses a UDP datagram (the payload of an IP packet from `src`→`dst`).
/// Verifies the checksum when present and `config.checksum` is set.
/// Returns `None` on malformed or corrupt datagrams.
pub fn decapsulate(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    config: UdpConfig,
    packet: &Mbuf,
) -> Option<UdpDatagram> {
    // Only the 8-byte header needs to be contiguous; the checksum walks
    // the mbuf chain in place rather than flattening the datagram.
    let mut hdr_bytes = Vec::with_capacity(UDP_HDR_LEN);
    packet.copy_into(0, packet.total_len().min(UDP_HDR_LEN), &mut hdr_bytes);
    let v: UdpView = plexus_kernel::view::view(&hdr_bytes)?;
    let udp_len = v.len();
    if udp_len < UDP_HDR_LEN || udp_len > packet.total_len() {
        return None;
    }
    if config.checksum && v.checksum_field() != 0 {
        let mut c = pseudo_header_sum(src, dst, udp_len);
        let mut remaining = udp_len;
        for seg in packet.segments() {
            let take = seg.len().min(remaining);
            c.add(&seg[..take]);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        if c.finish() != 0 {
            return None;
        }
    }
    Some(UdpDatagram {
        src_port: v.src_port(),
        dst_port: v.dst_port(),
        payload: packet.range(UDP_HDR_LEN, udp_len - UDP_HDR_LEN),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::compute_offload;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 1, last)
    }

    #[test]
    fn checksummed_round_trip() {
        let payload = Mbuf::from_payload(64, b"datagram payload");
        let d = encapsulate(ip(1), ip(2), 1234, 80, UdpConfig::default(), payload);
        let got = decapsulate(ip(1), ip(2), UdpConfig::default(), &d).expect("valid");
        assert_eq!(got.src_port, 1234);
        assert_eq!(got.dst_port, 80);
        assert_eq!(got.payload.to_vec(), b"datagram payload");
    }

    #[test]
    fn corruption_is_caught_when_checksumming() {
        let payload = Mbuf::from_payload(64, b"sensitive");
        let mut d = encapsulate(ip(1), ip(2), 9, 9, UdpConfig::default(), payload);
        d.write_at(10, &[0xFF]);
        assert!(decapsulate(ip(1), ip(2), UdpConfig::default(), &d).is_none());
    }

    #[test]
    fn disabled_checksum_skips_verification() {
        let nocheck = UdpConfig { checksum: false };
        let payload = Mbuf::from_payload(64, b"video frame");
        let mut d = encapsulate(ip(1), ip(2), 9, 9, nocheck, payload);
        let bytes = d.to_vec();
        let v: UdpView = plexus_kernel::view::view(&bytes).unwrap();
        assert_eq!(v.checksum_field(), 0, "checksum disabled on the wire");
        // Corruption is NOT caught — the §1.1 trade-off, made explicit.
        d.write_at(10, &[0xFF]);
        assert!(decapsulate(ip(1), ip(2), nocheck, &d).is_some());
    }

    #[test]
    fn decapsulate_handles_chains_and_padding_without_cluster_allocs() {
        // Build a datagram whose bytes span several mbuf segments with odd
        // boundaries, then add trailing link-layer padding beyond udp_len:
        // the in-place checksum walk must stop at udp_len and the whole
        // parse must not allocate cluster storage (header peek is a small
        // Vec, payload is a range view).
        let payload = Mbuf::from_payload(64, &[0xA5u8; 301]);
        let mut d = encapsulate(ip(1), ip(2), 40000, 53, UdpConfig::default(), payload);
        d.append(Mbuf::from_payload(0, &[0u8; 17])); // Ethernet-style pad.
        let before = crate::mbuf::cluster_pool_stats();
        let got = decapsulate(ip(1), ip(2), UdpConfig::default(), &d).expect("valid");
        let after = crate::mbuf::cluster_pool_stats();
        assert_eq!(got.src_port, 40000);
        assert_eq!(got.payload.to_vec(), vec![0xA5u8; 301]);
        assert_eq!(
            after.allocated + after.reused + after.unpooled,
            before.allocated + before.reused + before.unpooled,
            "decapsulate must not allocate cluster storage"
        );
    }

    #[test]
    fn offloaded_checksum_matches_the_software_pass_byte_for_byte() {
        let data: Vec<u8> = (0u16..517).map(|x| (x * 11) as u8).collect();
        let sw = encapsulate(
            ip(1),
            ip(2),
            1234,
            80,
            UdpConfig::default(),
            Mbuf::from_payload(64, &data),
        );
        let mut hw = encapsulate_offload(ip(1), ip(2), 1234, 80, Mbuf::from_payload(64, &data));
        let req = hw.pkthdr().unwrap().csum.expect("offload stamped");
        // The deferred field is zero until the NIC fills it.
        let mut wire = hw.to_vec();
        assert_eq!(&wire[6..8], &[0, 0]);
        let v = compute_offload(&req, &hw);
        let field = wire.len() - req.field_from_end;
        wire[field..field + 2].copy_from_slice(&v.to_be_bytes());
        assert_eq!(wire, sw.to_vec(), "NIC-filled frame identical to software");
        // And it verifies as a received datagram.
        hw.write_at(6, &v.to_be_bytes());
        assert!(decapsulate(ip(1), ip(2), UdpConfig::default(), &hw).is_some());
    }

    #[test]
    fn wrong_pseudo_header_addresses_fail_verification() {
        let payload = Mbuf::from_payload(64, b"x");
        let d = encapsulate(ip(1), ip(2), 1, 2, UdpConfig::default(), payload);
        // A spoofed/garbled source address breaks the pseudo-header sum.
        assert!(decapsulate(ip(7), ip(2), UdpConfig::default(), &d).is_none());
    }

    #[test]
    fn truncated_datagrams_rejected() {
        let payload = Mbuf::from_payload(64, b"abcdef");
        let d = encapsulate(ip(1), ip(2), 1, 2, UdpConfig::default(), payload);
        let bytes = d.to_vec();
        let short = Mbuf::from_payload(0, &bytes[..UDP_HDR_LEN - 1]);
        assert!(decapsulate(ip(1), ip(2), UdpConfig::default(), &short).is_none());
        // Length field larger than the actual data.
        let mut lying = Mbuf::from_payload(0, &bytes[..UDP_HDR_LEN]);
        lying.write_at(4, &[0xFF, 0xFF]);
        assert!(decapsulate(ip(1), ip(2), UdpConfig::default(), &lying).is_none());
    }

    #[test]
    fn empty_payload_is_legal() {
        let d = encapsulate(ip(1), ip(2), 5, 6, UdpConfig::default(), Mbuf::empty());
        let got = decapsulate(ip(1), ip(2), UdpConfig::default(), &d).expect("valid");
        assert_eq!(got.payload.total_len(), 0);
    }
}
