//! Property tests for the guard verifier (§3.1, §3.3):
//!
//! * programs built by [`conjunction`] always verify, stay within the
//!   static cost budget, and never fault on arbitrary packets;
//! * on well-formed packets the defensive interpreter agrees with the
//!   unchecked one (verification costs no expressive power);
//! * arbitrary raw programs either verify (and are then safe to run) or
//!   produce a non-empty error report;
//! * programs the verifier rejects for out-of-bounds loads or field type
//!   mismatches really do fault under an unchecked interpreter — the
//!   verifier is load-bearing, not ceremonial.

use std::panic::{catch_unwind, AssertUnwindSafe};

use plexus_filter::{
    conjunction, eval, eval_unchecked, verify, EventKind, Field, FilterProgram, Insn, Operand,
    Packet, Reg, Src, Test, VerifyError, Width,
};
use proptest::prelude::*;

const KINDS: [EventKind; 4] = [
    EventKind::EthRecv,
    EventKind::IpRecv,
    EventKind::UdpRecv,
    EventKind::TcpRecv,
];

const ALL_FIELDS: [Field; 20] = [
    Field::EthDst,
    Field::EthSrc,
    Field::EthType,
    Field::FrameLen,
    Field::IpSrc,
    Field::IpDst,
    Field::IpProto,
    Field::IpPayloadLen,
    Field::UdpSrcAddr,
    Field::UdpDstAddr,
    Field::UdpSrcPort,
    Field::UdpDstPort,
    Field::UdpPayloadLen,
    Field::TcpSrcAddr,
    Field::TcpDstAddr,
    Field::TcpSrcPort,
    Field::TcpDstPort,
    Field::TcpFlagSyn,
    Field::TcpFlagAck,
    Field::TcpPayloadLen,
];

fn fields_of(kind: EventKind) -> Vec<Field> {
    ALL_FIELDS
        .iter()
        .copied()
        .filter(|f| f.kind() == kind)
        .collect()
}

fn field_index(field: Field) -> u64 {
    ALL_FIELDS.iter().position(|f| *f == field).unwrap() as u64
}

/// A packet whose typed fields are small deterministic values (so random
/// tests hit and miss both branches) over an arbitrary head.
#[derive(Debug)]
struct TestPacket {
    kind: EventKind,
    base: u64,
    head: Vec<u8>,
}

impl Packet for TestPacket {
    fn kind(&self) -> EventKind {
        self.kind
    }

    fn field(&self, field: Field) -> Option<u64> {
        if field.kind() != self.kind {
            return None;
        }
        Some(self.base.wrapping_add(field_index(field)) % 8)
    }

    fn head(&self) -> &[u8] {
        &self.head
    }
}

/// Decodes raw tuples into builder tests over `kind`'s own fields,
/// keeping at most one test per operand: a conjunction that constrains
/// the same operand to two disjoint value sets is a contradiction, which
/// the verifier (correctly) rejects as an unreachable `Accept`.
fn decode_tests(kind: EventKind, raw: &[(u8, u16, u64, u64)]) -> Vec<Test> {
    let mut seen = std::collections::BTreeSet::new();
    raw.iter()
        .map(|&t| decode_test(kind, t))
        .filter(|test| {
            let Test::In { op, .. } = test else {
                unreachable!("decode_test only builds In tests");
            };
            seen.insert(format!("{op:?}"))
        })
        .collect()
}

/// Decodes one raw tuple into a builder test over `kind`'s own fields.
fn decode_test(kind: EventKind, raw: (u8, u16, u64, u64)) -> Test {
    let (sel, off, a, b) = raw;
    let op = if sel % 2 == 0 {
        let fields = fields_of(kind);
        Operand::Field(fields[(a % fields.len() as u64) as usize])
    } else {
        Operand::Pay {
            off: off % 58,
            width: match sel % 3 {
                0 => Width::W8,
                1 => Width::W16,
                _ => Width::W32,
            },
        }
    };
    Test::one_of(op, [a % 8, b % 8])
}

/// Decodes one raw tuple into an arbitrary (possibly ill-formed) insn.
fn decode_insn(raw: (u8, u8, u16, u64)) -> Insn {
    let (op, reg, off, imm) = raw;
    let r = Reg(reg % 10); // Deliberately sometimes out of range.
    match op % 9 {
        0 => Insn::Ld {
            dst: r,
            field: ALL_FIELDS[(imm % ALL_FIELDS.len() as u64) as usize],
        },
        1 => Insn::LdImm { dst: r, imm },
        2 => Insn::LdPay {
            dst: r,
            off: off % 80, // Sometimes beyond PAY_WINDOW.
            width: Width::W16,
        },
        3 => Insn::And {
            dst: r,
            src: Src::Imm(imm),
        },
        4 => Insn::Jeq {
            a: r,
            b: Src::Imm(imm % 8),
            off: off % 5,
        },
        5 => Insn::Jne {
            a: r,
            b: Src::Imm(imm % 8),
            off: off % 5,
        },
        6 => Insn::Ja { off: off % 5 },
        7 => Insn::Accept,
        _ => Insn::Reject,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Manager-built guards always verify, are bounded, and their checked
    // evaluation never faults — on packets of any kind, any head length.
    #[test]
    fn built_guards_verify_and_never_fault(
        kind_i in 0usize..4,
        raw_tests in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u64>(), any::<u64>()), 0..5),
        pkt_kind_i in 0usize..4,
        base in any::<u64>(),
        head in prop::collection::vec(any::<u8>(), 0..80),
    ) {
        let kind = KINDS[kind_i];
        let tests = decode_tests(kind, &raw_tests);
        let prog = conjunction(kind, &tests, vec![]);
        let vp = match verify(&prog) {
            Ok(vp) => vp,
            Err(report) => return Err(TestCaseError::fail(format!(
                "built guard failed verification: {report}"
            ))),
        };
        prop_assert!(vp.cost() <= plexus_filter::MAX_COST);
        // Must return (not fault) whatever the packet looks like.
        let pkt = TestPacket { kind: KINDS[pkt_kind_i], base, head };
        let _ = eval(&vp, &pkt);
    }

    // On a matching, fully-populated packet the defensive interpreter
    // agrees with the unchecked one: safety costs no answers.
    #[test]
    fn checked_and_unchecked_agree_on_well_formed_packets(
        kind_i in 0usize..4,
        raw_tests in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u64>(), any::<u64>()), 0..5),
        base in any::<u64>(),
        head in prop::collection::vec(any::<u8>(), 64..80),
    ) {
        let kind = KINDS[kind_i];
        let tests = decode_tests(kind, &raw_tests);
        let prog = conjunction(kind, &tests, vec![]);
        let vp = verify(&prog).expect("built guard verifies");
        let pkt = TestPacket { kind, base, head };
        prop_assert_eq!(eval(&vp, &pkt), eval_unchecked(&prog, &pkt));
    }

    // Arbitrary instruction soup: either the verifier accepts (and the
    // program is then bounded and safe to evaluate) or it explains itself
    // with at least one error.
    #[test]
    fn arbitrary_programs_verify_or_report(
        kind_i in 0usize..4,
        raw_insns in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>(), any::<u64>()), 0..12),
        pkt_kind_i in 0usize..4,
        base in any::<u64>(),
        head in prop::collection::vec(any::<u8>(), 0..80),
    ) {
        let mut insns: Vec<Insn> = raw_insns.iter().map(|&r| decode_insn(r)).collect();
        insns.push(Insn::Accept);
        let prog = FilterProgram::new(KINDS[kind_i], insns);
        match verify(&prog) {
            Ok(vp) => {
                prop_assert!(vp.cost() <= plexus_filter::MAX_COST);
                let pkt = TestPacket { kind: KINDS[pkt_kind_i], base, head };
                let _ = eval(&vp, &pkt);
            }
            Err(report) => prop_assert!(!report.errors.is_empty()),
        }
    }

    // A program rejected for an out-of-bounds payload load really does
    // fault when interpreted without checks.
    #[test]
    fn oob_rejected_programs_fault_unchecked(
        kind_i in 0usize..4,
        off in 64u16..1000,
        base in any::<u64>(),
        head in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let kind = KINDS[kind_i];
        let prog = FilterProgram::new(
            kind,
            vec![
                Insn::LdPay { dst: Reg(0), off, width: Width::W16 },
                Insn::Accept,
            ],
        );
        let report = verify(&prog).expect_err("load beyond PAY_WINDOW must be rejected");
        let has_oob = report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::OutOfBoundsLoad { .. }));
        prop_assert!(has_oob, "expected an OutOfBoundsLoad error");
        let pkt = TestPacket { kind, base, head };
        let faulted = catch_unwind(AssertUnwindSafe(|| eval_unchecked(&prog, &pkt))).is_err();
        prop_assert!(faulted, "unchecked interpreter should fault on the OOB load");
    }

    // A program rejected for loading a field of the wrong event kind
    // faults when run unchecked against a packet of the program's kind.
    #[test]
    fn type_rejected_programs_fault_unchecked(
        field_i in 0usize..20,
        kind_i in 0usize..4,
        base in any::<u64>(),
        head in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let field = ALL_FIELDS[field_i];
        // Pick a kind the field does NOT belong to.
        let kind = KINDS[(KINDS.iter().position(|k| *k == field.kind()).unwrap() + 1 + kind_i % 3) % 4];
        prop_assert_ne!(kind, field.kind());
        let prog = FilterProgram::new(
            kind,
            vec![Insn::Ld { dst: Reg(0), field }, Insn::Accept],
        );
        let report = verify(&prog).expect_err("cross-kind field load must be rejected");
        let has_mismatch = report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::FieldKindMismatch { .. }));
        prop_assert!(has_mismatch, "expected a FieldKindMismatch error");
        let pkt = TestPacket { kind, base, head };
        let faulted = catch_unwind(AssertUnwindSafe(|| eval_unchecked(&prog, &pkt))).is_err();
        prop_assert!(faulted, "unchecked interpreter should fault on the absent field");
    }
}
