//! The guard intermediate representation.
//!
//! A [`FilterProgram`] is a straight-line predicate over one typed network
//! event: it loads typed fields (or raw payload bytes) into registers,
//! compares them against immediates or other registers, and terminates with
//! [`Insn::Accept`] or [`Insn::Reject`]. All control flow is **forward
//! only** — a jump target is always `pc + 1 + off` with `off: u16 >= 0` —
//! so every program terminates and each instruction executes at most once.
//!
//! Programs are *data*, not code: a protocol manager can inspect, verify,
//! and reason about a guard it installs on behalf of an untrusted
//! extension, which is impossible with an opaque closure.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// Hard limit on program length.
pub const MAX_INSNS: usize = 64;

/// Hard limit on total static cost (a sound bound on any execution, since
/// control flow is forward-only).
pub const MAX_COST: u32 = 96;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 8;

/// Static bound on payload-byte loads: `LdPay` must address within the
/// first `PAY_WINDOW` bytes of the event's contiguous head.
pub const PAY_WINDOW: u16 = 64;

/// The event type a program is written against. Field loads are typed by
/// kind; a program only ever evaluates events of its own kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Raw Ethernet frame receive (`EthRecv`).
    EthRecv,
    /// IP datagram receive (`IpRecv`).
    IpRecv,
    /// Demultiplexed UDP receive (`UdpRecv`).
    UdpRecv,
    /// Demultiplexed TCP segment receive (`TcpRecv`).
    TcpRecv,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A typed field of a network event. Each field belongs to exactly one
/// [`EventKind`]; loading it from any other kind is a verification error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Field {
    /// Destination MAC address, as a 48-bit integer (EthRecv).
    EthDst,
    /// Source MAC address, as a 48-bit integer (EthRecv).
    EthSrc,
    /// Ethertype (EthRecv).
    EthType,
    /// Total frame length in bytes (EthRecv).
    FrameLen,
    /// Source IPv4 address as a u32 (IpRecv).
    IpSrc,
    /// Destination IPv4 address as a u32 (IpRecv).
    IpDst,
    /// IP protocol number (IpRecv).
    IpProto,
    /// IP payload length in bytes (IpRecv).
    IpPayloadLen,
    /// Source IPv4 address (UdpRecv).
    UdpSrcAddr,
    /// Destination IPv4 address (UdpRecv).
    UdpDstAddr,
    /// UDP source port (UdpRecv).
    UdpSrcPort,
    /// UDP destination port (UdpRecv).
    UdpDstPort,
    /// UDP payload length in bytes (UdpRecv).
    UdpPayloadLen,
    /// Source IPv4 address (TcpRecv).
    TcpSrcAddr,
    /// Destination IPv4 address (TcpRecv).
    TcpDstAddr,
    /// TCP source port (TcpRecv).
    TcpSrcPort,
    /// TCP destination port (TcpRecv).
    TcpDstPort,
    /// SYN flag as 0/1 (TcpRecv).
    TcpFlagSyn,
    /// ACK flag as 0/1 (TcpRecv).
    TcpFlagAck,
    /// TCP payload length in bytes (TcpRecv).
    TcpPayloadLen,
}

impl Field {
    /// The event kind this field belongs to.
    pub fn kind(self) -> EventKind {
        use Field::*;
        match self {
            EthDst | EthSrc | EthType | FrameLen => EventKind::EthRecv,
            IpSrc | IpDst | IpProto | IpPayloadLen => EventKind::IpRecv,
            UdpSrcAddr | UdpDstAddr | UdpSrcPort | UdpDstPort | UdpPayloadLen => EventKind::UdpRecv,
            TcpSrcAddr | TcpDstAddr | TcpSrcPort | TcpDstPort | TcpFlagSyn | TcpFlagAck
            | TcpPayloadLen => EventKind::TcpRecv,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Width of a raw payload load.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Width {
    /// One byte.
    W8,
    /// Two bytes, big-endian.
    W16,
    /// Four bytes, big-endian.
    W32,
}

impl Width {
    /// Load width in bytes.
    pub fn bytes(self) -> u16 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
        }
    }
}

/// A register index (`0..NUM_REGS`). Out-of-range indices are rejected by
/// the verifier and fault in the unchecked interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reg(pub u8);

/// Second operand of ALU/compare instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Another register.
    Reg(Reg),
    /// An immediate constant.
    Imm(u64),
}

/// Index into [`FilterProgram::sets`].
pub type SetId = u16;

/// Index into [`FilterProgram::maps`].
pub type MapId = u16;

/// One guard instruction. Jump targets are `pc + 1 + off` (forward only).
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field roles are given in each variant's doc line
pub enum Insn {
    /// `dst <- field(event)`.
    Ld { dst: Reg, field: Field },
    /// `dst <- imm`.
    LdImm { dst: Reg, imm: u64 },
    /// `dst <- big-endian load of `width` bytes at `off` in the payload head.
    LdPay { dst: Reg, off: u16, width: Width },
    /// `dst <- dst & src`.
    And { dst: Reg, src: Src },
    /// `dst <- dst | src`.
    Or { dst: Reg, src: Src },
    /// Jump forward `off` if `a == b`.
    Jeq { a: Reg, b: Src, off: u16 },
    /// Jump forward `off` if `a != b`.
    Jne { a: Reg, b: Src, off: u16 },
    /// Jump forward `off` if `a < b`.
    Jlt { a: Reg, b: Src, off: u16 },
    /// Jump forward `off` if `a > b`.
    Jgt { a: Reg, b: Src, off: u16 },
    /// Jump forward `off` if `a` (as a port number) is in the shared set.
    JInSet { a: Reg, set: SetId, off: u16 },
    /// Unconditional forward jump.
    Ja { off: u16 },
    /// `dst <- ++map[idx]` (saturating): bump a counter-map slot.
    MBump { dst: Reg, map: MapId, idx: Reg },
    /// `dst <- map[idx]`: read a map slot (count or token balance).
    MLoad { dst: Reg, map: MapId, idx: Reg },
    /// `dst <- take(map[idx])`: refill a token-bucket slot, take one
    /// token; `dst` is 1 if a token was available, else 0.
    MTake { dst: Reg, map: MapId, idx: Reg },
    /// Terminate: the guard matches.
    Accept,
    /// Terminate: the guard does not match.
    Reject,
}

impl Insn {
    /// Static cost of executing this instruction once.
    pub fn cost(&self) -> u32 {
        match self {
            Insn::LdPay { .. } => 2,
            Insn::JInSet { .. } => 4,
            Insn::MLoad { .. } => 4,
            Insn::MBump { .. } => 6,
            Insn::MTake { .. } => 8,
            _ => 1,
        }
    }
}

/// A shared, mutable set of ports referenced by [`Insn::JInSet`].
///
/// The handle is shared between the installed program and its manager, so
/// the manager can grow or shrink the set (e.g. the UDP manager's special
/// ports) without reinstalling — mirroring how the original closure guards
/// captured an `Rc<RefCell<HashSet<u16>>>`.
#[derive(Clone, Debug, Default)]
pub struct PortSet(Rc<RefCell<BTreeSet<u16>>>);

impl PortSet {
    /// Creates an empty set.
    pub fn new() -> PortSet {
        PortSet::default()
    }

    /// Adds a port; returns whether it was newly inserted.
    pub fn insert(&self, port: u16) -> bool {
        self.0.borrow_mut().insert(port)
    }

    /// Removes a port; returns whether it was present.
    pub fn remove(&self, port: u16) -> bool {
        self.0.borrow_mut().remove(&port)
    }

    /// Membership test.
    pub fn contains(&self, port: u16) -> bool {
        self.0.borrow().contains(&port)
    }

    /// Number of ports currently in the set.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Snapshot of the current contents.
    pub fn snapshot(&self) -> BTreeSet<u16> {
        self.0.borrow().clone()
    }
}

/// A complete guard program: typed against one event kind, with the shared
/// port sets its `JInSet` instructions reference and the bounded state
/// maps its map instructions address.
#[derive(Clone, Debug)]
pub struct FilterProgram {
    /// Event kind this program filters.
    pub kind: EventKind,
    /// Instruction sequence.
    pub insns: Vec<Insn>,
    /// Shared port sets addressed by [`SetId`].
    pub sets: Vec<PortSet>,
    /// Declared state maps addressed by [`MapId`].
    pub maps: Vec<crate::state::StateMap>,
    /// Declared total state budget in bytes: verification fails unless the
    /// maps' combined footprint fits (and the budget itself fits
    /// [`crate::state::MAX_STATE_BYTES`]).
    pub state_budget: u32,
}

impl FilterProgram {
    /// A program over `kind` with no shared sets and no state.
    pub fn new(kind: EventKind, insns: Vec<Insn>) -> FilterProgram {
        FilterProgram {
            kind,
            insns,
            sets: Vec::new(),
            maps: Vec::new(),
            state_budget: 0,
        }
    }

    /// Attaches declared state maps under a total byte budget (the
    /// program "header" declaration the verifier checks against).
    pub fn with_state(mut self, maps: Vec<crate::state::StateMap>, state_budget: u32) -> Self {
        self.maps = maps;
        self.state_budget = state_budget;
        self
    }

    /// Combined footprint of the declared maps, in bytes.
    pub fn state_bytes(&self) -> u32 {
        self.maps
            .iter()
            .fold(0u32, |acc, m| acc.saturating_add(m.state_bytes()))
    }

    /// Total static cost (sound execution bound: forward-only control flow
    /// means each instruction runs at most once).
    pub fn total_cost(&self) -> u32 {
        self.insns.iter().map(Insn::cost).sum()
    }
}
