//! `plexus-verify` — command-line linter for extension specs and guards.
//!
//! Reads one or more `.spec` files, checks the declared imports/refs/
//! exports against the interfaces the file declares, and — when the file
//! describes a guard — compiles it and runs the static verifier with the
//! declared policy. All violations are reported; the exit code is nonzero
//! if any file fails.
//!
//! File format (line-based, `#` comments):
//!
//! ```text
//! name        Video
//! signature   typesafe | trusted | unsigned
//! interface   UDP: PacketRecv Send        # a known interface + symbols
//! import      UDP.PacketRecv
//! ref         UDP.PacketRecv              # a symbol the body references
//! export      Frame
//! guard-kind  UdpRecv
//! guard-test  field UdpDstPort == 7000
//! guard-test  field UdpDstAddr in 167772162 4294967295
//! guard-test  pay 2 w16 == 7000
//! policy      field UdpDstPort in 7000    # must be provable at accept
//! ```

use std::process::ExitCode;

use plexus_filter::spec::{analyze, InterfaceTable, SpecInfo, SpecSignature};
use plexus_filter::{
    conjunction, verify_with_policy, EventKind, Field, FieldKey, Operand, Policy, Test, Width,
};

#[derive(Default)]
struct ParsedSpec {
    info: SpecInfo,
    table: InterfaceTable,
    guard_kind: Option<EventKind>,
    guard_tests: Vec<Test>,
    policy: Policy,
    has_policy: bool,
}

fn parse_field(name: &str) -> Result<Field, String> {
    use Field::*;
    Ok(match name {
        "EthDst" => EthDst,
        "EthSrc" => EthSrc,
        "EthType" => EthType,
        "FrameLen" => FrameLen,
        "IpSrc" => IpSrc,
        "IpDst" => IpDst,
        "IpProto" => IpProto,
        "IpPayloadLen" => IpPayloadLen,
        "UdpSrcAddr" => UdpSrcAddr,
        "UdpDstAddr" => UdpDstAddr,
        "UdpSrcPort" => UdpSrcPort,
        "UdpDstPort" => UdpDstPort,
        "UdpPayloadLen" => UdpPayloadLen,
        "TcpSrcAddr" => TcpSrcAddr,
        "TcpDstAddr" => TcpDstAddr,
        "TcpSrcPort" => TcpSrcPort,
        "TcpDstPort" => TcpDstPort,
        "TcpFlagSyn" => TcpFlagSyn,
        "TcpFlagAck" => TcpFlagAck,
        "TcpPayloadLen" => TcpPayloadLen,
        other => return Err(format!("unknown field {other}")),
    })
}

fn parse_kind(name: &str) -> Result<EventKind, String> {
    Ok(match name {
        "EthRecv" => EventKind::EthRecv,
        "IpRecv" => EventKind::IpRecv,
        "UdpRecv" => EventKind::UdpRecv,
        "TcpRecv" => EventKind::TcpRecv,
        other => return Err(format!("unknown event kind {other}")),
    })
}

fn parse_width(name: &str) -> Result<Width, String> {
    Ok(match name {
        "w8" => Width::W8,
        "w16" => Width::W16,
        "w32" => Width::W32,
        other => return Err(format!("unknown width {other}")),
    })
}

/// Parses `field <Name>` or `pay <off> <width>` from the front of `words`,
/// returning the operand and the remaining words.
fn parse_operand<'a>(words: &'a [&'a str]) -> Result<(Operand, &'a [&'a str]), String> {
    match words {
        ["field", name, rest @ ..] => Ok((Operand::Field(parse_field(name)?), rest)),
        ["pay", off, width, rest @ ..] => {
            let off: u16 = off.parse().map_err(|_| format!("bad offset {off}"))?;
            Ok((
                Operand::Pay {
                    off,
                    width: parse_width(width)?,
                },
                rest,
            ))
        }
        _ => Err("expected `field <Name>` or `pay <off> <width>`".to_string()),
    }
}

fn parse_values(words: &[&str]) -> Result<Vec<u64>, String> {
    if words.is_empty() {
        return Err("expected at least one value".to_string());
    }
    words
        .iter()
        .map(|w| w.parse::<u64>().map_err(|_| format!("bad value {w}")))
        .collect()
}

fn operand_key(op: Operand) -> FieldKey {
    match op {
        Operand::Field(f) => FieldKey::Field(f),
        Operand::Pay { off, width } => FieldKey::Pay(off, width),
    }
}

fn parse_spec(text: &str) -> Result<ParsedSpec, String> {
    let mut spec = ParsedSpec::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let words: Vec<&str> = rest.split_whitespace().collect();
        match keyword {
            "name" => spec.info.name = rest.to_string(),
            "signature" => {
                spec.info.signature = match rest {
                    "typesafe" => SpecSignature::TypesafeCompiler,
                    "trusted" => SpecSignature::TrustedVendor,
                    "unsigned" => SpecSignature::Unsigned,
                    other => return Err(err(format!("unknown signature {other}"))),
                }
            }
            "interface" => {
                let (iface, syms) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `interface Name: Sym ...`".into()))?;
                let iface = iface.trim().to_string();
                let symbols: Vec<String> = syms
                    .split_whitespace()
                    .map(|s| format!("{iface}.{s}"))
                    .collect();
                spec.table.insert(iface, symbols);
            }
            "import" => spec.info.imports.push(rest.to_string()),
            "ref" => spec.info.refs.push(rest.to_string()),
            "export" => spec.info.exports.push(rest.to_string()),
            "guard-kind" => spec.guard_kind = Some(parse_kind(rest).map_err(err)?),
            "guard-test" => {
                let (op, tail) = parse_operand(&words).map_err(err)?;
                let test = match tail {
                    ["==", value] => Test::eq(
                        op,
                        value
                            .parse()
                            .map_err(|_| err(format!("bad value {value}")))?,
                    ),
                    ["in", values @ ..] => Test::one_of(op, parse_values(values).map_err(err)?),
                    _ => return Err(err("expected `== <v>` or `in <v>...`".into())),
                };
                spec.guard_tests.push(test);
            }
            "policy" => {
                let (op, tail) = parse_operand(&words).map_err(err)?;
                let values = match tail {
                    ["==", value] => vec![value
                        .parse()
                        .map_err(|_| err(format!("bad value {value}")))?],
                    ["in", values @ ..] => parse_values(values).map_err(err)?,
                    _ => return Err(err("expected `== <v>` or `in <v>...`".into())),
                };
                spec.policy = std::mem::take(&mut spec.policy).require_in(operand_key(op), values);
                spec.has_policy = true;
            }
            other => return Err(err(format!("unknown keyword {other}"))),
        }
    }
    if spec.info.name.is_empty() {
        return Err("spec is missing a `name` line".to_string());
    }
    Ok(spec)
}

fn check_file(path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;

    let mut clean = true;
    println!("== {path} ({}) ==", spec.info.name);

    let report = analyze(&spec.table, &spec.info);
    if report.is_clean() {
        println!("spec: clean ({} import(s))", spec.info.imports.len());
    } else {
        clean = false;
        print!("spec: {report}");
    }

    if !spec.guard_tests.is_empty() || spec.guard_kind.is_some() {
        let kind = spec
            .guard_kind
            .ok_or_else(|| format!("{path}: guard-test without guard-kind"))?;
        let program = conjunction(kind, &spec.guard_tests, Vec::new());
        match verify_with_policy(&program, &spec.policy) {
            Ok(vp) => println!(
                "guard: verified ({} insn(s), worst-case cost {}{})",
                vp.program().insns.len(),
                vp.cost(),
                if spec.has_policy {
                    ", policy proven"
                } else {
                    ""
                }
            ),
            Err(report) => {
                clean = false;
                print!("guard: {report}");
            }
        }
    }
    Ok(clean)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: plexus-verify <spec-file>...");
        return ExitCode::from(2);
    }
    let mut all_clean = true;
    for path in &args {
        match check_file(path) {
            Ok(clean) => all_clean &= clean,
            Err(e) => {
                eprintln!("error: {e}");
                all_clean = false;
            }
        }
    }
    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
