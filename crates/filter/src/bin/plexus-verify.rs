//! `plexus-verify` — command-line linter for extension specs and guards.
//!
//! Reads one or more `.spec` files, checks the declared imports/refs/
//! exports against the interfaces the file declares, and — when the file
//! describes a guard — compiles it and runs the static verifier with the
//! declared policy. With `--explain`, prints what the verifier *derived*:
//! the static worst-case cycle bound, the declared map state against its
//! budget, and any lints with their instruction offsets. With
//! `--lint-all <dir>`, checks every `*.spec` directly in `dir` (no
//! recursion, so a `bad/` subdirectory of deliberately-rejected examples
//! is skipped) and fails if any file rejects **or lints**.
//!
//! Exit codes: `0` all clean, `1` at least one file rejected, `2` usage
//! error, `3` everything verified but at least one lint fired.
//!
//! File format (line-based, `#` comments):
//!
//! ```text
//! name         Video
//! signature    typesafe | trusted | unsigned
//! interface    UDP: PacketRecv Send        # a known interface + symbols
//! import       UDP.PacketRecv
//! ref          UDP.PacketRecv              # a symbol the body references
//! export       Frame
//! map          flows bucket 4096 8 2       # token buckets: cap tokens +per-ms
//! map          hits counter 64             # saturating counters: cap
//! state-budget 65536                       # bytes all maps may occupy
//! guard-kind   UdpRecv
//! guard-test   field UdpDstPort == 7000
//! guard-test   field UdpDstAddr in 167772162 4294967295
//! guard-test   pay 2 w16 == 7000
//! guard-test   field UdpSrcPort take-token 4095 flows   # rate limit per flow
//! guard-test   field UdpSrcPort count 63 hits           # count per flow
//! policy       field UdpDstPort in 7000    # must be provable at accept
//! ```

use std::process::ExitCode;

use plexus_filter::spec::{analyze, InterfaceTable, SpecInfo, SpecSignature};
use plexus_filter::{
    conjunction_stateful, verify_with_policy, EventKind, Field, FieldKey, MapKind, Operand, Policy,
    StateMap, Test, Width,
};

#[derive(Default)]
struct ParsedSpec {
    info: SpecInfo,
    table: InterfaceTable,
    guard_kind: Option<EventKind>,
    guard_tests: Vec<Test>,
    maps: Vec<StateMap>,
    state_budget: u32,
    policy: Policy,
    has_policy: bool,
}

fn parse_field(name: &str) -> Result<Field, String> {
    use Field::*;
    Ok(match name {
        "EthDst" => EthDst,
        "EthSrc" => EthSrc,
        "EthType" => EthType,
        "FrameLen" => FrameLen,
        "IpSrc" => IpSrc,
        "IpDst" => IpDst,
        "IpProto" => IpProto,
        "IpPayloadLen" => IpPayloadLen,
        "UdpSrcAddr" => UdpSrcAddr,
        "UdpDstAddr" => UdpDstAddr,
        "UdpSrcPort" => UdpSrcPort,
        "UdpDstPort" => UdpDstPort,
        "UdpPayloadLen" => UdpPayloadLen,
        "TcpSrcAddr" => TcpSrcAddr,
        "TcpDstAddr" => TcpDstAddr,
        "TcpSrcPort" => TcpSrcPort,
        "TcpDstPort" => TcpDstPort,
        "TcpFlagSyn" => TcpFlagSyn,
        "TcpFlagAck" => TcpFlagAck,
        "TcpPayloadLen" => TcpPayloadLen,
        other => return Err(format!("unknown field {other}")),
    })
}

fn parse_kind(name: &str) -> Result<EventKind, String> {
    Ok(match name {
        "EthRecv" => EventKind::EthRecv,
        "IpRecv" => EventKind::IpRecv,
        "UdpRecv" => EventKind::UdpRecv,
        "TcpRecv" => EventKind::TcpRecv,
        other => return Err(format!("unknown event kind {other}")),
    })
}

fn parse_width(name: &str) -> Result<Width, String> {
    Ok(match name {
        "w8" => Width::W8,
        "w16" => Width::W16,
        "w32" => Width::W32,
        other => return Err(format!("unknown width {other}")),
    })
}

fn parse_num<T: std::str::FromStr>(word: &str, what: &str) -> Result<T, String> {
    word.parse().map_err(|_| format!("bad {what} {word}"))
}

/// Parses `field <Name>` or `pay <off> <width>` from the front of `words`,
/// returning the operand and the remaining words.
fn parse_operand<'a>(words: &'a [&'a str]) -> Result<(Operand, &'a [&'a str]), String> {
    match words {
        ["field", name, rest @ ..] => Ok((Operand::Field(parse_field(name)?), rest)),
        ["pay", off, width, rest @ ..] => Ok((
            Operand::Pay {
                off: parse_num(off, "offset")?,
                width: parse_width(width)?,
            },
            rest,
        )),
        _ => Err("expected `field <Name>` or `pay <off> <width>`".to_string()),
    }
}

fn parse_values(words: &[&str]) -> Result<Vec<u64>, String> {
    if words.is_empty() {
        return Err("expected at least one value".to_string());
    }
    words.iter().map(|w| parse_num(w, "value")).collect()
}

fn operand_key(op: Operand) -> FieldKey {
    match op {
        Operand::Field(f) => FieldKey::Field(f),
        Operand::Pay { off, width } => FieldKey::Pay(off, width),
    }
}

/// Resolves a map name declared by a `map` line to its index.
fn map_id(maps: &[StateMap], name: &str) -> Result<u16, String> {
    maps.iter()
        .position(|m| m.name() == name)
        .map(|i| i as u16)
        .ok_or_else(|| format!("unknown map {name} (declare it with a `map` line first)"))
}

fn parse_spec(text: &str) -> Result<ParsedSpec, String> {
    let mut spec = ParsedSpec::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let words: Vec<&str> = rest.split_whitespace().collect();
        match keyword {
            "name" => spec.info.name = rest.to_string(),
            "signature" => {
                spec.info.signature = match rest {
                    "typesafe" => SpecSignature::TypesafeCompiler,
                    "trusted" => SpecSignature::TrustedVendor,
                    "unsigned" => SpecSignature::Unsigned,
                    other => return Err(err(format!("unknown signature {other}"))),
                }
            }
            "interface" => {
                let (iface, syms) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `interface Name: Sym ...`".into()))?;
                let iface = iface.trim().to_string();
                let symbols: Vec<String> = syms
                    .split_whitespace()
                    .map(|s| format!("{iface}.{s}"))
                    .collect();
                spec.table.insert(iface, symbols);
            }
            "import" => spec.info.imports.push(rest.to_string()),
            "ref" => spec.info.refs.push(rest.to_string()),
            "export" => spec.info.exports.push(rest.to_string()),
            "map" => {
                let (name, kind) = match words.as_slice() {
                    [name, "counter", cap] => (
                        *name,
                        (
                            MapKind::Counter,
                            parse_num::<u32>(cap, "capacity").map_err(err)?,
                        ),
                    ),
                    [name, "bucket", cap, tokens, refill] => (
                        *name,
                        (
                            MapKind::TokenBucket {
                                tokens: parse_num(tokens, "token count").map_err(err)?,
                                refill_per_ms: parse_num(refill, "refill rate").map_err(err)?,
                            },
                            parse_num::<u32>(cap, "capacity").map_err(err)?,
                        ),
                    ),
                    _ => {
                        return Err(err("expected `map <name> counter <cap>` or \
                             `map <name> bucket <cap> <tokens> <refill/ms>`"
                            .into()))
                    }
                };
                spec.maps.push(StateMap::new(name, kind.0, kind.1));
            }
            "state-budget" => spec.state_budget = parse_num(rest, "byte budget").map_err(err)?,
            "guard-kind" => spec.guard_kind = Some(parse_kind(rest).map_err(err)?),
            "guard-test" => {
                let (op, tail) = parse_operand(&words).map_err(err)?;
                let test = match tail {
                    ["==", value] => Test::eq(op, parse_num(value, "value").map_err(err)?),
                    ["in", values @ ..] => Test::one_of(op, parse_values(values).map_err(err)?),
                    ["take-token", mask, map] => Test::TakeToken {
                        op,
                        mask: parse_num(mask, "mask").map_err(err)?,
                        map: map_id(&spec.maps, map).map_err(err)?,
                    },
                    ["count", mask, map] => Test::Count {
                        op,
                        mask: parse_num(mask, "mask").map_err(err)?,
                        map: map_id(&spec.maps, map).map_err(err)?,
                    },
                    _ => {
                        return Err(err(
                            "expected `== <v>`, `in <v>...`, `take-token <mask> <map>`, \
                             or `count <mask> <map>`"
                                .into(),
                        ))
                    }
                };
                spec.guard_tests.push(test);
            }
            "policy" => {
                let (op, tail) = parse_operand(&words).map_err(err)?;
                let values = match tail {
                    ["==", value] => vec![parse_num(value, "value").map_err(err)?],
                    ["in", values @ ..] => parse_values(values).map_err(err)?,
                    _ => return Err(err("expected `== <v>` or `in <v>...`".into())),
                };
                spec.policy = std::mem::take(&mut spec.policy).require_in(operand_key(op), values);
                spec.has_policy = true;
            }
            other => return Err(err(format!("unknown keyword {other}"))),
        }
    }
    if spec.info.name.is_empty() {
        return Err("spec is missing a `name` line".to_string());
    }
    Ok(spec)
}

/// What one file's check amounted to, for the process exit code.
#[derive(Clone, Copy, Default)]
struct Outcome {
    rejected: bool,
    lints: usize,
}

fn check_file(path: &str, explain: bool) -> Result<Outcome, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;

    let mut out = Outcome::default();
    println!("== {path} ({}) ==", spec.info.name);

    let report = analyze(&spec.table, &spec.info);
    if report.is_clean() {
        println!("spec: clean ({} import(s))", spec.info.imports.len());
    } else {
        out.rejected = true;
        print!("spec: {report}");
    }

    if !spec.guard_tests.is_empty() || spec.guard_kind.is_some() {
        let kind = spec
            .guard_kind
            .ok_or_else(|| format!("{path}: guard-test without guard-kind"))?;
        let program = conjunction_stateful(
            kind,
            &spec.guard_tests,
            Vec::new(),
            spec.maps,
            spec.state_budget,
        );
        match verify_with_policy(&program, &spec.policy) {
            Ok(vp) => {
                out.lints = vp.lints().len();
                println!(
                    "guard: verified ({} insn(s), worst-case bound {} cycle(s), {} lint(s){})",
                    vp.program().insns.len(),
                    vp.static_bound(),
                    out.lints,
                    if spec.has_policy {
                        ", policy proven"
                    } else {
                        ""
                    }
                );
                if explain {
                    println!(
                        "explain: static worst-case bound: {} cycle(s)",
                        vp.static_bound()
                    );
                    let prog = vp.program();
                    if prog.maps.is_empty() {
                        println!("explain: state: none declared");
                    } else {
                        println!(
                            "explain: state: {} B of {} B budget",
                            vp.state_bytes(),
                            prog.state_budget
                        );
                        for m in &prog.maps {
                            println!(
                                "explain:   map {}: {}[{}] = {} B",
                                m.name(),
                                m.kind(),
                                m.capacity(),
                                m.state_bytes()
                            );
                        }
                    }
                    if vp.lints().is_empty() {
                        println!("explain: lints: none");
                    } else {
                        for lint in vp.lints() {
                            println!("explain: lint: {lint}");
                        }
                    }
                } else {
                    for lint in vp.lints() {
                        println!("guard: lint: {lint}");
                    }
                }
            }
            Err(report) => {
                out.rejected = true;
                print!("guard: {report}");
            }
        }
    }
    Ok(out)
}

/// `*.spec` files directly inside `dir`, sorted. Deliberately
/// non-recursive: `bad/` holds examples that are *supposed* to reject.
fn specs_in_dir(dir: &str) -> Result<Vec<String>, String> {
    let mut paths: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {dir}: {e}"))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.is_file() && path.extension().is_some_and(|e| e == "spec"))
                .then(|| path.to_string_lossy().into_owned())
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .spec files in {dir}"));
    }
    Ok(paths)
}

fn main() -> ExitCode {
    let mut explain = false;
    let mut lint_all: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => explain = true,
            "--lint-all" => match args.next() {
                Some(dir) => lint_all = Some(dir),
                None => {
                    eprintln!("--lint-all requires a directory");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }
    if let Some(dir) = lint_all {
        match specs_in_dir(&dir) {
            Ok(found) => paths.extend(found),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if paths.is_empty() {
        eprintln!("usage: plexus-verify [--explain] <spec-file>... | --lint-all <dir>");
        return ExitCode::from(2);
    }

    let mut rejected = false;
    let mut lints = 0usize;
    for path in &paths {
        match check_file(path, explain) {
            Ok(out) => {
                rejected |= out.rejected;
                lints += out.lints;
            }
            Err(e) => {
                eprintln!("error: {e}");
                rejected = true;
            }
        }
    }
    if rejected {
        ExitCode::FAILURE
    } else if lints > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateful_spec_parses_and_verifies_with_a_bound() {
        let spec = parse_spec(
            "name         RL\n\
             map          flows bucket 64 8 2\n\
             state-budget 1024\n\
             guard-kind   UdpRecv\n\
             guard-test   field UdpDstPort == 9000\n\
             guard-test   field UdpSrcPort take-token 63 flows\n",
        )
        .unwrap();
        assert_eq!(spec.maps.len(), 1);
        assert_eq!(spec.state_budget, 1024);
        let program = conjunction_stateful(
            spec.guard_kind.unwrap(),
            &spec.guard_tests,
            Vec::new(),
            spec.maps,
            spec.state_budget,
        );
        let vp = verify_with_policy(&program, &Policy::new()).unwrap();
        // Ld+Jne (3) + Ld+And+MTake+Jne (11) + Accept (1).
        assert_eq!(vp.static_bound(), 14);
        assert_eq!(vp.state_bytes(), 1024);
        assert!(vp.lints().is_empty());
    }

    #[test]
    fn count_tests_resolve_maps_by_name() {
        let spec = parse_spec(
            "name         C\n\
             map          a counter 4\n\
             map          b counter 4\n\
             state-budget 64\n\
             guard-kind   UdpRecv\n\
             guard-test   field UdpSrcPort count 3 b\n",
        )
        .unwrap();
        assert!(matches!(spec.guard_tests[0], Test::Count { map: 1, .. }));
    }

    #[test]
    fn take_token_requires_a_declared_map() {
        let err = parse_spec(
            "name        RL\n\
             guard-kind  UdpRecv\n\
             guard-test  field UdpSrcPort take-token 63 flows\n",
        )
        .err()
        .expect("undeclared map must be a parse error");
        assert!(err.contains("unknown map flows"), "got: {err}");
    }

    #[test]
    fn map_lines_reject_malformed_declarations() {
        let err = parse_spec("name X\nmap flows bucket 64\n")
            .err()
            .expect("short map line must be a parse error");
        assert!(err.contains("map <name> bucket"), "got: {err}");
    }
}
