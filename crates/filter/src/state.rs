//! Bounded per-program state maps.
//!
//! A guard may declare a fixed number of small state maps in its program
//! header: per-flow counters and token buckets, indexed by a masked field
//! value. Capacity is fixed at construction — a map can never grow — and
//! the verifier's interval analysis ([`crate::absint`]) proves every index
//! the program can compute lies below the capacity and that the total
//! footprint fits the program's declared byte budget. Admitting a stateful
//! guard at interrupt level therefore cannot admit unbounded kernel state.
//!
//! Like [`crate::ir::PortSet`], a [`StateMap`] handle is shared between
//! the installed program and its manager (`Rc<RefCell<..>>`): the manager
//! can read counters or reset state without reinstalling, and cloning a
//! program shares — never copies — its state.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Hard cap on a single program's total declared map state, in bytes.
/// Large enough for a 4096-slot token-bucket map, small enough that even a
/// malicious extension cannot pin meaningful kernel memory.
pub const MAX_STATE_BYTES: u32 = 64 * 1024;

/// What a state map holds per slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// A saturating per-slot event counter (8 bytes of state per slot).
    Counter,
    /// A token bucket per slot (16 bytes of state per slot: token count
    /// plus last-refill timestamp). Starts full.
    TokenBucket {
        /// Bucket capacity in tokens (also the initial fill).
        tokens: u32,
        /// Refill rate in tokens per simulated millisecond.
        refill_per_ms: u32,
    },
}

impl MapKind {
    /// Bytes of state one slot occupies.
    pub fn slot_bytes(self) -> u32 {
        match self {
            MapKind::Counter => 8,
            MapKind::TokenBucket { .. } => 16,
        }
    }

    /// Stable lowercase name used in diagnostics and spec files.
    pub fn name(self) -> &'static str {
        match self {
            MapKind::Counter => "counter",
            MapKind::TokenBucket { .. } => "bucket",
        }
    }
}

impl fmt::Display for MapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapKind::Counter => write!(f, "counter"),
            MapKind::TokenBucket {
                tokens,
                refill_per_ms,
            } => write!(f, "bucket({tokens} tokens, +{refill_per_ms}/ms)"),
        }
    }
}

/// One slot. Counters use `a`; token buckets use `a` (current tokens) and
/// `b` (timestamp up to which refill has been credited, ns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Slot {
    a: u64,
    b: u64,
}

/// A fixed-capacity state map declared in a program header and addressed
/// by the map instructions (`MBump`/`MLoad`/`MTake`).
///
/// All accessors take the index as the `u64` a register holds and return
/// `None` when it is out of bounds or the operation does not fit the map's
/// kind — the checked evaluator turns `None` into a rejection, and the
/// verifier proves it never happens for verified programs.
#[derive(Clone, Debug)]
pub struct StateMap {
    name: Rc<str>,
    kind: MapKind,
    capacity: u32,
    slots: Rc<RefCell<Vec<Slot>>>,
}

impl StateMap {
    /// Creates a map with `capacity` zeroed (counters) or full (token
    /// bucket) slots.
    pub fn new(name: &str, kind: MapKind, capacity: u32) -> StateMap {
        let init = match kind {
            MapKind::Counter => Slot::default(),
            MapKind::TokenBucket { tokens, .. } => Slot {
                a: u64::from(tokens),
                b: 0,
            },
        };
        StateMap {
            name: name.into(),
            kind,
            capacity,
            slots: Rc::new(RefCell::new(vec![init; capacity as usize])),
        }
    }

    /// The declared name (diagnostics and spec files).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What each slot holds.
    pub fn kind(&self) -> MapKind {
        self.kind
    }

    /// Number of slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Total bytes of state this map pins.
    pub fn state_bytes(&self) -> u32 {
        self.capacity.saturating_mul(self.kind.slot_bytes())
    }

    fn slot_index(&self, idx: u64) -> Option<usize> {
        (idx < u64::from(self.capacity)).then_some(idx as usize)
    }

    /// Reads a slot's primary value: the count of a counter, the current
    /// token balance of a bucket (without refilling).
    pub fn load(&self, idx: u64) -> Option<u64> {
        let i = self.slot_index(idx)?;
        Some(self.slots.borrow()[i].a)
    }

    /// Bumps a counter slot (saturating); returns the new count. `None`
    /// for token-bucket maps or an out-of-bounds index.
    pub fn bump(&self, idx: u64) -> Option<u64> {
        if !matches!(self.kind, MapKind::Counter) {
            return None;
        }
        let i = self.slot_index(idx)?;
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[i];
        slot.a = slot.a.saturating_add(1);
        Some(slot.a)
    }

    /// Refills a token-bucket slot up to `now_ns` and takes one token;
    /// returns whether a token was available. `None` for counter maps or
    /// an out-of-bounds index.
    ///
    /// Refill is credited in whole milliseconds and the refill timestamp
    /// advances by exactly the credited time, so fractional progress is
    /// never lost and the long-run rate is exact.
    pub fn take(&self, idx: u64, now_ns: u64) -> Option<bool> {
        let MapKind::TokenBucket {
            tokens: cap,
            refill_per_ms,
        } = self.kind
        else {
            return None;
        };
        let i = self.slot_index(idx)?;
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[i];
        let elapsed_ms = now_ns.saturating_sub(slot.b) / 1_000_000;
        if elapsed_ms > 0 {
            let refill = elapsed_ms.saturating_mul(u64::from(refill_per_ms));
            slot.a = slot.a.saturating_add(refill).min(u64::from(cap));
            slot.b = slot.b.saturating_add(elapsed_ms.saturating_mul(1_000_000));
        }
        if slot.a > 0 {
            slot.a -= 1;
            Some(true)
        } else {
            Some(false)
        }
    }

    /// Resets every slot to its initial value (zero / full).
    pub fn reset(&self) {
        let init = match self.kind {
            MapKind::Counter => Slot::default(),
            MapKind::TokenBucket { tokens, .. } => Slot {
                a: u64::from(tokens),
                b: 0,
            },
        };
        self.slots.borrow_mut().fill(init);
    }

    /// Snapshot of every slot's primary value, in index order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots.borrow().iter().map(|s| s.a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bump_and_share_state() {
        let m = StateMap::new("flows", MapKind::Counter, 4);
        assert_eq!(m.state_bytes(), 32);
        assert_eq!(m.bump(2), Some(1));
        assert_eq!(m.bump(2), Some(2));
        assert_eq!(m.bump(4), None, "index at capacity is out of bounds");
        assert_eq!(m.take(0, 0), None, "take on a counter map is refused");
        // Clones share the backing slots, PortSet-style.
        let alias = m.clone();
        assert_eq!(alias.load(2), Some(2));
        alias.reset();
        assert_eq!(m.load(2), Some(0));
    }

    #[test]
    fn token_bucket_rate_limits_and_refills() {
        let m = StateMap::new(
            "rl",
            MapKind::TokenBucket {
                tokens: 2,
                refill_per_ms: 1,
            },
            1,
        );
        assert_eq!(m.state_bytes(), 16);
        // Starts full: two takes succeed, the third is refused.
        assert_eq!(m.take(0, 0), Some(true));
        assert_eq!(m.take(0, 0), Some(true));
        assert_eq!(m.take(0, 0), Some(false));
        // One millisecond refills one token; balance caps at `tokens`.
        assert_eq!(m.take(0, 1_000_000), Some(true));
        assert_eq!(m.take(0, 1_000_000), Some(false));
        assert_eq!(m.take(0, 10_000_000), Some(true));
        assert_eq!(m.load(0), Some(1), "refill capped at capacity");
        assert_eq!(m.bump(0), None, "bump on a bucket map is refused");
    }

    #[test]
    fn sub_millisecond_refill_progress_is_not_lost() {
        let m = StateMap::new(
            "rl",
            MapKind::TokenBucket {
                tokens: 1,
                refill_per_ms: 1,
            },
            1,
        );
        assert_eq!(m.take(0, 0), Some(true));
        // 0.6 ms then 0.6 ms: neither step alone credits a token by
        // truncation from the *last refill*, but the timestamp only
        // advances by whole credited milliseconds, so the second call sees
        // 1.2 ms of elapsed credit.
        assert_eq!(m.take(0, 600_000), Some(false));
        assert_eq!(m.take(0, 1_200_000), Some(true));
    }
}
