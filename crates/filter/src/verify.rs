//! The static verifier.
//!
//! `verify` proves, before a guard is installed, that the program:
//!
//! * loads only fields of its own event kind, and payload bytes only
//!   within the static window (`PAY_WINDOW`);
//! * reads only registers that are written on **every** path reaching the
//!   read;
//! * jumps only to in-range (forward) targets, reaches every instruction,
//!   and terminates every path with `Accept`/`Reject`;
//! * stays within the instruction-count and cost budgets (cost is a sound
//!   per-evaluation bound because control flow is forward-only);
//! * and, under a [`Policy`], can only accept packets whose constrained
//!   fields provably lie inside the allowed value sets — the "cannot
//!   snoop" guarantee of §3.1: a guard installed on behalf of an
//!   application must constrain the destination port/address to that
//!   application's own binding.
//!
//! All violations are collected into one [`FilterReport`]; verification
//! never stops at the first error.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::absint::{self, Lint};
use crate::ir::{
    EventKind, Field, FilterProgram, Insn, PortSet, Reg, SetId, Src, Width, MAX_COST, MAX_INSNS,
    NUM_REGS, PAY_WINDOW,
};

/// What a value-range constraint or abstract field refers to: a typed
/// field, or a raw payload load (offset + width).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FieldKey {
    /// A typed event field.
    Field(Field),
    /// A raw payload load at `(offset, width)`.
    Pay(u16, Width),
}

impl fmt::Display for FieldKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKey::Field(field) => write!(f, "{field}"),
            FieldKey::Pay(off, width) => write!(f, "payload[{off}..+{}]", width.bytes()),
        }
    }
}

/// An install-time policy: at every reachable `Accept`, each constrained
/// field must provably lie within its allowed set.
#[derive(Clone, Debug, Default)]
pub struct Policy {
    constraints: Vec<(FieldKey, BTreeSet<u64>)>,
}

impl Policy {
    /// A policy with no constraints (verification only).
    pub fn new() -> Policy {
        Policy::default()
    }

    /// Requires `key` to be provably within `allowed` at every accept.
    pub fn require_in(mut self, key: FieldKey, allowed: impl IntoIterator<Item = u64>) -> Policy {
        self.constraints.push((key, allowed.into_iter().collect()));
        self
    }

    /// Requires `key` to be provably equal to `value` at every accept.
    pub fn require_eq(self, key: FieldKey, value: u64) -> Policy {
        self.require_in(key, [value])
    }

    /// Whether the policy constrains anything.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The program has no instructions.
    EmptyProgram,
    /// The program exceeds [`MAX_INSNS`].
    TooLong {
        /// Actual length.
        len: usize,
        /// The limit.
        max: usize,
    },
    /// Total static cost exceeds [`MAX_COST`].
    CostOverBudget {
        /// Total program cost.
        cost: u32,
        /// The budget.
        max: u32,
    },
    /// A `Ld` of a field belonging to a different event kind.
    FieldKindMismatch {
        /// Instruction index.
        at: usize,
        /// The mistyped field.
        field: Field,
        /// The program's declared kind.
        program_kind: EventKind,
    },
    /// A `LdPay` extending beyond the static payload window.
    OutOfBoundsLoad {
        /// Instruction index.
        at: usize,
        /// Load offset.
        off: u16,
        /// Load width.
        width: Width,
        /// The window size.
        window: u16,
    },
    /// A register index `>= NUM_REGS`.
    BadRegister {
        /// Instruction index.
        at: usize,
        /// The offending register index.
        reg: u8,
    },
    /// A jump whose target lies at or beyond the end of the program.
    JumpOutOfRange {
        /// Instruction index.
        at: usize,
        /// Computed target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// A `JInSet` naming a set the program does not carry.
    UnknownPortSet {
        /// Instruction index.
        at: usize,
        /// The missing set id.
        set: u16,
    },
    /// A register read on some path before any write.
    UndefinedRegister {
        /// Instruction index.
        at: usize,
        /// The register read.
        reg: u8,
    },
    /// An instruction no path can reach.
    Unreachable {
        /// Instruction index.
        at: usize,
    },
    /// A reachable path falls off the end without `Accept`/`Reject`.
    MissingTerminator {
        /// Index of the final instruction the path falls through.
        at: usize,
    },
    /// A reachable `Accept` where a policy-constrained field is not
    /// provably within its allowed set.
    PolicyViolation {
        /// Index of the offending `Accept`.
        at: usize,
        /// The constrained field.
        key: FieldKey,
        /// Values the policy allows.
        allowed: BTreeSet<u64>,
        /// Values the field may hold at this accept (`None` = unbounded).
        proven: Option<BTreeSet<u64>>,
    },
    /// A map instruction naming a map the program does not declare.
    UnknownMap {
        /// Instruction index.
        at: usize,
        /// The missing map id.
        map: u16,
    },
    /// A map operation that does not fit the map's declared kind (e.g.
    /// `MTake` on a counter map).
    MapKindMismatch {
        /// Instruction index.
        at: usize,
        /// The map id.
        map: u16,
        /// The map's declared kind name.
        kind: &'static str,
    },
    /// A map access whose index is not provably below the map's capacity.
    MapIndexOutOfBounds {
        /// Instruction index.
        at: usize,
        /// The map id.
        map: u16,
        /// Largest index the interval analysis admits.
        hi: u64,
        /// The map's declared capacity.
        capacity: u32,
    },
    /// Declared map state exceeding the program's byte budget (or a budget
    /// exceeding the global [`crate::state::MAX_STATE_BYTES`] cap).
    StateOverBudget {
        /// Bytes the maps (or the budget itself) occupy.
        bytes: u32,
        /// The budget they must fit.
        budget: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyProgram => write!(f, "program is empty"),
            VerifyError::TooLong { len, max } => {
                write!(f, "program has {len} instructions (limit {max})")
            }
            VerifyError::CostOverBudget { cost, max } => {
                write!(f, "program cost {cost} exceeds budget {max}")
            }
            VerifyError::FieldKindMismatch {
                at,
                field,
                program_kind,
            } => write!(
                f,
                "insn {at}: field {field} belongs to {} events, program filters {program_kind}",
                field.kind()
            ),
            VerifyError::OutOfBoundsLoad {
                at,
                off,
                width,
                window,
            } => write!(
                f,
                "insn {at}: payload load [{off}..+{}] exceeds {window}-byte window",
                width.bytes()
            ),
            VerifyError::BadRegister { at, reg } => {
                write!(f, "insn {at}: register r{reg} out of range (0..{NUM_REGS})")
            }
            VerifyError::JumpOutOfRange { at, target, len } => {
                write!(
                    f,
                    "insn {at}: jump target {target} outside program (len {len})"
                )
            }
            VerifyError::UnknownPortSet { at, set } => {
                write!(f, "insn {at}: references unknown port set #{set}")
            }
            VerifyError::UndefinedRegister { at, reg } => {
                write!(f, "insn {at}: register r{reg} read before any write")
            }
            VerifyError::Unreachable { at } => write!(f, "insn {at}: unreachable"),
            VerifyError::MissingTerminator { at } => {
                write!(
                    f,
                    "insn {at}: execution can fall off the end of the program"
                )
            }
            VerifyError::PolicyViolation {
                at,
                key,
                allowed,
                proven,
            } => {
                write!(
                    f,
                    "insn {at}: policy violation: {key} must be within {allowed:?}, "
                )?;
                match proven {
                    Some(vals) => write!(f, "but may hold {vals:?}"),
                    None => write!(f, "but is unconstrained"),
                }
            }
            VerifyError::UnknownMap { at, map } => {
                write!(f, "insn {at}: references unknown state map #{map}")
            }
            VerifyError::MapKindMismatch { at, map, kind } => {
                write!(
                    f,
                    "insn {at}: operation does not fit {kind} map #{map} \
                     (bump needs a counter, take needs a bucket)"
                )
            }
            VerifyError::MapIndexOutOfBounds {
                at,
                map,
                hi,
                capacity,
            } => write!(
                f,
                "insn {at}: map #{map} index may reach {hi} but capacity is \
                 {capacity}; mask or range-check the index below the capacity"
            ),
            VerifyError::StateOverBudget { bytes, budget } => write!(
                f,
                "declared map state {bytes} B exceeds budget {budget} B; \
                 shrink map capacities or raise the declared budget"
            ),
        }
    }
}

/// The complete result of a failed verification: every violation found.
#[derive(Clone, Debug, Default)]
pub struct FilterReport {
    /// All violations, in discovery order.
    pub errors: Vec<VerifyError>,
}

impl FilterReport {
    /// Whether verification found no violations.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Whether any error is a [`VerifyError::PolicyViolation`].
    pub fn has_policy_violation(&self) -> bool {
        self.errors
            .iter()
            .any(|e| matches!(e, VerifyError::PolicyViolation { .. }))
    }
}

impl fmt::Display for FilterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "guard verification failed ({} error(s)):",
            self.errors.len()
        )?;
        for e in &self.errors {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FilterReport {}

/// A program that passed verification. Unforgeable: the only way to obtain
/// one is through [`verify`] / [`verify_with_policy`], so holding a
/// `VerifiedProgram` is proof of the verifier's guarantees.
#[derive(Clone, Debug)]
pub struct VerifiedProgram {
    program: FilterProgram,
    cost: u32,
    static_bound: u32,
    state_bytes: u32,
    lints: Vec<Lint>,
}

impl VerifiedProgram {
    /// The underlying program (read-only).
    pub fn program(&self) -> &FilterProgram {
        &self.program
    }

    /// The event kind this guard filters.
    pub fn kind(&self) -> EventKind {
        self.program.kind
    }

    /// The proven worst-case evaluation cost (sum of all instruction
    /// costs; kept for compatibility — [`VerifiedProgram::static_bound`]
    /// is the tighter per-evaluation bound).
    pub fn cost(&self) -> u32 {
        self.cost
    }

    /// The static worst-case cycle bound: no evaluation of this program
    /// on any packet spends more cycles than this ([`crate::absint`]'s
    /// longest feasible path). The dispatcher admits interrupt-level
    /// installs against this number, and `eval_metered` never reports
    /// more.
    pub fn static_bound(&self) -> u32 {
        self.static_bound
    }

    /// Total bytes of declared map state, proven within the program's
    /// budget.
    pub fn state_bytes(&self) -> u32 {
        self.state_bytes
    }

    /// Advisory lints found during verification (the program is still
    /// valid).
    pub fn lints(&self) -> &[Lint] {
        &self.lints
    }
}

/// Verifies `program` with no policy constraints.
pub fn verify(program: &FilterProgram) -> Result<VerifiedProgram, FilterReport> {
    verify_with_policy(program, &Policy::new())
}

/// Verifies `program`, additionally proving `policy` at every accept.
pub fn verify_with_policy(
    program: &FilterProgram,
    policy: &Policy,
) -> Result<VerifiedProgram, FilterReport> {
    let mut report = FilterReport::default();
    let len = program.insns.len();

    if len == 0 {
        report.errors.push(VerifyError::EmptyProgram);
        return Err(report);
    }
    if len > MAX_INSNS {
        report.errors.push(VerifyError::TooLong {
            len,
            max: MAX_INSNS,
        });
    }
    let cost = program.total_cost();
    if cost > MAX_COST {
        report.errors.push(VerifyError::CostOverBudget {
            cost,
            max: MAX_COST,
        });
    }

    let structural_ok = check_structure(program, &mut report);
    let mut abs = absint::Analysis::default();
    if structural_ok {
        analyze(program, policy, &mut report);
        // Interval pass: static cycle bound, bounded-state proofs, lints.
        abs = absint::analyze(program);
        report.errors.append(&mut abs.errors);
    }

    if report.is_clean() {
        Ok(VerifiedProgram {
            program: program.clone(),
            cost,
            static_bound: abs.bound,
            state_bytes: abs.state_bytes,
            lints: abs.lints,
        })
    } else {
        Err(report)
    }
}

/// Per-instruction well-formedness: register indices, field kinds, payload
/// bounds, jump ranges, set ids. Returns whether the program is
/// structurally sound enough for dataflow analysis.
fn check_structure(program: &FilterProgram, report: &mut FilterReport) -> bool {
    let len = program.insns.len();
    let before = report.errors.len();

    let check_reg = |at: usize, r: Reg, report: &mut FilterReport| {
        if (r.0 as usize) >= NUM_REGS {
            report
                .errors
                .push(VerifyError::BadRegister { at, reg: r.0 });
        }
    };
    let check_src = |at: usize, s: Src, report: &mut FilterReport| {
        if let Src::Reg(r) = s {
            if (r.0 as usize) >= NUM_REGS {
                report
                    .errors
                    .push(VerifyError::BadRegister { at, reg: r.0 });
            }
        }
    };
    let check_jump = |at: usize, off: u16, report: &mut FilterReport| {
        let target = at + 1 + off as usize;
        if target >= len {
            report
                .errors
                .push(VerifyError::JumpOutOfRange { at, target, len });
        }
    };

    for (at, insn) in program.insns.iter().enumerate() {
        match insn {
            Insn::Ld { dst, field } => {
                check_reg(at, *dst, report);
                if field.kind() != program.kind {
                    report.errors.push(VerifyError::FieldKindMismatch {
                        at,
                        field: *field,
                        program_kind: program.kind,
                    });
                }
            }
            Insn::LdImm { dst, .. } => check_reg(at, *dst, report),
            Insn::LdPay { dst, off, width } => {
                check_reg(at, *dst, report);
                if off
                    .checked_add(width.bytes())
                    .is_none_or(|end| end > PAY_WINDOW)
                {
                    report.errors.push(VerifyError::OutOfBoundsLoad {
                        at,
                        off: *off,
                        width: *width,
                        window: PAY_WINDOW,
                    });
                }
            }
            Insn::And { dst, src } | Insn::Or { dst, src } => {
                check_reg(at, *dst, report);
                check_src(at, *src, report);
            }
            Insn::Jeq { a, b, off }
            | Insn::Jne { a, b, off }
            | Insn::Jlt { a, b, off }
            | Insn::Jgt { a, b, off } => {
                check_reg(at, *a, report);
                check_src(at, *b, report);
                check_jump(at, *off, report);
            }
            Insn::JInSet { a, set, off } => {
                check_reg(at, *a, report);
                if (*set as usize) >= program.sets.len() {
                    report
                        .errors
                        .push(VerifyError::UnknownPortSet { at, set: *set });
                }
                check_jump(at, *off, report);
            }
            Insn::Ja { off } => check_jump(at, *off, report),
            Insn::MBump { dst, map, idx }
            | Insn::MLoad { dst, map, idx }
            | Insn::MTake { dst, map, idx } => {
                check_reg(at, *dst, report);
                check_reg(at, *idx, report);
                if (*map as usize) >= program.maps.len() {
                    report
                        .errors
                        .push(VerifyError::UnknownMap { at, map: *map });
                }
            }
            Insn::Accept | Insn::Reject => {}
        }
    }

    report.errors.len() == before
}

/// Abstract value of a register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegVal {
    /// Never written on some path.
    Undef,
    /// A known constant.
    Const(u64),
    /// Holds the current value of a packet field.
    Field(FieldKey),
    /// Anything.
    Unknown,
}

/// What a field's value may be along a path.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ValSet {
    /// Unconstrained.
    Top,
    /// Provably one of these values.
    In(BTreeSet<u64>),
}

/// Abstract state at one program point.
#[derive(Clone, Debug, PartialEq, Eq)]
struct State {
    regs: [RegVal; NUM_REGS],
    fields: BTreeMap<FieldKey, ValSet>,
    /// Facts of the form "field ∉ set" (in `JInSet`'s u16-truncated
    /// membership sense), learned on the fall-through edge of `JInSet`.
    /// Set contents are dynamic, so the fact names the set rather than its
    /// values; the dispatcher re-checks membership live at dispatch time.
    notin: BTreeMap<FieldKey, BTreeSet<SetId>>,
}

impl State {
    fn entry() -> State {
        State {
            regs: [RegVal::Undef; NUM_REGS],
            fields: BTreeMap::new(),
            notin: BTreeMap::new(),
        }
    }

    fn field_set(&self, key: FieldKey) -> ValSet {
        self.fields.get(&key).cloned().unwrap_or(ValSet::Top)
    }

    /// Pointwise join with another state (set union / loss of precision).
    fn join(&mut self, other: &State) {
        for (mine, theirs) in self.regs.iter_mut().zip(other.regs.iter()) {
            *mine = join_reg(*mine, *theirs);
        }
        let keys: Vec<FieldKey> = self.fields.keys().copied().collect();
        for key in keys {
            let joined = match (self.field_set(key), other.field_set(key)) {
                (ValSet::In(a), ValSet::In(b)) => ValSet::In(a.union(&b).copied().collect()),
                _ => ValSet::Top,
            };
            match joined {
                ValSet::Top => {
                    self.fields.remove(&key);
                }
                s => {
                    self.fields.insert(key, s);
                }
            }
        }
        // A non-membership fact survives a join only if both paths prove it.
        self.notin.retain(|key, sets| {
            match other.notin.get(key) {
                Some(theirs) => sets.retain(|s| theirs.contains(s)),
                None => sets.clear(),
            }
            !sets.is_empty()
        });
    }
}

fn join_reg(a: RegVal, b: RegVal) -> RegVal {
    match (a, b) {
        (a, b) if a == b => a,
        (RegVal::Undef, _) | (_, RegVal::Undef) => RegVal::Undef,
        _ => RegVal::Unknown,
    }
}

/// Refines `state` with the knowledge `key ∈ keep` ∩ current set. Returns
/// `false` if the refined set is empty (the edge is infeasible).
fn refine_in(state: &mut State, key: FieldKey, keep: &BTreeSet<u64>) -> bool {
    let refined = match state.field_set(key) {
        ValSet::Top => keep.clone(),
        ValSet::In(cur) => cur.intersection(keep).copied().collect(),
    };
    if refined.is_empty() {
        return false;
    }
    state.fields.insert(key, ValSet::In(refined));
    true
}

/// Refines `state` with the knowledge `key != val`. Returns `false` if the
/// refined set is empty.
fn refine_not_eq(state: &mut State, key: FieldKey, val: u64) -> bool {
    if let ValSet::In(mut cur) = state.field_set(key) {
        cur.remove(&val);
        if cur.is_empty() {
            return false;
        }
        state.fields.insert(key, ValSet::In(cur));
    }
    true
}

/// Refines with `pred(value)` over an `In` set. `Top` stays `Top`.
fn refine_filter(state: &mut State, key: FieldKey, pred: impl Fn(u64) -> bool) -> bool {
    if let ValSet::In(cur) = state.field_set(key) {
        let kept: BTreeSet<u64> = cur.into_iter().filter(|v| pred(*v)).collect();
        if kept.is_empty() {
            return false;
        }
        state.fields.insert(key, ValSet::In(kept));
    }
    true
}

/// Single forward dataflow pass (sound because all edges go forward: by the
/// time `pc` is visited, every predecessor has already contributed its
/// state). Detects undefined reads, unreachable instructions, missing
/// terminators, and policy violations. Returns the abstract state at each
/// reachable `Accept` (the raw material for [`DemuxKey::extract`]).
fn analyze(program: &FilterProgram, policy: &Policy, report: &mut FilterReport) -> Vec<State> {
    let len = program.insns.len();
    let mut states: Vec<Option<State>> = vec![None; len];
    states[0] = Some(State::entry());
    let mut accepts: Vec<State> = Vec::new();

    let merge = |slot: &mut Option<State>, incoming: State| match slot {
        None => *slot = Some(incoming),
        Some(existing) => existing.join(&incoming),
    };

    // Flows `incoming` into the fall-through successor of `at`; falling
    // off the end of the program is a missing terminator.
    macro_rules! fall_through {
        ($at:expr, $incoming:expr) => {
            if $at + 1 < len {
                merge(&mut states[$at + 1], $incoming);
            } else {
                report
                    .errors
                    .push(VerifyError::MissingTerminator { at: $at });
            }
        };
    }

    for at in 0..len {
        let Some(state) = states[at].clone() else {
            report.errors.push(VerifyError::Unreachable { at });
            continue;
        };

        let read_reg = |r: Reg, state: &State, report: &mut FilterReport| -> RegVal {
            let v = state.regs[r.0 as usize];
            if v == RegVal::Undef {
                report
                    .errors
                    .push(VerifyError::UndefinedRegister { at, reg: r.0 });
                return RegVal::Unknown;
            }
            v
        };
        let read_src = |s: Src, state: &State, report: &mut FilterReport| -> RegVal {
            match s {
                Src::Imm(v) => RegVal::Const(v),
                Src::Reg(r) => read_reg(r, state, report),
            }
        };

        match &program.insns[at] {
            Insn::Ld { dst, field } => {
                let mut next = state;
                next.regs[dst.0 as usize] = RegVal::Field(FieldKey::Field(*field));
                fall_through!(at, next);
            }
            Insn::LdImm { dst, imm } => {
                let mut next = state;
                next.regs[dst.0 as usize] = RegVal::Const(*imm);
                fall_through!(at, next);
            }
            Insn::LdPay { dst, off, width } => {
                let mut next = state;
                next.regs[dst.0 as usize] = RegVal::Field(FieldKey::Pay(*off, *width));
                fall_through!(at, next);
            }
            Insn::And { dst, src } | Insn::Or { dst, src } => {
                let a = read_reg(*dst, &state, report);
                let b = read_src(*src, &state, report);
                let is_and = matches!(&program.insns[at], Insn::And { .. });
                let mut next = state;
                next.regs[dst.0 as usize] = match (a, b) {
                    (RegVal::Const(x), RegVal::Const(y)) => {
                        RegVal::Const(if is_and { x & y } else { x | y })
                    }
                    _ => RegVal::Unknown,
                };
                fall_through!(at, next);
            }
            Insn::Jeq { a, b, off } | Insn::Jne { a, b, off } => {
                let av = read_reg(*a, &state, report);
                let bv = read_src(*b, &state, report);
                let eq_jumps = matches!(&program.insns[at], Insn::Jeq { .. });
                let target = at + 1 + *off as usize;

                // When comparing a field against a constant, refine the
                // field's value set along each edge.
                let (field, konst) = match (av, bv) {
                    (RegVal::Field(k), RegVal::Const(c)) | (RegVal::Const(c), RegVal::Field(k)) => {
                        (Some(k), c)
                    }
                    _ => (None, 0),
                };

                let mut taken = state.clone();
                let mut fall = state;
                let (taken_ok, fall_ok) = match field {
                    Some(key) => {
                        let eq_set = BTreeSet::from([konst]);
                        if eq_jumps {
                            (
                                refine_in(&mut taken, key, &eq_set),
                                refine_not_eq(&mut fall, key, konst),
                            )
                        } else {
                            (
                                refine_not_eq(&mut taken, key, konst),
                                refine_in(&mut fall, key, &eq_set),
                            )
                        }
                    }
                    None => (true, true),
                };
                if taken_ok {
                    merge(&mut states[target], taken);
                }
                if fall_ok {
                    fall_through!(at, fall);
                }
            }
            Insn::Jlt { a, b, off } | Insn::Jgt { a, b, off } => {
                let av = read_reg(*a, &state, report);
                let bv = read_src(*b, &state, report);
                let lt_jumps = matches!(&program.insns[at], Insn::Jlt { .. });
                let target = at + 1 + *off as usize;

                let (field, konst) = match (av, bv) {
                    (RegVal::Field(k), RegVal::Const(c)) => (Some(k), c),
                    _ => (None, 0),
                };
                let mut taken = state.clone();
                let mut fall = state;
                let (taken_ok, fall_ok) = match field {
                    Some(key) => {
                        if lt_jumps {
                            (
                                refine_filter(&mut taken, key, |v| v < konst),
                                refine_filter(&mut fall, key, |v| v >= konst),
                            )
                        } else {
                            (
                                refine_filter(&mut taken, key, |v| v > konst),
                                refine_filter(&mut fall, key, |v| v <= konst),
                            )
                        }
                    }
                    None => (true, true),
                };
                if taken_ok {
                    merge(&mut states[target], taken);
                }
                if fall_ok {
                    fall_through!(at, fall);
                }
            }
            Insn::JInSet { a, set, off } => {
                let av = read_reg(*a, &state, report);
                let target = at + 1 + *off as usize;
                // Set contents are dynamic, so the taken (member) edge
                // learns nothing static. The fall-through edge learns
                // "tested value ∉ set"; when the register holds a packet
                // field, record that as a named-set fact.
                merge(&mut states[target], state.clone());
                let mut fall = state;
                if let RegVal::Field(key) = av {
                    fall.notin.entry(key).or_default().insert(*set);
                }
                fall_through!(at, fall);
            }
            Insn::Ja { off } => {
                let target = at + 1 + *off as usize;
                merge(&mut states[target], state);
            }
            Insn::MBump { dst, idx, .. }
            | Insn::MLoad { dst, idx, .. }
            | Insn::MTake { dst, idx, .. } => {
                // The index must be written on every path; the result is
                // runtime state, opaque to the value-set analysis (the
                // interval pass models it more precisely).
                read_reg(*idx, &state, report);
                let mut next = state;
                next.regs[dst.0 as usize] = RegVal::Unknown;
                fall_through!(at, next);
            }
            Insn::Accept => {
                for (key, allowed) in &policy.constraints {
                    let ok = match state.field_set(*key) {
                        ValSet::In(vals) => vals.is_subset(allowed),
                        ValSet::Top => false,
                    };
                    if !ok {
                        report.errors.push(VerifyError::PolicyViolation {
                            at,
                            key: *key,
                            allowed: allowed.clone(),
                            proven: match state.field_set(*key) {
                                ValSet::In(vals) => Some(vals),
                                ValSet::Top => None,
                            },
                        });
                    }
                }
                accepts.push(state);
            }
            Insn::Reject => {}
        }
    }
    accepts
}

/// The declared demultiplexing key schema for each event kind: the ordered
/// fields a dispatcher may hash on. Chosen to match what the stack's guards
/// actually test — ethertype at the link layer, (protocol, transport
/// destination port) at the IP layer, destination port for UDP, and the
/// connection 3-tuple for TCP.
///
/// `IpRecv` keys the transport destination port as a *payload* load
/// (`Pay(2, W16)`) because that is how IP-level guards address it: the
/// port sits 2 bytes into the IP payload for both UDP and TCP.
pub fn key_schema(kind: EventKind) -> &'static [FieldKey] {
    match kind {
        EventKind::EthRecv => &[FieldKey::Field(Field::EthType)],
        EventKind::IpRecv => &[
            FieldKey::Field(Field::IpProto),
            FieldKey::Pay(2, Width::W16),
        ],
        EventKind::UdpRecv => &[FieldKey::Field(Field::UdpDstPort)],
        EventKind::TcpRecv => &[
            FieldKey::Field(Field::TcpDstPort),
            FieldKey::Field(Field::TcpSrcAddr),
            FieldKey::Field(Field::TcpSrcPort),
        ],
    }
}

/// Cap on the number of hash keys one guard may occupy in the demux index
/// (the cross product of its per-field value sets). Guards over the cap
/// have their widest field demoted to [`FieldSpec::Any`] — still sound,
/// just less selective.
pub const MAX_ENUMERATED_KEYS: usize = 64;

/// What a guard provably requires of one schema field at every accept.
#[derive(Clone, Debug)]
pub enum FieldSpec {
    /// No static constraint: the guard may accept any value here.
    Any,
    /// The guard only accepts packets whose field value is in this set.
    In(BTreeSet<u64>),
    /// The guard only accepts packets whose field value (as a u16 port) is
    /// in none of these shared sets — checked live, since set contents are
    /// dynamic.
    NotIn(Vec<PortSet>),
}

/// A guard's extracted demux key: one [`FieldSpec`] per field of its event
/// kind's [`key_schema`], in schema order.
///
/// Soundness invariant: for every packet the guard accepts, each `In`
/// field's observed value lies in the spec's set, and each `NotIn` field's
/// value is a member of none of the named sets *at the time of dispatch*.
/// The converse need not hold — a key match does not imply acceptance —
/// so an index built from key specs can only *narrow* the candidate set,
/// never admit a handler whose guard would reject.
#[derive(Clone, Debug)]
pub struct KeySpec {
    kind: EventKind,
    fields: Vec<FieldSpec>,
}

impl KeySpec {
    /// The event kind whose schema this key is over.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// Per-field specs, aligned with `key_schema(self.kind())`.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Whether any field is statically enumerable (`In`) — the
    /// precondition for the guard to occupy hash buckets at all.
    pub fn is_indexable(&self) -> bool {
        self.fields.iter().any(|f| matches!(f, FieldSpec::In(_)))
    }
}

/// The demux key extraction pass (see [`KeySpec`]).
pub struct DemuxKey;

impl DemuxKey {
    /// Extracts a demux key from a verified guard, or `None` when the
    /// analysis cannot bound any schema field (the dispatcher then keeps
    /// the guard on its linear-scan path).
    ///
    /// Per schema field, across the abstract states at every reachable
    /// `Accept`:
    ///
    /// * if every accept proves `field ∈ S_i`, the spec is
    ///   `In(S_1 ∪ ... ∪ S_n)` — a sound over-approximation;
    /// * otherwise, if every accept proves `field ∉ set` for some common
    ///   shared sets, the spec is `NotIn` of those sets;
    /// * otherwise `Any`.
    ///
    /// A guard with no `In` field yields `None`: it would hash nowhere.
    pub fn extract(vp: &VerifiedProgram) -> Option<KeySpec> {
        let program = vp.program();
        let mut report = FilterReport::default();
        let accepts = analyze(program, &Policy::new(), &mut report);
        debug_assert!(report.is_clean(), "verified program re-analysis failed");
        if accepts.is_empty() {
            // The guard provably never accepts; nothing to index.
            return None;
        }

        let mut fields: Vec<FieldSpec> = Vec::new();
        for key in key_schema(program.kind) {
            let mut union: Option<BTreeSet<u64>> = Some(BTreeSet::new());
            for st in &accepts {
                match (&mut union, st.field_set(*key)) {
                    (Some(u), ValSet::In(vals)) => u.extend(vals),
                    _ => union = None,
                }
            }
            if let Some(vals) = union {
                fields.push(FieldSpec::In(vals));
                continue;
            }

            let mut common: Option<BTreeSet<SetId>> = None;
            for st in &accepts {
                let theirs = st.notin.get(key).cloned().unwrap_or_default();
                common = Some(match common {
                    None => theirs,
                    Some(cur) => cur.intersection(&theirs).copied().collect(),
                });
            }
            let sets: Vec<PortSet> = common
                .unwrap_or_default()
                .iter()
                .filter_map(|id| program.sets.get(*id as usize).cloned())
                .collect();
            if sets.is_empty() {
                fields.push(FieldSpec::Any);
            } else {
                fields.push(FieldSpec::NotIn(sets));
            }
        }

        // Bound the guard's bucket footprint: while the cross product of
        // `In` sizes exceeds the cap, widen the largest `In` to `Any`.
        loop {
            let product = fields
                .iter()
                .map(|f| match f {
                    FieldSpec::In(v) => v.len(),
                    _ => 1,
                })
                .try_fold(1usize, usize::checked_mul)
                .unwrap_or(usize::MAX);
            if product <= MAX_ENUMERATED_KEYS {
                break;
            }
            let widest = fields
                .iter()
                .enumerate()
                .filter_map(|(i, f)| match f {
                    FieldSpec::In(v) => Some((v.len(), i)),
                    _ => None,
                })
                .max()?;
            fields[widest.1] = FieldSpec::Any;
        }

        let spec = KeySpec {
            kind: program.kind,
            fields,
        };
        spec.is_indexable().then_some(spec)
    }
}
