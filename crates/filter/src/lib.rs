//! # plexus-filter — verified guard IR
//!
//! SPIN's dispatcher lets extensions attach *guards* — packet-filter
//! predicates — to protocol events. The paper's §3.1 safety story
//! ("applications cannot snoop on other applications' packets, and cannot
//! source spoofed packets") rests on protocol managers building those
//! guards on the application's behalf. With opaque closures the manager
//! must be trusted to have built the right predicate; nothing checks it.
//!
//! This crate makes guards *data*: a BPF-style straight-line program over
//! typed packet fields ([`ir::FilterProgram`]), plus a static verifier
//! ([`verify::verify_with_policy`]) that proves, at install time:
//!
//! * **memory safety** — field loads are typed against the event kind and
//!   payload loads stay inside a static window;
//! * **termination and bounded cost** — control flow is forward-only and
//!   total cost is below a budget, so a guard is safe to run at interrupt
//!   level;
//! * **no dead code, no undefined reads** — every instruction is
//!   reachable, every path terminates, every register read is preceded by
//!   a write on all paths;
//! * **policy compliance** — conservative value-range analysis proves
//!   that every accepting path constrains the destination port/address to
//!   the caller's own binding: the anti-snoop guarantee, checked instead
//!   of assumed.
//!
//! The same multi-error reporting discipline extends to extension specs:
//! [`spec::analyze`] computes a spec's import closure against an
//! interface table and reports unresolved, unused, duplicate, and
//! undeclared symbols all at once. The `plexus-verify` binary exposes
//! both passes as a command-line linter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod builder;
pub mod cost;
pub mod eval;
pub mod ir;
pub mod spec;
pub mod state;
pub mod verify;

pub use absint::{Interval, Lint};
pub use builder::{conjunction, conjunction_stateful, Operand, Test};
pub use cost::{insn_cycles, structural_bound};
pub use eval::{eval, eval_at, eval_metered, eval_unchecked, read_field_key, Packet};
pub use ir::{
    EventKind, Field, FilterProgram, Insn, MapId, PortSet, Reg, SetId, Src, Width, MAX_COST,
    MAX_INSNS, NUM_REGS, PAY_WINDOW,
};
pub use state::{MapKind, StateMap, MAX_STATE_BYTES};
pub use verify::{
    key_schema, verify, verify_with_policy, DemuxKey, FieldKey, FieldSpec, FilterReport, KeySpec,
    Policy, VerifiedProgram, VerifyError, MAX_ENUMERATED_KEYS,
};

#[cfg(test)]
mod tests {
    use super::ir::{MAX_COST, MAX_INSNS};
    use super::*;

    /// A minimal UdpRecv-shaped packet for tests.
    struct TestUdp {
        src: u64,
        dst: u64,
        src_port: u64,
        dst_port: u64,
        payload: Vec<u8>,
    }

    impl Packet for TestUdp {
        fn kind(&self) -> EventKind {
            EventKind::UdpRecv
        }

        fn field(&self, field: Field) -> Option<u64> {
            match field {
                Field::UdpSrcAddr => Some(self.src),
                Field::UdpDstAddr => Some(self.dst),
                Field::UdpSrcPort => Some(self.src_port),
                Field::UdpDstPort => Some(self.dst_port),
                Field::UdpPayloadLen => Some(self.payload.len() as u64),
                _ => None,
            }
        }

        fn head(&self) -> &[u8] {
            &self.payload
        }
    }

    fn udp_to(dst_port: u64) -> TestUdp {
        TestUdp {
            src: 0x0A00_0001,
            dst: 0x0A00_0002,
            src_port: 9999,
            dst_port,
            payload: vec![0u8; 32],
        }
    }

    fn port_guard(port: u64) -> FilterProgram {
        conjunction(
            EventKind::UdpRecv,
            &[Test::eq(Operand::Field(Field::UdpDstPort), port)],
            Vec::new(),
        )
    }

    #[test]
    fn accepts_simple_port_guard() {
        let vp = verify(&port_guard(53)).expect("clean program verifies");
        assert!(eval(&vp, &udp_to(53)));
        assert!(!eval(&vp, &udp_to(54)));
    }

    // Acceptance case 1: an out-of-bounds field load is rejected.
    #[test]
    fn rejects_out_of_bounds_payload_load() {
        let prog = FilterProgram::new(
            EventKind::UdpRecv,
            vec![
                Insn::LdPay {
                    dst: Reg(0),
                    off: ir::PAY_WINDOW, // one past the window
                    width: Width::W16,
                },
                Insn::Accept,
            ],
        );
        let report = verify(&prog).expect_err("OOB load must be rejected");
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, VerifyError::OutOfBoundsLoad { at: 0, .. })),
            "expected OutOfBoundsLoad in {report}"
        );
    }

    // Acceptance case 2: a program over the cost budget is rejected.
    #[test]
    fn rejects_over_budget_program() {
        // MAX_INSNS-1 payload loads (cost 2 each) blow the cost budget
        // while staying under the instruction-count limit, then blow the
        // length limit too with a longer variant.
        let mut insns: Vec<Insn> = (0..(MAX_INSNS - 1))
            .map(|_| Insn::LdPay {
                dst: Reg(0),
                off: 0,
                width: Width::W8,
            })
            .collect();
        insns.push(Insn::Accept);
        let prog = FilterProgram::new(EventKind::UdpRecv, insns);
        assert!(prog.total_cost() > MAX_COST);
        let report = verify(&prog).expect_err("over-budget program must be rejected");
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, VerifyError::CostOverBudget { .. })),
            "expected CostOverBudget in {report}"
        );

        let long = FilterProgram::new(
            EventKind::UdpRecv,
            std::iter::repeat_n(
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                MAX_INSNS + 4,
            )
            .chain([Insn::Accept])
            .collect(),
        );
        let report = verify(&long).expect_err("over-long program must be rejected");
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::TooLong { .. })));
    }

    // Acceptance case 3: a UDP app guard matching a port other than the
    // caller's binding violates the anti-snoop policy.
    #[test]
    fn rejects_guard_snooping_on_foreign_port() {
        let bound_port = 4000u64;
        let policy = Policy::new().require_eq(FieldKey::Field(Field::UdpDstPort), bound_port);

        // The honest guard (matches the caller's own binding) passes.
        verify_with_policy(&port_guard(bound_port), &policy)
            .expect("guard matching own binding verifies");

        // A guard matching someone else's port is rejected with a
        // PolicyViolation naming the offending accept.
        let report = verify_with_policy(&port_guard(4001), &policy)
            .expect_err("snooping guard must be rejected");
        assert!(
            report.has_policy_violation(),
            "expected PolicyViolation in {report}"
        );

        // So is a guard that never constrains the port at all.
        let wide_open = FilterProgram::new(EventKind::UdpRecv, vec![Insn::Accept]);
        let report = verify_with_policy(&wide_open, &policy)
            .expect_err("unconstrained guard must be rejected");
        assert!(report.has_policy_violation());
    }

    #[test]
    fn reports_every_error_not_just_the_first() {
        // One program with three distinct defects: a mistyped field, an
        // OOB payload load, and a bad register.
        let prog = FilterProgram::new(
            EventKind::UdpRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::TcpDstPort, // wrong kind
                },
                Insn::LdPay {
                    dst: Reg(0),
                    off: 1000, // out of window
                    width: Width::W32,
                },
                Insn::LdImm {
                    dst: Reg(200), // no such register
                    imm: 0,
                },
                Insn::Accept,
            ],
        );
        let report = verify(&prog).expect_err("defective program must be rejected");
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::FieldKindMismatch { .. })));
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::OutOfBoundsLoad { .. })));
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::BadRegister { .. })));
        assert!(report.errors.len() >= 3);
    }

    #[test]
    fn rejects_unreachable_and_undefined() {
        // insn 1 is skipped by the jump; insn 3 reads an undefined reg on
        // the path where insn 2 never wrote it.
        let prog = FilterProgram::new(
            EventKind::UdpRecv,
            vec![
                Insn::Ja { off: 1 },
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 7,
                }, // unreachable
                Insn::Jeq {
                    a: Reg(1), // read before any write on the live path
                    b: Src::Imm(7),
                    off: 0,
                },
                Insn::Accept,
            ],
        );
        let report = verify(&prog).expect_err("must be rejected");
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::Unreachable { at: 1 })));
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::UndefinedRegister { at: 2, reg: 1 })));
    }

    #[test]
    fn rejects_missing_terminator_and_bad_jump() {
        let falls_off = FilterProgram::new(
            EventKind::UdpRecv,
            vec![Insn::LdImm {
                dst: Reg(0),
                imm: 1,
            }],
        );
        let report = verify(&falls_off).expect_err("must be rejected");
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::MissingTerminator { at: 0 })));

        let wild_jump =
            FilterProgram::new(EventKind::UdpRecv, vec![Insn::Ja { off: 40 }, Insn::Accept]);
        let report = verify(&wild_jump).expect_err("must be rejected");
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::JumpOutOfRange { at: 0, .. })));
    }

    #[test]
    fn empty_program_is_rejected() {
        let report = verify(&FilterProgram::new(EventKind::UdpRecv, Vec::new()))
            .expect_err("empty program must be rejected");
        assert_eq!(report.errors, vec![VerifyError::EmptyProgram]);
    }

    #[test]
    fn port_set_membership_is_live() {
        let special = PortSet::new();
        let prog = conjunction(
            EventKind::IpRecv,
            &[
                Test::eq(Operand::Field(Field::IpProto), 17),
                Test::NotInSet {
                    op: Operand::Pay {
                        off: 2,
                        width: Width::W16,
                    },
                    set: 0,
                },
            ],
            vec![special.clone()],
        );
        let vp = verify(&prog).expect("verifies");

        struct Ip {
            payload: Vec<u8>,
        }
        impl Packet for Ip {
            fn kind(&self) -> EventKind {
                EventKind::IpRecv
            }
            fn field(&self, field: Field) -> Option<u64> {
                match field {
                    Field::IpProto => Some(17),
                    Field::IpSrc | Field::IpDst => Some(0),
                    Field::IpPayloadLen => Some(self.payload.len() as u64),
                    _ => None,
                }
            }
            fn head(&self) -> &[u8] {
                &self.payload
            }
        }

        // dst port 53 lives at payload bytes 2..4
        let pkt = Ip {
            payload: vec![0, 0, 0, 53, 0, 0, 0, 0],
        };
        assert!(eval(&vp, &pkt), "port not special yet");
        special.insert(53);
        assert!(!eval(&vp, &pkt), "set updates are seen without reinstall");
        special.remove(53);
        assert!(eval(&vp, &pkt));
    }

    #[test]
    fn multi_value_test_joins_at_merge_point() {
        let policy = Policy::new().require_in(
            FieldKey::Field(Field::UdpDstAddr),
            [0x0A00_0002u64, 0xFFFF_FFFF],
        );
        let prog = conjunction(
            EventKind::UdpRecv,
            &[
                Test::one_of(
                    Operand::Field(Field::UdpDstAddr),
                    [0x0A00_0002u64, 0xFFFF_FFFF],
                ),
                Test::eq(Operand::Field(Field::UdpDstPort), 53),
            ],
            Vec::new(),
        );
        verify_with_policy(&prog, &policy).expect("join keeps both constants");

        // But a third address sneaks past the policy -> rejected.
        let wide = conjunction(
            EventKind::UdpRecv,
            &[Test::one_of(
                Operand::Field(Field::UdpDstAddr),
                [0x0A00_0002u64, 0xFFFF_FFFF, 0x0A00_0099],
            )],
            Vec::new(),
        );
        let report = verify_with_policy(&wide, &policy).expect_err("must be rejected");
        assert!(report.has_policy_violation());
    }

    #[test]
    fn kind_mismatch_rejected_at_eval_time_too() {
        let vp = verify(&port_guard(53)).unwrap();
        struct NotUdp;
        impl Packet for NotUdp {
            fn kind(&self) -> EventKind {
                EventKind::TcpRecv
            }
            fn field(&self, _: Field) -> Option<u64> {
                None
            }
            fn head(&self) -> &[u8] {
                &[]
            }
        }
        assert!(!eval(&vp, &NotUdp));
    }

    #[test]
    fn demux_key_extracts_eq_conjunction() {
        let vp = verify(&port_guard(53)).unwrap();
        let spec = DemuxKey::extract(&vp).expect("eq guard is indexable");
        assert_eq!(spec.kind(), EventKind::UdpRecv);
        assert_eq!(spec.fields().len(), 1);
        match &spec.fields()[0] {
            FieldSpec::In(vals) => assert_eq!(vals.iter().copied().collect::<Vec<_>>(), [53]),
            other => panic!("expected In, got {other:?}"),
        }
    }

    #[test]
    fn demux_key_unions_one_of_values() {
        let prog = conjunction(
            EventKind::UdpRecv,
            &[Test::one_of(
                Operand::Field(Field::UdpDstPort),
                [53u64, 67, 68],
            )],
            Vec::new(),
        );
        let spec = DemuxKey::extract(&verify(&prog).unwrap()).expect("indexable");
        match &spec.fields()[0] {
            FieldSpec::In(vals) => {
                assert_eq!(vals.iter().copied().collect::<Vec<_>>(), [53, 67, 68])
            }
            other => panic!("expected In, got {other:?}"),
        }
    }

    #[test]
    fn demux_key_tracks_not_in_set_and_in_together() {
        // The UDP manager's standard-node guard shape: proto == 17 AND
        // transport dst port not in the special set.
        let special = PortSet::new();
        let prog = conjunction(
            EventKind::IpRecv,
            &[
                Test::eq(Operand::Field(Field::IpProto), 17),
                Test::NotInSet {
                    op: Operand::Pay {
                        off: 2,
                        width: Width::W16,
                    },
                    set: 0,
                },
            ],
            vec![special.clone()],
        );
        let spec = DemuxKey::extract(&verify(&prog).unwrap()).expect("indexable via proto");
        assert_eq!(spec.fields().len(), 2);
        assert!(matches!(&spec.fields()[0], FieldSpec::In(v) if v.contains(&17)));
        match &spec.fields()[1] {
            FieldSpec::NotIn(sets) => {
                assert_eq!(sets.len(), 1);
                // The spec carries the *live* shared set, not a snapshot.
                special.insert(9);
                assert!(sets[0].contains(9));
            }
            other => panic!("expected NotIn, got {other:?}"),
        }
    }

    #[test]
    fn demux_key_absent_for_unconstrained_guard() {
        // Accept-all over UdpRecv: no In field -> no key.
        let wide_open = FilterProgram::new(EventKind::UdpRecv, vec![Insn::Accept]);
        assert!(DemuxKey::extract(&verify(&wide_open).unwrap()).is_none());

        // A guard that only constrains a non-schema field (payload length)
        // is likewise not indexable.
        let by_len = conjunction(
            EventKind::UdpRecv,
            &[Test::eq(Operand::Field(Field::UdpPayloadLen), 8)],
            Vec::new(),
        );
        assert!(DemuxKey::extract(&verify(&by_len).unwrap()).is_none());
    }

    #[test]
    fn demux_key_absent_for_never_accepting_guard() {
        let prog = FilterProgram::new(EventKind::UdpRecv, vec![Insn::Reject]);
        assert!(DemuxKey::extract(&verify(&prog).unwrap()).is_none());
    }

    #[test]
    fn demux_key_caps_enumerated_cross_product() {
        // Two 9-value one_of tests over schema fields: the 81-key cross
        // product exceeds MAX_ENUMERATED_KEYS (64), so the widest In field
        // is demoted to Any while the other still indexes.
        let dsts: Vec<u64> = (80..89).collect();
        let srcs: Vec<u64> = (2000..2009).collect();
        let prog = conjunction(
            EventKind::TcpRecv,
            &[
                Test::one_of(Operand::Field(Field::TcpDstPort), dsts),
                Test::one_of(Operand::Field(Field::TcpSrcPort), srcs),
            ],
            Vec::new(),
        );
        let spec = DemuxKey::extract(&verify(&prog).unwrap()).expect("still indexable");
        assert!(matches!(&spec.fields()[0], FieldSpec::In(v) if v.len() == 9));
        assert!(
            matches!(&spec.fields()[1], FieldSpec::Any),
            "src addr untested"
        );
        assert!(
            matches!(&spec.fields()[2], FieldSpec::Any),
            "widest In demoted to fit the cap"
        );
    }

    #[test]
    fn read_field_key_mirrors_eval_loads() {
        let pkt = udp_to(53);
        assert_eq!(
            read_field_key(&pkt, FieldKey::Field(Field::UdpDstPort)),
            Some(53)
        );
        assert_eq!(read_field_key(&pkt, FieldKey::Field(Field::IpProto)), None);
        assert_eq!(
            read_field_key(&pkt, FieldKey::Pay(0, Width::W16)),
            Some(0),
            "in-window payload load"
        );
        assert_eq!(
            read_field_key(&pkt, FieldKey::Pay(31, Width::W16)),
            None,
            "short payload reads as None, as eval would reject"
        );
    }

    #[test]
    fn spec_analysis_reports_all_issues() {
        use spec::{analyze, InterfaceTable, SpecInfo, SpecIssue, SpecSignature};

        let mut table = InterfaceTable::new();
        table.insert(
            "UDP",
            ["UDP.PacketRecv".to_string(), "UDP.Send".to_string()],
        );
        table.insert("Video", ["Video.Frame".to_string()]);

        let spec = SpecInfo {
            name: "Video".into(), // collides with existing interface
            signature: SpecSignature::Unsigned,
            imports: vec![
                "UDP.PacketRecv".into(),
                "UDP.PacketRecv".into(),   // duplicate
                "UDP.Send".into(),         // unused
                "Ether.PacketSent".into(), // unresolved
                "Video.Frame".into(),      // self-import
            ],
            refs: vec![
                "UDP.PacketRecv".into(),
                "Ether.PacketSent".into(),
                "VM.MapKernel".into(), // undeclared
            ],
            exports: vec!["Frame".into(), "Frame".into()], // duplicate
        };
        let report = analyze(&table, &spec);
        let has = |pred: fn(&SpecIssue) -> bool| report.issues.iter().any(pred);
        assert!(has(|i| matches!(i, SpecIssue::BadSignature)));
        assert!(has(|i| matches!(i, SpecIssue::DuplicateImport { .. })));
        assert!(has(|i| matches!(i, SpecIssue::UnusedImport { .. })));
        assert!(has(|i| matches!(i, SpecIssue::UnresolvedImport { .. })));
        assert!(has(|i| matches!(i, SpecIssue::SelfImport { .. })));
        assert!(has(|i| matches!(i, SpecIssue::UndeclaredReference { .. })));
        assert!(has(|i| matches!(i, SpecIssue::ExportCollision { .. })));
        assert!(has(|i| matches!(i, SpecIssue::DuplicateExport { .. })));
        assert!(report.issues.len() >= 8, "all issues reported: {report}");
    }
}
