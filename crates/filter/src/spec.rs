//! Static analysis of extension specs.
//!
//! The dynamic linker (`kernel::domain`) resolves imports at link time and
//! reports what is missing. This module is the install-time *lint* pass
//! over the same data: it computes the import closure of an extension spec
//! against a table of known interfaces and reports **every** violation —
//! unresolved imports, imports the body never references (unused), body
//! references that were never imported (undeclared), duplicates,
//! self-imports, export collisions, and missing signatures. The same pass
//! powers `Domain::check_spec` in the kernel and the `plexus-verify`
//! command-line linter.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a spec claims to have been produced (mirrors
/// `kernel::domain::Signature` without depending on the kernel crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpecSignature {
    /// Digitally signed by the type-safe compiler.
    TypesafeCompiler,
    /// Signed by a trusted vendor.
    TrustedVendor,
    /// No signature at all.
    #[default]
    Unsigned,
}

/// The linter's view of an extension spec.
#[derive(Clone, Debug, Default)]
pub struct SpecInfo {
    /// Extension name (also the interface name its exports would create).
    pub name: String,
    /// Claimed provenance.
    pub signature: SpecSignature,
    /// Fully-qualified imported symbols (`"Interface.Symbol"`).
    pub imports: Vec<String>,
    /// Fully-qualified symbols the extension body references.
    pub refs: Vec<String>,
    /// Symbols the extension exports.
    pub exports: Vec<String>,
}

/// The set of interfaces a spec may import from: interface name to its
/// fully-qualified symbols.
#[derive(Clone, Debug, Default)]
pub struct InterfaceTable {
    interfaces: BTreeMap<String, BTreeSet<String>>,
}

impl InterfaceTable {
    /// An empty table.
    pub fn new() -> InterfaceTable {
        InterfaceTable::default()
    }

    /// Registers an interface and its fully-qualified symbols.
    pub fn insert(&mut self, name: impl Into<String>, symbols: impl IntoIterator<Item = String>) {
        self.interfaces
            .entry(name.into())
            .or_default()
            .extend(symbols);
    }

    /// Whether an interface with this name exists.
    pub fn has_interface(&self, name: &str) -> bool {
        self.interfaces.contains_key(name)
    }

    /// Whether the fully-qualified symbol resolves.
    pub fn resolves(&self, qualified: &str) -> bool {
        let Some((iface, _)) = qualified.split_once('.') else {
            return false;
        };
        self.interfaces
            .get(iface)
            .is_some_and(|syms| syms.contains(qualified))
    }
}

/// One spec lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecIssue {
    /// The spec is not signed by the type-safe compiler or a trusted
    /// vendor.
    BadSignature,
    /// An import that no known interface provides.
    UnresolvedImport {
        /// The unresolvable symbol.
        symbol: String,
    },
    /// The same symbol imported more than once.
    DuplicateImport {
        /// The repeated symbol.
        symbol: String,
    },
    /// An import the extension body never references (dead capability: it
    /// widens the extension's authority for no reason).
    UnusedImport {
        /// The unused symbol.
        symbol: String,
    },
    /// A body reference outside the import closure.
    UndeclaredReference {
        /// The referenced-but-not-imported symbol.
        symbol: String,
    },
    /// An import from the extension's own (future) interface.
    SelfImport {
        /// The self-referential symbol.
        symbol: String,
    },
    /// Linking would export an interface name that already exists.
    ExportCollision {
        /// The colliding interface name.
        interface: String,
    },
    /// The same symbol exported more than once.
    DuplicateExport {
        /// The repeated symbol.
        symbol: String,
    },
}

impl fmt::Display for SpecIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecIssue::BadSignature => {
                write!(
                    f,
                    "spec is unsigned (needs typesafe-compiler or trusted-vendor)"
                )
            }
            SpecIssue::UnresolvedImport { symbol } => {
                write!(f, "unresolved import: {symbol}")
            }
            SpecIssue::DuplicateImport { symbol } => {
                write!(f, "duplicate import: {symbol}")
            }
            SpecIssue::UnusedImport { symbol } => {
                write!(f, "unused import (dead capability): {symbol}")
            }
            SpecIssue::UndeclaredReference { symbol } => {
                write!(f, "body references {symbol} without importing it")
            }
            SpecIssue::SelfImport { symbol } => {
                write!(f, "self-import: {symbol}")
            }
            SpecIssue::ExportCollision { interface } => {
                write!(
                    f,
                    "exporting would collide with existing interface {interface}"
                )
            }
            SpecIssue::DuplicateExport { symbol } => {
                write!(f, "duplicate export: {symbol}")
            }
        }
    }
}

/// Every issue found in one spec, in discovery order.
#[derive(Clone, Debug, Default)]
pub struct SpecReport {
    /// All findings.
    pub issues: Vec<SpecIssue>,
}

impl SpecReport {
    /// Whether the spec is clean.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for SpecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "spec is clean");
        }
        writeln!(f, "spec check failed ({} issue(s)):", self.issues.len())?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

/// Lints `spec` against `table`, reporting every violation (never just the
/// first).
pub fn analyze(table: &InterfaceTable, spec: &SpecInfo) -> SpecReport {
    let mut report = SpecReport::default();

    if spec.signature == SpecSignature::Unsigned {
        report.issues.push(SpecIssue::BadSignature);
    }

    let mut seen_imports: BTreeSet<&str> = BTreeSet::new();
    for import in &spec.imports {
        if !seen_imports.insert(import) {
            report.issues.push(SpecIssue::DuplicateImport {
                symbol: import.clone(),
            });
            continue;
        }
        if import
            .split_once('.')
            .is_some_and(|(iface, _)| iface == spec.name)
        {
            report.issues.push(SpecIssue::SelfImport {
                symbol: import.clone(),
            });
            continue;
        }
        if !table.resolves(import) {
            report.issues.push(SpecIssue::UnresolvedImport {
                symbol: import.clone(),
            });
        }
    }

    let refs: BTreeSet<&str> = spec.refs.iter().map(String::as_str).collect();
    for import in &seen_imports {
        if !refs.contains(import) {
            report.issues.push(SpecIssue::UnusedImport {
                symbol: (*import).to_string(),
            });
        }
    }
    for reference in &refs {
        if !seen_imports.contains(reference) {
            report.issues.push(SpecIssue::UndeclaredReference {
                symbol: (*reference).to_string(),
            });
        }
    }

    if !spec.exports.is_empty() && table.has_interface(&spec.name) {
        report.issues.push(SpecIssue::ExportCollision {
            interface: spec.name.clone(),
        });
    }
    let mut seen_exports: BTreeSet<&str> = BTreeSet::new();
    for export in &spec.exports {
        if !seen_exports.insert(export) {
            report.issues.push(SpecIssue::DuplicateExport {
                symbol: export.clone(),
            });
        }
    }

    report
}
