//! Declarative guard construction.
//!
//! Protocol managers describe a guard as a conjunction of [`Test`]s and
//! [`conjunction`] compiles it to IR: each test either falls through to
//! the next or jumps to a shared failure label; the final fall-through is
//! `Accept`. All emitted control flow is forward, so the result always
//! verifies for termination, and the `Jeq`/`Jne` shapes it emits are
//! exactly what the verifier's value-range analysis understands — a guard
//! built with `conjunction` proves its own policy compliance.

use crate::ir::{EventKind, Field, FilterProgram, Insn, MapId, PortSet, Reg, SetId, Src, Width};
use crate::state::StateMap;

/// What a test examines: a typed field or raw payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A typed event field.
    Field(Field),
    /// A big-endian payload load at `(offset, width)`.
    Pay {
        /// Byte offset into the payload head.
        off: u16,
        /// Load width.
        width: Width,
    },
}

/// One conjunct of a guard predicate.
#[derive(Clone, Debug)]
pub enum Test {
    /// The operand must equal one of `values`.
    In {
        /// What to load.
        op: Operand,
        /// Accepted values (must be non-empty).
        values: Vec<u64>,
    },
    /// The operand must be a member of the shared port set.
    InSet {
        /// What to load.
        op: Operand,
        /// Which of the program's sets to probe.
        set: SetId,
    },
    /// The operand must **not** be a member of the shared port set.
    NotInSet {
        /// What to load.
        op: Operand,
        /// Which of the program's sets to probe.
        set: SetId,
    },
    /// The operand, masked, selects a token-bucket slot that must yield a
    /// token — per-flow rate limiting *inside* the guard, so over-rate
    /// packets are dropped before any handler (or thread) exists.
    /// The map's capacity must exceed `mask` for the program to verify.
    TakeToken {
        /// What to load (the flow key).
        op: Operand,
        /// Mask applied to the loaded value to form the slot index.
        mask: u64,
        /// Which of the program's maps to draw from.
        map: MapId,
    },
    /// The operand, masked, selects a counter slot to bump — per-flow
    /// accounting in the guard. Never fails the conjunction.
    Count {
        /// What to load (the flow key).
        op: Operand,
        /// Mask applied to the loaded value to form the slot index.
        mask: u64,
        /// Which of the program's maps to bump.
        map: MapId,
    },
}

impl Test {
    /// `op == value`.
    pub fn eq(op: Operand, value: u64) -> Test {
        Test::In {
            op,
            values: vec![value],
        }
    }

    /// `op ∈ values`.
    pub fn one_of(op: Operand, values: impl IntoIterator<Item = u64>) -> Test {
        Test::In {
            op,
            values: values.into_iter().collect(),
        }
    }
}

enum Fixup {
    /// Patch the jump at this index to target the failure label.
    ToFail(usize),
    /// Patch the jump at this index to target an absolute pc.
    To(usize, usize),
}

fn set_off(insn: &mut Insn, at: usize, target: usize) {
    let delta = u16::try_from(target - at - 1).expect("builder emitted an over-long jump");
    match insn {
        Insn::Jeq { off, .. }
        | Insn::Jne { off, .. }
        | Insn::Jlt { off, .. }
        | Insn::Jgt { off, .. }
        | Insn::JInSet { off, .. }
        | Insn::Ja { off } => *off = delta,
        _ => unreachable!("fixup on a non-jump instruction"),
    }
}

/// Compiles the conjunction of `tests` over `kind` events into a
/// [`FilterProgram`] carrying `sets`.
///
/// Panics on malformed input (an `In` test with no values, or a `set` id
/// with no backing entry) — these are builder-usage bugs, not packet-time
/// conditions.
pub fn conjunction(kind: EventKind, tests: &[Test], sets: Vec<PortSet>) -> FilterProgram {
    conjunction_stateful(kind, tests, sets, Vec::new(), 0)
}

/// [`conjunction`] for guards that declare bounded state: the program
/// carries `maps` under `state_budget` bytes, and tests may reference
/// them ([`Test::TakeToken`], [`Test::Count`]).
pub fn conjunction_stateful(
    kind: EventKind,
    tests: &[Test],
    sets: Vec<PortSet>,
    maps: Vec<StateMap>,
    state_budget: u32,
) -> FilterProgram {
    let r0 = Reg(0);
    // Map results land in r1 so they never clobber the operand register
    // mid-test.
    let r1 = Reg(1);
    let mut insns: Vec<Insn> = Vec::new();
    let mut fixups: Vec<Fixup> = Vec::new();

    let load = |op: Operand, insns: &mut Vec<Insn>| match op {
        Operand::Field(field) => insns.push(Insn::Ld { dst: r0, field }),
        Operand::Pay { off, width } => insns.push(Insn::LdPay {
            dst: r0,
            off,
            width,
        }),
    };

    for test in tests {
        match test {
            Test::In { op, values } => {
                assert!(!values.is_empty(), "Test::In with no values");
                load(*op, &mut insns);
                let (last, rest) = values.split_last().expect("non-empty");
                let mut to_next: Vec<usize> = Vec::new();
                for v in rest {
                    to_next.push(insns.len());
                    insns.push(Insn::Jeq {
                        a: r0,
                        b: Src::Imm(*v),
                        off: 0,
                    });
                }
                fixups.push(Fixup::ToFail(insns.len()));
                insns.push(Insn::Jne {
                    a: r0,
                    b: Src::Imm(*last),
                    off: 0,
                });
                let next = insns.len();
                for at in to_next {
                    fixups.push(Fixup::To(at, next));
                }
            }
            Test::InSet { op, set } => {
                assert!((*set as usize) < sets.len(), "Test::InSet names no set");
                load(*op, &mut insns);
                let jin = insns.len();
                insns.push(Insn::JInSet {
                    a: r0,
                    set: *set,
                    off: 0,
                });
                fixups.push(Fixup::ToFail(insns.len()));
                insns.push(Insn::Ja { off: 0 });
                fixups.push(Fixup::To(jin, insns.len()));
            }
            Test::NotInSet { op, set } => {
                assert!((*set as usize) < sets.len(), "Test::NotInSet names no set");
                load(*op, &mut insns);
                fixups.push(Fixup::ToFail(insns.len()));
                insns.push(Insn::JInSet {
                    a: r0,
                    set: *set,
                    off: 0,
                });
            }
            Test::TakeToken { op, mask, map } => {
                assert!((*map as usize) < maps.len(), "Test::TakeToken names no map");
                load(*op, &mut insns);
                insns.push(Insn::And {
                    dst: r0,
                    src: Src::Imm(*mask),
                });
                insns.push(Insn::MTake {
                    dst: r1,
                    map: *map,
                    idx: r0,
                });
                fixups.push(Fixup::ToFail(insns.len()));
                insns.push(Insn::Jne {
                    a: r1,
                    b: Src::Imm(1),
                    off: 0,
                });
            }
            Test::Count { op, mask, map } => {
                assert!((*map as usize) < maps.len(), "Test::Count names no map");
                load(*op, &mut insns);
                insns.push(Insn::And {
                    dst: r0,
                    src: Src::Imm(*mask),
                });
                insns.push(Insn::MBump {
                    dst: r1,
                    map: *map,
                    idx: r0,
                });
            }
        }
    }

    insns.push(Insn::Accept);
    if !fixups.is_empty() {
        let fail = insns.len();
        insns.push(Insn::Reject);
        for fixup in fixups {
            let (at, target) = match fixup {
                Fixup::ToFail(at) => (at, fail),
                Fixup::To(at, target) => (at, target),
            };
            let mut insn = insns[at].clone();
            set_off(&mut insn, at, target);
            insns[at] = insn;
        }
    }

    FilterProgram {
        kind,
        insns,
        sets,
        maps,
        state_budget,
    }
}
