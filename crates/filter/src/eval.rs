//! Guard program interpreters.
//!
//! [`eval`] is the production interpreter: it only runs
//! [`VerifiedProgram`]s, and even then is fully defensive — any anomaly
//! (missing field, short payload, exhausted fuel) rejects the packet
//! instead of faulting. [`eval_unchecked`] interprets a *raw*
//! [`FilterProgram`] with no safety net; it exists to demonstrate (in
//! tests) that programs the verifier rejects really would fault.

use crate::ir::{EventKind, Field, FilterProgram, Insn, Src, Width, MAX_COST};
use crate::verify::{FieldKey, VerifiedProgram};

/// How an event exposes its typed fields and contiguous head bytes to a
/// guard program.
pub trait Packet {
    /// The event kind this packet is.
    fn kind(&self) -> EventKind;

    /// Reads a typed field; `None` if the field does not belong to this
    /// packet's kind.
    fn field(&self, field: Field) -> Option<u64>;

    /// The contiguous head of the payload, addressed by `LdPay`.
    fn head(&self) -> &[u8];
}

fn load_be(bytes: &[u8], width: Width) -> u64 {
    bytes.iter().fold(0u64, |acc, b| (acc << 8) | *b as u64)
        & match width {
            Width::W8 => 0xFF,
            Width::W16 => 0xFFFF,
            Width::W32 => 0xFFFF_FFFF,
        }
}

/// Reads the value a guard program would observe for `key` on `pkt`,
/// mirroring [`eval`]'s load semantics exactly: a missing typed field or a
/// short payload yields `None` (where `eval` would reject).
///
/// The dispatcher's demux index probes packets through this function, so
/// `read_field_key(pkt, k) == None` implies every verified guard that
/// loads `k` rejects `pkt`.
pub fn read_field_key<P: Packet + ?Sized>(pkt: &P, key: FieldKey) -> Option<u64> {
    match key {
        FieldKey::Field(field) => pkt.field(field),
        FieldKey::Pay(off, width) => {
            let start = off as usize;
            let end = start + width.bytes() as usize;
            pkt.head().get(start..end).map(|b| load_be(b, width))
        }
    }
}

/// Evaluates a verified guard against a packet. Total and fault-free: any
/// runtime anomaly (kind mismatch, short payload, missing field) rejects.
///
/// Token-bucket maps see time 0; use [`eval_at`] when the program carries
/// rate-limiting state.
pub fn eval<P: Packet + ?Sized>(vp: &VerifiedProgram, pkt: &P) -> bool {
    run(vp.program(), pkt, 0).0
}

/// [`eval`] at simulated time `now_ns`, which drives token-bucket refill.
pub fn eval_at<P: Packet + ?Sized>(vp: &VerifiedProgram, pkt: &P, now_ns: u64) -> bool {
    run(vp.program(), pkt, now_ns).0
}

/// [`eval_at`] that also reports the cycles the evaluation actually spent
/// — the measured side of the static-bound cross-check. For a verified
/// program the cycle count never exceeds [`VerifiedProgram::static_bound`]
/// (the dispatcher and the property suite assert exactly that).
pub fn eval_metered<P: Packet + ?Sized>(vp: &VerifiedProgram, pkt: &P, now_ns: u64) -> (bool, u32) {
    run(vp.program(), pkt, now_ns)
}

fn run<P: Packet + ?Sized>(program: &FilterProgram, pkt: &P, now_ns: u64) -> (bool, u32) {
    let mut spent = 0u32;
    if pkt.kind() != program.kind {
        return (false, spent);
    }

    let mut regs = [0u64; crate::ir::NUM_REGS];
    let mut pc = 0usize;

    // Any anomaly rejects, reporting the cycles spent so far.
    macro_rules! bail {
        () => {
            return (false, spent)
        };
    }

    while pc < program.insns.len() {
        let insn = &program.insns[pc];
        spent = spent.saturating_add(insn.cost());
        // Defense in depth: verification already bounds cost, but the
        // interpreter carries its own fuel so even a bug in the verifier
        // cannot produce an unbounded evaluation.
        if spent > MAX_COST {
            bail!();
        }

        let src = |s: &Src, regs: &[u64]| match s {
            Src::Imm(v) => Some(*v),
            Src::Reg(r) => regs.get(r.0 as usize).copied(),
        };

        match insn {
            Insn::Ld { dst, field } => {
                let Some(v) = pkt.field(*field) else {
                    bail!();
                };
                let Some(slot) = regs.get_mut(dst.0 as usize) else {
                    bail!();
                };
                *slot = v;
            }
            Insn::LdImm { dst, imm } => {
                let Some(slot) = regs.get_mut(dst.0 as usize) else {
                    bail!();
                };
                *slot = *imm;
            }
            Insn::LdPay { dst, off, width } => {
                let start = *off as usize;
                let end = start + width.bytes() as usize;
                let Some(bytes) = pkt.head().get(start..end) else {
                    bail!();
                };
                let v = load_be(bytes, *width);
                let Some(slot) = regs.get_mut(dst.0 as usize) else {
                    bail!();
                };
                *slot = v;
            }
            Insn::And { dst, src: s } | Insn::Or { dst, src: s } => {
                let Some(b) = src(s, &regs) else { bail!() };
                let Some(slot) = regs.get_mut(dst.0 as usize) else {
                    bail!();
                };
                *slot = if matches!(insn, Insn::And { .. }) {
                    *slot & b
                } else {
                    *slot | b
                };
            }
            Insn::Jeq { a, b, off }
            | Insn::Jne { a, b, off }
            | Insn::Jlt { a, b, off }
            | Insn::Jgt { a, b, off } => {
                let Some(av) = regs.get(a.0 as usize).copied() else {
                    bail!();
                };
                let Some(bv) = src(b, &regs) else {
                    bail!();
                };
                let taken = match insn {
                    Insn::Jeq { .. } => av == bv,
                    Insn::Jne { .. } => av != bv,
                    Insn::Jlt { .. } => av < bv,
                    _ => av > bv,
                };
                if taken {
                    pc += *off as usize;
                }
            }
            Insn::JInSet { a, set, off } => {
                let Some(av) = regs.get(a.0 as usize).copied() else {
                    bail!();
                };
                let Some(ports) = program.sets.get(*set as usize) else {
                    bail!();
                };
                let member = u16::try_from(av)
                    .map(|p| ports.contains(p))
                    .unwrap_or(false);
                if member {
                    pc += *off as usize;
                }
            }
            Insn::Ja { off } => pc += *off as usize,
            Insn::MBump { dst, map, idx }
            | Insn::MLoad { dst, map, idx }
            | Insn::MTake { dst, map, idx } => {
                let Some(i) = regs.get(idx.0 as usize).copied() else {
                    bail!();
                };
                let Some(m) = program.maps.get(*map as usize) else {
                    bail!();
                };
                // The verifier proves the index in bounds and the op
                // matched to the map kind; `None` here means a broken
                // invariant, and rejecting is the safe answer.
                let v = match insn {
                    Insn::MBump { .. } => m.bump(i),
                    Insn::MLoad { .. } => m.load(i),
                    _ => m.take(i, now_ns).map(u64::from),
                };
                let Some(v) = v else { bail!() };
                let Some(slot) = regs.get_mut(dst.0 as usize) else {
                    bail!();
                };
                *slot = v;
            }
            Insn::Accept => return (true, spent),
            Insn::Reject => bail!(),
        }
        pc += 1;
    }
    // Fell off the end: verified programs never do, reject defensively.
    (false, spent)
}

/// Interprets a **raw, unverified** program with no safety checks: field
/// type mismatches, short payloads, bad registers, unknown sets, and
/// out-of-range jumps all panic, and falling off the end panics too.
///
/// This is deliberately the interpreter a kernel must never run — it
/// exists so tests can demonstrate that programs rejected by the verifier
/// actually fault without it.
pub fn eval_unchecked<P: Packet + ?Sized>(program: &FilterProgram, pkt: &P) -> bool {
    let mut regs = [0u64; crate::ir::NUM_REGS];
    let mut pc = 0usize;

    loop {
        let insn = program
            .insns
            .get(pc)
            .unwrap_or_else(|| panic!("fell off the end of the program at pc {pc}"));

        let src = |s: &Src, regs: &[u64]| match s {
            Src::Imm(v) => *v,
            Src::Reg(r) => regs[r.0 as usize],
        };

        match insn {
            Insn::Ld { dst, field } => {
                regs[dst.0 as usize] = pkt
                    .field(*field)
                    .unwrap_or_else(|| panic!("field {field} absent on {} packet", pkt.kind()));
            }
            Insn::LdImm { dst, imm } => regs[dst.0 as usize] = *imm,
            Insn::LdPay { dst, off, width } => {
                let start = *off as usize;
                let bytes = &pkt.head()[start..start + width.bytes() as usize];
                regs[dst.0 as usize] = load_be(bytes, *width);
            }
            Insn::And { dst, src: s } => {
                let b = src(s, &regs);
                regs[dst.0 as usize] &= b;
            }
            Insn::Or { dst, src: s } => {
                let b = src(s, &regs);
                regs[dst.0 as usize] |= b;
            }
            Insn::Jeq { a, b, off }
            | Insn::Jne { a, b, off }
            | Insn::Jlt { a, b, off }
            | Insn::Jgt { a, b, off } => {
                let av = regs[a.0 as usize];
                let bv = src(b, &regs);
                let taken = match insn {
                    Insn::Jeq { .. } => av == bv,
                    Insn::Jne { .. } => av != bv,
                    Insn::Jlt { .. } => av < bv,
                    _ => av > bv,
                };
                if taken {
                    pc += *off as usize;
                }
            }
            Insn::JInSet { a, set, off } => {
                let av = regs[a.0 as usize];
                let ports = &program.sets[*set as usize];
                if ports.contains(av as u16) {
                    pc += *off as usize;
                }
            }
            Insn::Ja { off } => pc += *off as usize,
            Insn::MBump { dst, map, idx } => {
                let i = regs[idx.0 as usize];
                regs[dst.0 as usize] = program.maps[*map as usize]
                    .bump(i)
                    .unwrap_or_else(|| panic!("bump faulted on map #{map} index {i}"));
            }
            Insn::MLoad { dst, map, idx } => {
                let i = regs[idx.0 as usize];
                regs[dst.0 as usize] = program.maps[*map as usize]
                    .load(i)
                    .unwrap_or_else(|| panic!("load faulted on map #{map} index {i}"));
            }
            Insn::MTake { dst, map, idx } => {
                let i = regs[idx.0 as usize];
                let took = program.maps[*map as usize]
                    .take(i, 0)
                    .unwrap_or_else(|| panic!("take faulted on map #{map} index {i}"));
                regs[dst.0 as usize] = u64::from(took);
            }
            Insn::Accept => return true,
            Insn::Reject => return false,
        }
        pc += 1;
    }
}
