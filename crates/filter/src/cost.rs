//! The static cycle-cost model and worst-case execution bound.
//!
//! Costs are counted in abstract *guard cycles* — the unit [`Insn::cost`]
//! charges and the evaluator's fuel meter spends. The same model feeds
//! three consumers, which is what makes the bound meaningful end to end:
//!
//! * the verifier's per-program **static worst-case bound** (longest-cost
//!   path through the CFG, computed here);
//! * the checked evaluator's **measured cost** (cycles actually spent on
//!   one packet, returned by `eval_metered`);
//! * the dispatcher's **admission budget** (interrupt-level installs are
//!   rejected unless the static bound fits the per-event cycle budget).
//!
//! Because control flow is forward-only the CFG is a DAG, so the longest
//! path is a single reverse-order dynamic program — no iteration needed —
//! and is always ≤ [`FilterProgram::total_cost`], the sum the legacy
//! budget check uses.

use crate::ir::{FilterProgram, Insn};

/// Cycles charged for executing `insn` once — the canonical cost model,
/// shared verbatim by the verifier's bound and the evaluator's meter.
pub fn insn_cycles(insn: &Insn) -> u32 {
    insn.cost()
}

/// Structural successors of the instruction at `pc` (assumes jump targets
/// already range-checked).
pub(crate) fn successors(insn: &Insn, pc: usize) -> Vec<usize> {
    match insn {
        Insn::Accept | Insn::Reject => Vec::new(),
        Insn::Ja { off } => vec![pc + 1 + *off as usize],
        Insn::Jeq { off, .. }
        | Insn::Jne { off, .. }
        | Insn::Jlt { off, .. }
        | Insn::Jgt { off, .. }
        | Insn::JInSet { off, .. } => vec![pc + 1, pc + 1 + *off as usize],
        _ => vec![pc + 1],
    }
}

/// Longest-cost path from entry over per-pc successor lists (`None` marks
/// an unreachable pc, excluded from the bound). Reverse order is a
/// topological order of the forward-only CFG, so one pass is exact.
pub(crate) fn longest_path(insns: &[Insn], succs: &[Option<Vec<usize>>]) -> u32 {
    let mut wc: Vec<u32> = vec![0; insns.len()];
    for pc in (0..insns.len()).rev() {
        let Some(ss) = &succs[pc] else { continue };
        let tail = ss.iter().map(|&s| wc[s]).max().unwrap_or(0);
        wc[pc] = insn_cycles(&insns[pc]).saturating_add(tail);
    }
    wc.first().copied().unwrap_or(0)
}

/// The program's worst-case cycle bound from structure alone: every edge
/// assumed feasible. The interval analysis ([`crate::absint`]) computes
/// the tighter bound that skips interval-infeasible edges; this is the
/// fallback (and an upper bound on that).
pub fn structural_bound(program: &FilterProgram) -> u32 {
    let succs: Vec<Option<Vec<usize>>> = program
        .insns
        .iter()
        .enumerate()
        .map(|(pc, i)| Some(successors(i, pc)))
        .collect();
    longest_path(&program.insns, &succs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{EventKind, Field, Reg, Src};

    #[test]
    fn longest_path_is_tighter_than_total_cost() {
        // Ld; Jeq -> Accept; Reject; Accept — both paths are 3 cycles,
        // total_cost is 4.
        let p = FilterProgram::new(
            EventKind::EthRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::EthType,
                },
                Insn::Jeq {
                    a: Reg(0),
                    b: Src::Imm(0x0800),
                    off: 1,
                },
                Insn::Reject,
                Insn::Accept,
            ],
        );
        assert_eq!(p.total_cost(), 4);
        assert_eq!(structural_bound(&p), 3);
    }

    #[test]
    fn straight_line_bound_equals_total_cost() {
        let p = FilterProgram::new(
            EventKind::EthRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::EthType,
                },
                Insn::Accept,
            ],
        );
        assert_eq!(structural_bound(&p), p.total_cost());
    }
}
