//! Interval abstract interpretation over the filter IR.
//!
//! Runs the program on intervals instead of packets: each register is
//! tracked as a `[lo, hi]` range seeded from the natural range of what it
//! loads (a port is ≤ 0xFFFF, a protocol ≤ 0xFF, a flag ≤ 1, ...), branch
//! edges refine the ranges, and joins at merge points widen them. Control
//! flow is forward-only, so the CFG is a DAG and one in-order pass *is*
//! the fixpoint: by the time `pc` is visited every predecessor has
//! contributed its state and no state is ever revisited.
//!
//! For a structurally verified program the pass produces:
//!
//! * a **static worst-case cycle bound** — the longest-cost path through
//!   the interval-feasible part of the CFG, in the same cycle unit the
//!   evaluator's fuel meter spends ([`crate::cost`]). Never larger than
//!   [`FilterProgram::total_cost`], and tighter whenever branches skip
//!   work or intervals prove edges dead;
//! * **bounded-state proofs** — every `MBump`/`MLoad`/`MTake` index
//!   provably below its map's capacity, operations matching the map's
//!   kind, and the combined map footprint within the program's declared
//!   byte budget (itself capped by [`crate::state::MAX_STATE_BYTES`]);
//! * **lints** — instructions no interval-feasible path reaches, stores
//!   no later instruction reads, and conditional branches that always or
//!   never take. Lints are advisory (the program still verifies);
//!   `plexus-verify` surfaces them.
//!
//! This analysis complements the verifier's set-based dataflow
//! ([`crate::verify`]): that pass proves *which values* a field may hold
//! at an accept (the policy/demux machinery); this one proves *how much*
//! a program can cost and *how much state* it can touch.

use std::fmt;

use crate::cost;
use crate::ir::{Field, FilterProgram, Insn, Src, Width, NUM_REGS};
use crate::state::{MapKind, MAX_STATE_BYTES};
use crate::verify::VerifyError;

/// An inclusive value range `[lo, hi]`. The abstract value of one
/// register at one program point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value the register may hold.
    pub lo: u64,
    /// Largest value the register may hold.
    pub hi: u64,
}

impl Interval {
    /// The full `u64` range.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u64::MAX,
    };

    /// The single value `v`.
    pub const fn exact(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The range `[lo, hi]` (callers must keep `lo <= hi`).
    pub const fn span(lo: u64, hi: u64) -> Interval {
        Interval { lo, hi }
    }

    /// Whether the range is a single value.
    pub fn is_const(self) -> bool {
        self.lo == self.hi
    }

    fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_const() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Natural range of a typed field load — the seed intervals that make the
/// analysis precise without any branch having run yet.
fn field_interval(field: Field) -> Interval {
    use Field::*;
    match field {
        EthDst | EthSrc => Interval::span(0, (1 << 48) - 1),
        EthType => Interval::span(0, 0xFFFF),
        FrameLen | IpPayloadLen | UdpPayloadLen | TcpPayloadLen => Interval::span(0, 0xFFFF),
        IpSrc | IpDst | UdpSrcAddr | UdpDstAddr | TcpSrcAddr | TcpDstAddr => {
            Interval::span(0, u64::from(u32::MAX))
        }
        IpProto => Interval::span(0, 0xFF),
        UdpSrcPort | UdpDstPort | TcpSrcPort | TcpDstPort => Interval::span(0, 0xFFFF),
        TcpFlagSyn | TcpFlagAck => Interval::span(0, 1),
    }
}

fn width_interval(width: Width) -> Interval {
    Interval::span(
        0,
        match width {
            Width::W8 => 0xFF,
            Width::W16 => 0xFFFF,
            Width::W32 => 0xFFFF_FFFF,
        },
    )
}

/// Smallest all-ones mask covering every bit either operand's upper bound
/// can set — a sound upper bound for bitwise OR.
fn or_hi(a: u64, b: u64) -> u64 {
    let m = a | b;
    if m == 0 {
        0
    } else {
        u64::MAX >> m.leading_zeros()
    }
}

/// An advisory finding: the program verifies, but contains provably
/// useless code. Surfaced by `plexus-verify` (and its `--lint-all` CI
/// gate) with instruction offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    /// No interval-feasible path reaches this instruction.
    Unreachable {
        /// Instruction index.
        pc: usize,
    },
    /// The value stored here is never read afterwards.
    DeadStore {
        /// Instruction index.
        pc: usize,
        /// The register written.
        reg: u8,
    },
    /// The branch condition is always true (fall-through is dead).
    AlwaysTaken {
        /// Instruction index.
        pc: usize,
    },
    /// The branch condition is always false (the jump is dead).
    NeverTaken {
        /// Instruction index.
        pc: usize,
    },
}

impl Lint {
    /// The instruction the lint is anchored to.
    pub fn pc(&self) -> usize {
        match self {
            Lint::Unreachable { pc }
            | Lint::DeadStore { pc, .. }
            | Lint::AlwaysTaken { pc }
            | Lint::NeverTaken { pc } => *pc,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::Unreachable { pc } => write!(f, "insn {pc}: unreachable (interval analysis)"),
            Lint::DeadStore { pc, reg } => {
                write!(f, "insn {pc}: dead store to r{reg} (value never read)")
            }
            Lint::AlwaysTaken { pc } => {
                write!(f, "insn {pc}: branch always taken (fall-through is dead)")
            }
            Lint::NeverTaken { pc } => {
                write!(f, "insn {pc}: branch never taken (the jump is dead)")
            }
        }
    }
}

/// Everything the interval pass derives for one program.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Static worst-case cycle bound (longest interval-feasible path).
    pub bound: u32,
    /// Combined declared map footprint in bytes.
    pub state_bytes: u32,
    /// Advisory findings; the program still verifies.
    pub lints: Vec<Lint>,
    /// Hard failures (map bounds, kind mismatches, state budget).
    pub errors: Vec<VerifyError>,
}

type Regs = [Interval; NUM_REGS];

fn src_interval(regs: &Regs, s: Src) -> Interval {
    match s {
        Src::Imm(v) => Interval::exact(v),
        Src::Reg(r) => regs.get(r.0 as usize).copied().unwrap_or(Interval::TOP),
    }
}

/// Feasibility and refinement of one comparison's two outcomes.
/// Returns `(eq_edge, other_edge)` style pairs per comparison kind below.
struct Split {
    /// Refined `(a, b)` if the outcome is possible.
    yes: Option<(Interval, Interval)>,
    /// Refined `(a, b)` for the complementary outcome, if possible.
    no: Option<(Interval, Interval)>,
}

fn split_eq(a: Interval, b: Interval) -> Split {
    let meet_lo = a.lo.max(b.lo);
    let meet_hi = a.hi.min(b.hi);
    let yes = (meet_lo <= meet_hi).then(|| {
        let m = Interval::span(meet_lo, meet_hi);
        (m, m)
    });
    // a != b impossible only when both are the same single value.
    let no = (!(a.is_const() && b.is_const() && a.lo == b.lo)).then(|| {
        // With one side constant, trim a matching endpoint off the other.
        let trim = |x: Interval, c: Interval| -> Interval {
            if !c.is_const() || x.is_const() {
                return x;
            }
            let mut t = x;
            if t.lo == c.lo {
                t.lo += 1;
            }
            if t.hi == c.lo {
                t.hi -= 1;
            }
            t
        };
        (trim(a, b), trim(b, a))
    });
    Split { yes, no }
}

/// `yes` = `a < b`, `no` = `a >= b`.
fn split_lt(a: Interval, b: Interval) -> Split {
    let yes = (a.lo < b.hi).then(|| {
        (
            Interval::span(a.lo, a.hi.min(b.hi - 1)),
            Interval::span(b.lo.max(a.lo + 1), b.hi),
        )
    });
    let no = (a.hi >= b.lo).then(|| {
        (
            Interval::span(a.lo.max(b.lo), a.hi),
            Interval::span(b.lo, b.hi.min(a.hi)),
        )
    });
    Split { yes, no }
}

/// Runs the interval pass. Precondition: `check_structure` passed (jump
/// targets in range, register and map/set ids valid); the pass is still
/// defensive about violations but reports them as errors rather than
/// panicking.
pub fn analyze(program: &FilterProgram) -> Analysis {
    let len = program.insns.len();
    let mut out = Analysis::default();
    if len == 0 {
        return out;
    }

    let mut states: Vec<Option<Regs>> = vec![None; len];
    states[0] = Some([Interval::exact(0); NUM_REGS]);
    // Interval-feasible successors per reachable pc; `None` = unreachable.
    let mut succs: Vec<Option<Vec<usize>>> = vec![None; len];

    fn merge(states: &mut [Option<Regs>], target: usize, incoming: Regs) {
        match &mut states[target] {
            None => states[target] = Some(incoming),
            Some(cur) => {
                for (c, i) in cur.iter_mut().zip(incoming.iter()) {
                    *c = c.join(*i);
                }
            }
        }
    }

    for pc in 0..len {
        let Some(regs) = states[pc] else {
            out.lints.push(Lint::Unreachable { pc });
            continue;
        };
        let mut edges: Vec<usize> = Vec::with_capacity(2);
        let insn = &program.insns[pc];

        // Writes fall through with `dst` set to `val`.
        let write_fall =
            |dst: u8, val: Interval, states: &mut Vec<Option<Regs>>, edges: &mut Vec<usize>| {
                let mut next = regs;
                if let Some(slot) = next.get_mut(dst as usize) {
                    *slot = val;
                }
                if pc + 1 < len {
                    merge(states, pc + 1, next);
                    edges.push(pc + 1);
                }
            };

        match insn {
            Insn::Ld { dst, field } => {
                write_fall(dst.0, field_interval(*field), &mut states, &mut edges)
            }
            Insn::LdImm { dst, imm } => {
                write_fall(dst.0, Interval::exact(*imm), &mut states, &mut edges)
            }
            Insn::LdPay { dst, width, .. } => {
                write_fall(dst.0, width_interval(*width), &mut states, &mut edges)
            }
            Insn::And { dst, src } => {
                let a = regs.get(dst.0 as usize).copied().unwrap_or(Interval::TOP);
                let b = src_interval(&regs, *src);
                // a & b never exceeds either operand; exact when both const.
                let val = if a.is_const() && b.is_const() {
                    Interval::exact(a.lo & b.lo)
                } else {
                    Interval::span(0, a.hi.min(b.hi))
                };
                write_fall(dst.0, val, &mut states, &mut edges)
            }
            Insn::Or { dst, src } => {
                let a = regs.get(dst.0 as usize).copied().unwrap_or(Interval::TOP);
                let b = src_interval(&regs, *src);
                let val = if a.is_const() && b.is_const() {
                    Interval::exact(a.lo | b.lo)
                } else {
                    // a | b is at least either operand, at most the
                    // all-ones cover of both upper bounds.
                    Interval::span(a.lo.max(b.lo), or_hi(a.hi, b.hi))
                };
                write_fall(dst.0, val, &mut states, &mut edges)
            }
            Insn::Jeq { a, b, off } | Insn::Jne { a, b, off } => {
                let av = regs.get(a.0 as usize).copied().unwrap_or(Interval::TOP);
                let bv = src_interval(&regs, *b);
                let eq_jumps = matches!(insn, Insn::Jeq { .. });
                let split = split_eq(av, bv);
                let (taken, fall) = if eq_jumps {
                    (split.yes, split.no)
                } else {
                    (split.no, split.yes)
                };
                branch(
                    pc,
                    len,
                    *off,
                    *a,
                    *b,
                    regs,
                    taken,
                    fall,
                    &mut states,
                    &mut edges,
                    &mut out,
                );
            }
            Insn::Jlt { a, b, off } | Insn::Jgt { a, b, off } => {
                let av = regs.get(a.0 as usize).copied().unwrap_or(Interval::TOP);
                let bv = src_interval(&regs, *b);
                // a > b is b < a with the pair swapped back.
                let (taken, fall) = if matches!(insn, Insn::Jlt { .. }) {
                    let s = split_lt(av, bv);
                    (s.yes, s.no)
                } else {
                    let s = split_lt(bv, av);
                    (
                        s.yes.map(|(b2, a2)| (a2, b2)),
                        s.no.map(|(b2, a2)| (a2, b2)),
                    )
                };
                branch(
                    pc,
                    len,
                    *off,
                    *a,
                    *b,
                    regs,
                    taken,
                    fall,
                    &mut states,
                    &mut edges,
                    &mut out,
                );
            }
            Insn::JInSet { off, .. } => {
                // Set contents are dynamic: both edges stay feasible and
                // nothing numeric is learned.
                let target = pc + 1 + *off as usize;
                if target < len {
                    merge(&mut states, target, regs);
                    edges.push(target);
                }
                if pc + 1 < len {
                    merge(&mut states, pc + 1, regs);
                    edges.push(pc + 1);
                }
            }
            Insn::Ja { off } => {
                let target = pc + 1 + *off as usize;
                if target < len {
                    merge(&mut states, target, regs);
                    edges.push(target);
                }
            }
            Insn::MBump { dst, map, idx }
            | Insn::MLoad { dst, map, idx }
            | Insn::MTake { dst, map, idx } => {
                let val = check_map_op(program, insn, pc, *map, *idx, &regs, &mut out.errors);
                write_fall(dst.0, val, &mut states, &mut edges)
            }
            Insn::Accept | Insn::Reject => {}
        }
        succs[pc] = Some(edges);
    }

    out.bound = cost::longest_path(&program.insns, &succs);
    dead_stores(program, &succs, &mut out.lints);
    out.lints.sort_by_key(|l| l.pc());

    out.state_bytes = program.state_bytes();
    if program.state_budget > MAX_STATE_BYTES {
        out.errors.push(VerifyError::StateOverBudget {
            bytes: program.state_budget,
            budget: MAX_STATE_BYTES,
        });
    } else if out.state_bytes > program.state_budget {
        out.errors.push(VerifyError::StateOverBudget {
            bytes: out.state_bytes,
            budget: program.state_budget,
        });
    }

    out
}

/// Map-op checks: the map exists, the operation fits its kind, and the
/// index interval is provably in bounds. Returns the result interval for
/// `dst`.
fn check_map_op(
    program: &FilterProgram,
    insn: &Insn,
    pc: usize,
    map: u16,
    idx: crate::ir::Reg,
    regs: &Regs,
    errors: &mut Vec<VerifyError>,
) -> Interval {
    let Some(decl) = program.maps.get(map as usize) else {
        errors.push(VerifyError::UnknownMap { at: pc, map });
        return Interval::TOP;
    };
    let kind_ok = match insn {
        Insn::MBump { .. } => matches!(decl.kind(), MapKind::Counter),
        Insn::MTake { .. } => matches!(decl.kind(), MapKind::TokenBucket { .. }),
        _ => true,
    };
    if !kind_ok {
        errors.push(VerifyError::MapKindMismatch {
            at: pc,
            map,
            kind: decl.kind().name(),
        });
    }
    let iv = regs.get(idx.0 as usize).copied().unwrap_or(Interval::TOP);
    if iv.hi >= u64::from(decl.capacity()) {
        errors.push(VerifyError::MapIndexOutOfBounds {
            at: pc,
            map,
            hi: iv.hi,
            capacity: decl.capacity(),
        });
    }
    match insn {
        // A saturating bump returns at least 1.
        Insn::MBump { .. } => Interval::span(1, u64::MAX),
        Insn::MTake { .. } => Interval::span(0, 1),
        _ => match decl.kind() {
            MapKind::Counter => Interval::span(0, u64::MAX),
            MapKind::TokenBucket { tokens, .. } => Interval::span(0, u64::from(tokens)),
        },
    }
}

/// Propagates one conditional branch's refined states along its feasible
/// edges, recording always/never-taken lints.
#[allow(clippy::too_many_arguments)]
fn branch(
    pc: usize,
    len: usize,
    off: u16,
    a: crate::ir::Reg,
    b: Src,
    regs: Regs,
    taken: Option<(Interval, Interval)>,
    fall: Option<(Interval, Interval)>,
    states: &mut [Option<Regs>],
    edges: &mut Vec<usize>,
    out: &mut Analysis,
) {
    fn merge(states: &mut [Option<Regs>], target: usize, incoming: Regs) {
        match &mut states[target] {
            None => states[target] = Some(incoming),
            Some(cur) => {
                for (c, i) in cur.iter_mut().zip(incoming.iter()) {
                    *c = c.join(*i);
                }
            }
        }
    }
    let apply = |refined: (Interval, Interval)| -> Regs {
        let mut next = regs;
        if let Some(slot) = next.get_mut(a.0 as usize) {
            *slot = refined.0;
        }
        if let Src::Reg(r) = b {
            if let Some(slot) = next.get_mut(r.0 as usize) {
                *slot = refined.1;
            }
        }
        next
    };
    let target = pc + 1 + off as usize;
    match &taken {
        Some(refined) if target < len => {
            merge(states, target, apply(*refined));
            edges.push(target);
        }
        _ => {}
    }
    match &fall {
        Some(refined) if pc + 1 < len => {
            merge(states, pc + 1, apply(*refined));
            edges.push(pc + 1);
        }
        _ => {}
    }
    if taken.is_none() {
        out.lints.push(Lint::NeverTaken { pc });
    }
    if fall.is_none() {
        out.lints.push(Lint::AlwaysTaken { pc });
    }
}

/// Backward liveness over the feasible edges: a side-effect-free write
/// whose register no successor reads is a dead store. Reverse program
/// order is a reverse topological order of the DAG, so one pass is exact.
fn dead_stores(program: &FilterProgram, succs: &[Option<Vec<usize>>], lints: &mut Vec<Lint>) {
    let len = program.insns.len();
    let mut live: Vec<u8> = vec![0; len];
    let bit = |r: crate::ir::Reg| 1u8 << (r.0 % 8);
    for pc in (0..len).rev() {
        let Some(ss) = &succs[pc] else { continue };
        let mut out: u8 = 0;
        for &s in ss {
            out |= live[s];
        }
        let insn = &program.insns[pc];
        let (reads, write, pure_store): (u8, Option<crate::ir::Reg>, bool) = match insn {
            Insn::Ld { dst, .. } | Insn::LdImm { dst, .. } | Insn::LdPay { dst, .. } => {
                (0, Some(*dst), true)
            }
            Insn::And { dst, src } | Insn::Or { dst, src } => {
                let mut r = bit(*dst);
                if let Src::Reg(s) = src {
                    r |= bit(*s);
                }
                (r, Some(*dst), true)
            }
            Insn::Jeq { a, b, .. }
            | Insn::Jne { a, b, .. }
            | Insn::Jlt { a, b, .. }
            | Insn::Jgt { a, b, .. } => {
                let mut r = bit(*a);
                if let Src::Reg(s) = b {
                    r |= bit(*s);
                }
                (r, None, false)
            }
            Insn::JInSet { a, .. } => (bit(*a), None, false),
            // Map reads are pure; bump/take mutate state, so their
            // (possibly unused) result register is not a dead store.
            Insn::MLoad { dst, idx, .. } => (bit(*idx), Some(*dst), true),
            Insn::MBump { dst, idx, .. } | Insn::MTake { dst, idx, .. } => {
                (bit(*idx), Some(*dst), false)
            }
            Insn::Ja { .. } | Insn::Accept | Insn::Reject => (0, None, false),
        };
        if let Some(d) = write {
            if pure_store && out & bit(d) == 0 {
                lints.push(Lint::DeadStore { pc, reg: d.0 });
            }
            out &= !bit(d);
        }
        live[pc] = out | reads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{EventKind, Reg};
    use crate::state::StateMap;

    fn eth(insns: Vec<Insn>) -> FilterProgram {
        FilterProgram::new(EventKind::EthRecv, insns)
    }

    #[test]
    fn masked_index_proves_in_bounds() {
        let maps = vec![StateMap::new("flows", MapKind::Counter, 64)];
        let p = FilterProgram::new(
            EventKind::EthRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::EthType,
                },
                Insn::And {
                    dst: Reg(0),
                    src: Src::Imm(0x3F),
                },
                Insn::MBump {
                    dst: Reg(1),
                    map: 0,
                    idx: Reg(0),
                },
                Insn::Accept,
            ],
        )
        .with_state(maps, 64 * 8);
        let a = analyze(&p);
        assert!(a.errors.is_empty(), "{:?}", a.errors);
        assert_eq!(a.state_bytes, 512);
        assert_eq!(a.bound, 1 + 1 + 6 + 1);
    }

    #[test]
    fn unmasked_index_is_rejected() {
        let maps = vec![StateMap::new("flows", MapKind::Counter, 64)];
        let p = FilterProgram::new(
            EventKind::EthRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::EthType, // up to 0xFFFF, capacity only 64
                },
                Insn::MBump {
                    dst: Reg(1),
                    map: 0,
                    idx: Reg(0),
                },
                Insn::Accept,
            ],
        )
        .with_state(maps, 64 * 8);
        let a = analyze(&p);
        assert!(a.errors.iter().any(|e| matches!(
            e,
            VerifyError::MapIndexOutOfBounds {
                hi: 0xFFFF,
                capacity: 64,
                ..
            }
        )));
    }

    #[test]
    fn over_budget_state_is_rejected() {
        let maps = vec![StateMap::new("flows", MapKind::Counter, 64)];
        let p = eth(vec![Insn::Accept]).with_state(maps, 100);
        let a = analyze(&p);
        assert!(a.errors.iter().any(|e| matches!(
            e,
            VerifyError::StateOverBudget {
                bytes: 512,
                budget: 100
            }
        )));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let maps = vec![StateMap::new("flows", MapKind::Counter, 4)];
        let p = FilterProgram::new(
            EventKind::EthRecv,
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::MTake {
                    dst: Reg(1),
                    map: 0,
                    idx: Reg(0),
                },
                Insn::Accept,
            ],
        )
        .with_state(maps, 32);
        let a = analyze(&p);
        assert!(a
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::MapKindMismatch { .. })));
    }

    #[test]
    fn constant_branches_lint_and_tighten_the_bound() {
        // r0 = 5; if r0 == 5 goto Accept; (dead) LdPay; LdPay; Reject
        let p = eth(vec![
            Insn::LdImm {
                dst: Reg(0),
                imm: 5,
            },
            Insn::Jeq {
                a: Reg(0),
                b: Src::Imm(5),
                off: 2,
            },
            Insn::LdPay {
                dst: Reg(1),
                off: 0,
                width: Width::W32,
            },
            Insn::Reject,
            Insn::Accept,
        ]);
        let a = analyze(&p);
        assert!(a.lints.contains(&Lint::AlwaysTaken { pc: 1 }));
        assert!(a.lints.contains(&Lint::Unreachable { pc: 2 }));
        assert!(a.lints.contains(&Lint::Unreachable { pc: 3 }));
        // Bound counts only the feasible path: LdImm + Jeq + Accept.
        assert_eq!(a.bound, 3);
        assert!(a.errors.is_empty());
    }

    #[test]
    fn flag_range_makes_impossible_compare_a_lint() {
        // A TCP flag is 0/1; comparing it against 2 never takes.
        let p = FilterProgram::new(
            EventKind::TcpRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::TcpFlagSyn,
                },
                Insn::Jeq {
                    a: Reg(0),
                    b: Src::Imm(2),
                    off: 1,
                },
                Insn::Accept,
                Insn::Reject,
            ],
        );
        let a = analyze(&p);
        assert!(a.lints.contains(&Lint::NeverTaken { pc: 1 }));
        assert!(a.lints.contains(&Lint::Unreachable { pc: 3 }));
    }

    #[test]
    fn dead_store_is_linted() {
        let p = eth(vec![
            Insn::LdImm {
                dst: Reg(1),
                imm: 9,
            },
            Insn::Accept,
        ]);
        let a = analyze(&p);
        assert!(a.lints.contains(&Lint::DeadStore { pc: 0, reg: 1 }));
    }

    #[test]
    fn range_refinement_follows_lt_chains() {
        // port < 1024 on the taken edge, then a membership bump indexed by
        // port & 0x3FF stays within a 1024-slot map.
        let maps = vec![StateMap::new("ports", MapKind::Counter, 1024)];
        let p = FilterProgram::new(
            EventKind::UdpRecv,
            vec![
                Insn::Ld {
                    dst: Reg(0),
                    field: Field::UdpDstPort,
                },
                Insn::Jlt {
                    a: Reg(0),
                    b: Src::Imm(1024),
                    off: 1,
                },
                Insn::Reject,
                Insn::MBump {
                    dst: Reg(1),
                    map: 0,
                    idx: Reg(0),
                },
                Insn::Accept,
            ],
        )
        .with_state(maps, 8192);
        let a = analyze(&p);
        // The refined [0, 1023] interval proves the access in bounds with
        // no mask instruction at all.
        assert!(a.errors.is_empty(), "{:?}", a.errors);
    }

    #[test]
    fn clean_program_has_no_lints() {
        let p = eth(vec![
            Insn::Ld {
                dst: Reg(0),
                field: Field::EthType,
            },
            Insn::Jne {
                a: Reg(0),
                b: Src::Imm(0x0800),
                off: 1,
            },
            Insn::Accept,
            Insn::Reject,
        ]);
        let a = analyze(&p);
        assert!(a.lints.is_empty(), "{:?}", a.lints);
        assert_eq!(a.bound, 3);
    }
}
