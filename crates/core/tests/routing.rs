//! End-to-end tests of the in-kernel IP router: two subnets joined by a
//! router machine, hosts configured with gateways.

use std::cell::{Cell, RefCell};
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_core::{AppHandler, IpRouter, PlexusStack, StackConfig, TcpCallbacks, UdpRecv};
use plexus_kernel::domain::ExtensionSpec;
use plexus_net::ether::MacAddr;
use plexus_net::udp::UdpConfig;
use plexus_sim::nic::{Medium, Nic, NicProfile};
use plexus_sim::time::SimDuration;
use plexus_sim::World;

fn net1(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, last)
}

fn net2(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 2, last)
}

/// host-a (10.0.1.2) --[eth segment 1]-- router --[segment 2]-- host-b (10.0.2.2)
struct Topology {
    world: World,
    host_a: Rc<PlexusStack>,
    host_b: Rc<PlexusStack>,
    router: Rc<IpRouter>,
    nic_a: Rc<Nic>,
}

fn build(profile_a: NicProfile, profile_b: NicProfile) -> Topology {
    let mut world = World::new();
    let ma = world.add_machine("host-a");
    let mr = world.add_machine("router");
    let mb = world.add_machine("host-b");

    let seg1 = Medium::new(SimDuration::from_micros(1), true);
    let seg2 = Medium::new(SimDuration::from_micros(1), true);
    let nic_a = Nic::new(profile_a.clone(), &seg1);
    let nic_r1 = Nic::new(profile_a, &seg1);
    let nic_r2 = Nic::new(profile_b.clone(), &seg2);
    let nic_b = Nic::new(profile_b, &seg2);

    let host_a = PlexusStack::attach(
        &ma,
        &nic_a.clone(),
        StackConfig::interrupt(net1(2), MacAddr::local(1)).with_gateway(net1(1)),
    );
    let host_b = PlexusStack::attach(
        &mb,
        &nic_b,
        StackConfig::interrupt(net2(2), MacAddr::local(2)).with_gateway(net2(1)),
    );
    let router = IpRouter::attach(
        &mr,
        &[
            (nic_r1, net1(1), MacAddr::local(101)),
            (nic_r2, net2(1), MacAddr::local(102)),
        ],
    );
    Topology {
        world,
        host_a,
        host_b,
        router,
        nic_a,
    }
}

fn spec() -> ExtensionSpec {
    ExtensionSpec::typesafe(
        "routed-app",
        &["UDP.Bind", "UDP.Send", "TCP.Listen", "TCP.Connect"],
    )
}

#[test]
fn udp_crosses_the_router_and_back() {
    let mut t = build(NicProfile::ethernet_lance(), NicProfile::ethernet_lance());
    let aext = t.host_a.link_extension(&spec()).unwrap();
    let bext = t.host_b.link_extension(&spec()).unwrap();

    let echo_slot: Rc<RefCell<Option<Rc<plexus_core::UdpEndpoint>>>> = Rc::new(RefCell::new(None));
    let es = echo_slot.clone();
    let bep = t
        .host_b
        .udp()
        .bind(
            &bext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |ctx, ev: &UdpRecv| {
                let ep = es.borrow().clone().unwrap();
                ep.send_in(ctx, ev.src, ev.src_port, &ev.payload.to_vec())
                    .unwrap();
            }),
        )
        .unwrap();
    *echo_slot.borrow_mut() = Some(bep);

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let src_seen: Rc<Cell<Option<Ipv4Addr>>> = Rc::new(Cell::new(None));
    let (g, ss) = (got.clone(), src_seen.clone());
    let aep = t
        .host_a
        .udp()
        .bind(
            &aext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, ev: &UdpRecv| {
                *g.borrow_mut() = ev.payload.to_vec();
                ss.set(Some(ev.src));
            }),
        )
        .unwrap();

    // No ARP seeding anywhere: host->router and router->host resolution
    // must work on demand on both segments.
    aep.send(t.world.engine_mut(), net2(2), 7, b"over the hill")
        .unwrap();
    t.world.run();

    assert_eq!(*got.borrow(), b"over the hill");
    assert_eq!(src_seen.get(), Some(net2(2)), "source survives forwarding");
    assert_eq!(
        t.router.stats().forwarded,
        2,
        "request + reply each forwarded"
    );
    assert_eq!(t.router.stats().no_route, 0);
}

#[test]
fn tcp_works_across_subnets() {
    let mut t = build(NicProfile::ethernet_lance(), NicProfile::ethernet_lance());
    let aext = t.host_a.link_extension(&spec()).unwrap();
    let bext = t.host_b.link_extension(&spec()).unwrap();

    t.host_b
        .tcp()
        .listen(&bext, 80, |_, conn| {
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(|ctx, conn, data| {
                    let mut out = b"routed:".to_vec();
                    out.extend_from_slice(data);
                    conn.send_in(ctx, &out);
                })),
                ..Default::default()
            });
        })
        .unwrap();

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let conn = t
        .host_a
        .tcp()
        .connect(&aext, t.world.engine_mut(), (net2(2), 80))
        .unwrap();
    let g = got.clone();
    conn.set_callbacks(TcpCallbacks {
        on_connected: Some(Rc::new(|ctx, conn| conn.send_in(ctx, b"hello"))),
        on_data: Some(Rc::new(move |_, _, data| {
            g.borrow_mut().extend_from_slice(data);
        })),
        ..Default::default()
    });
    t.world.run_for(SimDuration::from_secs(10));
    assert_eq!(*got.borrow(), b"routed:hello");
    assert!(t.router.stats().forwarded >= 6, "handshake + data + acks");
}

#[test]
fn router_answers_pings_on_both_interfaces() {
    let mut t = build(NicProfile::ethernet_lance(), NicProfile::ethernet_lance());
    t.host_a.ping(t.world.engine_mut(), net1(1), 1, 1, b"hi");
    t.host_b.ping(t.world.engine_mut(), net2(1), 1, 1, b"hi");
    t.world.run();
    assert_eq!(t.router.stats().echoes, 2);
    assert!(t.host_a.stats().ip_rx >= 1, "reply reached host-a");
    assert!(t.host_b.stats().ip_rx >= 1, "reply reached host-b");
}

#[test]
fn large_datagrams_refragment_for_a_smaller_egress_mtu() {
    // host-a on a T3 (MTU 4470), host-b on Ethernet (MTU 1500): a 4000-byte
    // datagram leaves host-a in one piece and must be re-fragmented by the
    // router for the Ethernet side.
    let mut t = build(NicProfile::dec_t3(), NicProfile::ethernet_lance());
    let aext = t.host_a.link_extension(&spec()).unwrap();
    let bext = t.host_b.link_extension(&spec()).unwrap();
    let data: Vec<u8> = (0u32..4000).map(|x| (x % 239) as u8).collect();
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    t.host_b
        .udp()
        .bind(
            &bext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, ev: &UdpRecv| {
                *g.borrow_mut() = ev.payload.to_vec();
            }),
        )
        .unwrap();
    let aep = t
        .host_a
        .udp()
        .bind(
            &aext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    aep.send(t.world.engine_mut(), net2(2), 7, &data).unwrap();
    t.world.run();
    assert_eq!(*got.borrow(), data, "payload reassembled at the far host");
    assert!(t.router.stats().refragmented >= 1);
}

#[test]
fn ttl_expiry_generates_time_exceeded() {
    // A frame with TTL 1 injected at host-a's NIC toward the router: the
    // router must drop it and answer with ICMP Time Exceeded.
    let mut t = build(NicProfile::ethernet_lance(), NicProfile::ethernet_lance());
    // Resolve ARP first with a normal ping to the router.
    t.host_a.ping(t.world.engine_mut(), net1(1), 9, 1, b"warm");
    t.world.run();

    // Build a TTL-1 UDP datagram host-a -> host-b by hand and put it on
    // segment 1 addressed to the router's MAC.
    use plexus_net::ip::{encapsulate, IpHeader};
    use plexus_net::mbuf::Mbuf;
    let hdr = IpHeader {
        src: net1(2),
        dst: net2(2),
        protocol: plexus_net::ip::proto::UDP,
        ident: 777,
        ttl: 1,
        more_fragments: false,
        frag_offset: 0,
    };
    let payload = plexus_net::udp::encapsulate(
        net1(2),
        net2(2),
        2000,
        7,
        UdpConfig::default(),
        Mbuf::from_payload(64, b"doomed"),
    );
    let mut dgram = encapsulate(&hdr, payload);
    let hdr_space = dgram.prepend(14);
    plexus_net::ether::write_header(
        hdr_space,
        MacAddr::local(101), // The router's segment-1 MAC.
        MacAddr::local(1),
        plexus_net::ether::EtherType::IPV4,
    );
    let bytes = dgram.to_vec();
    let at = t.world.engine().now();
    t.nic_a.transmit_frame(t.world.engine_mut(), at, bytes);
    t.world.run();

    assert_eq!(t.router.stats().ttl_expired, 1);
    assert_eq!(t.router.stats().forwarded, 0, "nothing was forwarded");
}

#[test]
fn off_subnet_without_gateway_is_counted_as_no_route() {
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    // No gateway configured.
    let sa = PlexusStack::attach(
        &a,
        &nics[0],
        StackConfig::interrupt(net1(2), MacAddr::local(1)),
    );
    let _sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(net1(3), MacAddr::local(2)),
    );
    let ext = sa.link_extension(&spec()).unwrap();
    let ep = sa
        .udp()
        .bind(
            &ext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    ep.send(world.engine_mut(), net2(9), 7, b"nowhere to go")
        .unwrap();
    world.run();
    assert_eq!(sa.stats().no_route, 1);
}
