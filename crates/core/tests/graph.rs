//! End-to-end tests of the Plexus protocol graph over the simulated
//! network: two (or three) machines, full Ethernet/ARP/IP/UDP/TCP paths,
//! protection properties, and runtime adaptation.

use std::cell::{Cell, RefCell};
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_core::{AppHandler, PlexusError, PlexusStack, SourcePolicy, StackConfig, TcpCallbacks};
use plexus_kernel::domain::{ExtensionSpec, LinkError};
use plexus_net::ether::{EtherType, MacAddr};
use plexus_net::udp::UdpConfig;
use plexus_sim::nic::NicProfile;
use plexus_sim::time::SimDuration;
use plexus_sim::World;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn ext_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["UDP.Bind", "UDP.Send", "Mbuf.Alloc"])
}

/// Two machines on a private Ethernet segment, Plexus on both.
fn two_plexus(mode_interrupt: bool) -> (World, Rc<PlexusStack>, Rc<PlexusStack>) {
    let mut world = World::new();
    let a = world.add_machine("alpha-a");
    let b = world.add_machine("alpha-b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let cfg = |ipa, maca| {
        if mode_interrupt {
            StackConfig::interrupt(ipa, maca)
        } else {
            StackConfig::thread(ipa, maca)
        }
    };
    let sa = PlexusStack::attach(&a, &nics[0], cfg(ip(1), MacAddr::local(1)));
    let sb = PlexusStack::attach(&b, &nics[1], cfg(ip(2), MacAddr::local(2)));
    (world, sa, sb)
}

fn seed_arp_both(sa: &PlexusStack, sb: &PlexusStack) {
    sa.seed_arp(sb.ip(), sb.mac());
    sb.seed_arp(sa.ip(), sa.mac());
}

#[test]
fn udp_ping_pong_round_trip() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);

    let cext = client.link_extension(&ext_spec("PingClient")).unwrap();
    let sext = server.link_extension(&ext_spec("PingServer")).unwrap();

    // Server: echo every datagram back to its sender.
    let echo_ep: Rc<RefCell<Option<Rc<plexus_core::UdpEndpoint>>>> = Rc::new(RefCell::new(None));
    let echo_for_handler = echo_ep.clone();
    let ep = server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |ctx, ev: &plexus_core::UdpRecv| {
                let ep = echo_for_handler.borrow().clone().expect("endpoint set");
                ep.send_in(ctx, ev.src, ev.src_port, &ev.payload.to_vec())
                    .expect("echo send");
            }),
        )
        .expect("server bind");
    *echo_ep.borrow_mut() = Some(ep);

    // Client: record the reply arrival time.
    let reply_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
    let reply_data: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let (ra, rd) = (reply_at.clone(), reply_data.clone());
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(move |ctx, ev: &plexus_core::UdpRecv| {
                ra.set(Some(ctx.lease.now().as_nanos()));
                *rd.borrow_mut() = ev.payload.to_vec();
            }),
        )
        .expect("client bind");

    let t0 = world.engine().now();
    cep.send(world.engine_mut(), ip(2), 7, b"12345678").unwrap();
    world.run();

    let arrived = reply_at.get().expect("reply came back");
    assert_eq!(*reply_data.borrow(), b"12345678");
    let rtt_us = (arrived - t0.as_nanos()) as f64 / 1000.0;
    // Paper, Figure 5: <600 us on Ethernet for Plexus at interrupt level.
    assert!(
        (300.0..900.0).contains(&rtt_us),
        "Ethernet UDP RTT out of plausible range: {rtt_us} us"
    );
}

#[test]
fn thread_mode_is_slower_than_interrupt_mode() {
    let rtt = |interrupt: bool| -> u64 {
        let (mut world, client, server) = two_plexus(interrupt);
        seed_arp_both(&client, &server);
        let cext = client.link_extension(&ext_spec("C")).unwrap();
        let sext = server.link_extension(&ext_spec("S")).unwrap();
        let ep_slot: Rc<RefCell<Option<Rc<plexus_core::UdpEndpoint>>>> =
            Rc::new(RefCell::new(None));
        let eh = ep_slot.clone();
        let mk_handler = move |ctx: &mut plexus_kernel::RaiseCtx<'_>, ev: &plexus_core::UdpRecv| {
            let ep = eh.borrow().clone().unwrap();
            ep.send_in(ctx, ev.src, ev.src_port, &ev.payload.to_vec())
                .unwrap();
        };
        let handler = if interrupt {
            AppHandler::interrupt(mk_handler)
        } else {
            AppHandler::thread(mk_handler)
        };
        let sep = server
            .udp()
            .bind(&sext, 7, UdpConfig::default(), handler)
            .unwrap();
        *ep_slot.borrow_mut() = Some(sep);
        let done: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        let d = done.clone();
        let recv = move |ctx: &mut plexus_kernel::RaiseCtx<'_>, _ev: &plexus_core::UdpRecv| {
            d.set(Some(ctx.lease.now().as_nanos()));
        };
        let handler = if interrupt {
            AppHandler::interrupt(recv)
        } else {
            AppHandler::thread(recv)
        };
        let cep = client
            .udp()
            .bind(&cext, 2000, UdpConfig::default(), handler)
            .unwrap();
        cep.send(world.engine_mut(), ip(2), 7, b"x").unwrap();
        world.run();
        done.get().expect("reply")
    };
    let fast = rtt(true);
    let slow = rtt(false);
    assert!(
        slow > fast + 100_000,
        "thread mode ({slow} ns) should cost well over interrupt mode ({fast} ns)"
    );
}

#[test]
fn endpoints_cannot_snoop_each_other() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let cext = client.link_extension(&ext_spec("C")).unwrap();

    let a_hits = Rc::new(Cell::new(0u32));
    let b_hits = Rc::new(Cell::new(0u32));
    let (ah, bh) = (a_hits.clone(), b_hits.clone());
    server
        .udp()
        .bind(
            &sext,
            5000,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, _| {
                ah.set(ah.get() + 1);
            }),
        )
        .unwrap();
    server
        .udp()
        .bind(
            &sext,
            5001,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, _| {
                bh.set(bh.get() + 1);
            }),
        )
        .unwrap();

    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    for _ in 0..3 {
        cep.send(world.engine_mut(), ip(2), 5000, b"for A only")
            .unwrap();
        world.run();
    }
    assert_eq!(a_hits.get(), 3);
    assert_eq!(b_hits.get(), 0, "B must never see A's datagrams");
    // The dispatcher positively filtered B: with the demux index its
    // guard is proven non-matching and skipped without running; with the
    // index off it is evaluated and rejected. Either way the reject is
    // accounted.
    let stats = server.dispatcher().stats();
    assert!(stats.guard_rejects + stats.demux_skipped > 0);
    assert!(stats.demux_hits > 0, "UDP delivery went through the index");
}

#[test]
fn port_collisions_are_refused() {
    let (_world, _client, server) = two_plexus(true);
    let ext = server.link_extension(&ext_spec("S")).unwrap();
    server
        .udp()
        .bind(
            &ext,
            9000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    let err = server
        .udp()
        .bind(
            &ext,
            9000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap_err();
    assert_eq!(err, PlexusError::PortInUse(9000));
}

#[test]
fn spoofed_source_is_rejected_under_verify_policy() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let ext = client.link_extension(&ext_spec("C")).unwrap();
    let ep = client
        .udp()
        .bind(
            &ext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    // Claiming someone else's address fails...
    let err = ep
        .send_verified(
            world.engine_mut(),
            ip(99),
            ip(2),
            7,
            b"x",
            SourcePolicy::Verify,
        )
        .unwrap_err();
    assert_eq!(err, PlexusError::SpoofDetected);
    assert_eq!(client.udp().spoofs_blocked(), 1);
    // ...claiming our own succeeds.
    ep.send_verified(
        world.engine_mut(),
        ip(1),
        ip(2),
        7,
        b"x",
        SourcePolicy::Verify,
    )
    .unwrap();
}

#[test]
fn linking_rejects_out_of_domain_imports() {
    let (_world, _client, server) = two_plexus(true);
    let rogue = ExtensionSpec::typesafe("Rogue", &["UDP.Bind", "VM.MapKernelMemory"]);
    match server.link_extension(&rogue) {
        Err(PlexusError::Link(LinkError::Unresolved(syms))) => {
            assert_eq!(syms, vec!["VM.MapKernelMemory"]);
        }
        other => panic!("expected link failure, got {other:?}"),
    }
}

#[test]
fn raw_ether_attach_cannot_claim_system_protocols() {
    let (_world, _client, server) = two_plexus(true);
    let ext = server.link_extension(&ext_spec("AM")).unwrap();
    for taken in [EtherType::IPV4, EtherType::ARP] {
        let err = server
            .attach_ether(&ext, taken, AppHandler::interrupt(|_, _| {}))
            .unwrap_err();
        assert!(matches!(err, PlexusError::SnoopDenied(_)));
    }
    // And the experimental type is fine.
    server
        .attach_ether(
            &ext,
            EtherType::ACTIVE_MESSAGE,
            AppHandler::interrupt(|_, _| {}),
        )
        .expect("experimental EtherType allowed");
}

#[test]
fn icmp_echo_round_trip() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    client.ping(world.engine_mut(), ip(2), 77, 1, b"ping!");
    world.run();
    assert_eq!(server.stats().icmp_echoes, 1);
    // The reply made it back up our IP layer.
    assert!(client.stats().ip_rx >= 1);
}

#[test]
fn arp_resolves_on_demand_and_queued_sends_drain() {
    let (mut world, client, server) = two_plexus(true);
    // No ARP seeding: the first datagram must trigger a request/reply.
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let got = Rc::new(Cell::new(0u32));
    let g = got.clone();
    server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, _| {
                g.set(g.get() + 1);
            }),
        )
        .unwrap();
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    cep.send(world.engine_mut(), ip(2), 7, b"needs arp")
        .unwrap();
    world.run();
    assert_eq!(got.get(), 1, "datagram parked on ARP then delivered");
    assert_eq!(server.stats().arp_replies, 1);
    assert!(client.stats().arp_queued >= 1);
}

#[test]
fn large_udp_datagrams_fragment_and_reassemble() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let data: Vec<u8> = (0u32..4000).map(|x| (x % 241) as u8).collect();
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, ev: &plexus_core::UdpRecv| {
                *g.borrow_mut() = ev.payload.to_vec();
            }),
        )
        .unwrap();
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    cep.send(world.engine_mut(), ip(2), 7, &data).unwrap();
    world.run();
    assert_eq!(*got.borrow(), data, "4000 B > Ethernet MTU must reassemble");
}

#[test]
fn closed_endpoint_stops_receiving_and_frees_port() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let hits = Rc::new(Cell::new(0u32));
    let h = hits.clone();
    let sep = server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, _| {
                h.set(h.get() + 1);
            }),
        )
        .unwrap();
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    cep.send(world.engine_mut(), ip(2), 7, b"one").unwrap();
    world.run();
    sep.close();
    cep.send(world.engine_mut(), ip(2), 7, b"two").unwrap();
    world.run();
    assert_eq!(hits.get(), 1, "no delivery after close");
    assert!(sep.send(world.engine_mut(), ip(1), 2000, b"x").is_err());
    // The port is free again (runtime adaptation).
    server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .expect("port reusable after close");
}

#[test]
fn checksum_disabled_udp_is_a_special_implementation() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let nocheck = UdpConfig { checksum: false };
    let got = Rc::new(Cell::new(0u32));
    let g = got.clone();
    server
        .udp()
        .bind(
            &sext,
            7001,
            nocheck,
            AppHandler::interrupt(move |_, _| {
                g.set(g.get() + 1);
            }),
        )
        .unwrap();
    let standard_before = server.udp().delivered();
    let cep = client
        .udp()
        .bind(&cext, 2000, nocheck, AppHandler::interrupt(|_, _| {}))
        .unwrap();
    cep.send(world.engine_mut(), ip(2), 7001, b"video-ish")
        .unwrap();
    world.run();
    assert_eq!(got.get(), 1);
    assert_eq!(
        server.udp().delivered(),
        standard_before,
        "special implementation bypasses the standard UDP node"
    );
}

#[test]
fn tcp_connect_transfer_close_end_to_end() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();

    // Server: echo-with-prefix service on port 80.
    server
        .tcp()
        .listen(&sext, 80, |_, conn| {
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(|ctx, conn, data| {
                    let mut reply = b"echo:".to_vec();
                    reply.extend_from_slice(data);
                    conn.send_in(ctx, &reply);
                })),
                // Orderly server: when the client half-closes, close too.
                on_peer_close: Some(Rc::new(|ctx, conn| conn.close_in(ctx))),
                ..Default::default()
            });
        })
        .unwrap();

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let connected = Rc::new(Cell::new(false));
    let closed = Rc::new(Cell::new(false));
    let conn = client
        .tcp()
        .connect(&cext, world.engine_mut(), (ip(2), 80))
        .unwrap();
    let (g, c0, cl) = (got.clone(), connected.clone(), closed.clone());
    conn.set_callbacks(TcpCallbacks {
        on_connected: Some(Rc::new(move |ctx, conn| {
            c0.set(true);
            conn.send_in(ctx, b"hello plexus");
        })),
        on_data: Some(Rc::new(move |_, _, data| {
            g.borrow_mut().extend_from_slice(data);
        })),
        on_closed: Some(Rc::new(move |_, _| cl.set(true))),
        ..Default::default()
    });
    world.run_for(SimDuration::from_millis(500));
    assert!(connected.get(), "handshake completed");
    assert_eq!(*got.borrow(), b"echo:hello plexus");

    conn.close(world.engine_mut());
    world.run_for(SimDuration::from_secs(5));
    assert_eq!(conn.state(), plexus_net::tcp::TcpState::Closed);
}

#[test]
fn tcp_bulk_transfer_is_intact() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let received: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let r = received.clone();
    server
        .tcp()
        .listen(&sext, 5001, move |_, conn| {
            let r = r.clone();
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(move |_, _, data| {
                    r.borrow_mut().extend_from_slice(data);
                })),
                ..Default::default()
            });
        })
        .unwrap();
    let data: Vec<u8> = (0u32..100_000).map(|x| (x % 253) as u8).collect();
    let conn = client
        .tcp()
        .connect(&cext, world.engine_mut(), (ip(2), 5001))
        .unwrap();
    let payload = data.clone();
    conn.set_callbacks(TcpCallbacks {
        on_connected: Some(Rc::new(move |ctx, conn| {
            conn.send_in(ctx, &payload);
        })),
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(30));
    assert_eq!(received.borrow().len(), data.len());
    assert_eq!(*received.borrow(), data);
}

#[test]
fn udp_redirect_forwards_to_secondary_host() {
    // client -> forwarder (redirects port 7777) -> server.
    let mut world = World::new();
    let mc = world.add_machine("client");
    let mf = world.add_machine("forwarder");
    let ms = world.add_machine("server");
    let (_m, nics) = world.connect(
        &[&mc, &mf, &ms],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let client = PlexusStack::attach(
        &mc,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let fwd = PlexusStack::attach(
        &mf,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    let server = PlexusStack::attach(
        &ms,
        &nics[2],
        StackConfig::interrupt(ip(3), MacAddr::local(3)),
    );
    for (a, b) in [(&client, &fwd), (&client, &server), (&fwd, &server)] {
        a.seed_arp(b.ip(), b.mac());
        b.seed_arp(a.ip(), a.mac());
    }
    let fext = fwd.link_extension(&ext_spec("Fwd")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let cext = client.link_extension(&ext_spec("C")).unwrap();

    fwd.udp().redirect(&fext, 7777, ip(3)).unwrap();
    type Received = Vec<(Ipv4Addr, Vec<u8>)>;
    let got: Rc<RefCell<Received>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    server
        .udp()
        .bind(
            &sext,
            7777,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, ev: &plexus_core::UdpRecv| {
                g.borrow_mut().push((ev.src, ev.payload.to_vec()));
            }),
        )
        .unwrap();
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    // Client sends to the FORWARDER's address.
    cep.send(world.engine_mut(), ip(2), 7777, b"balance me")
        .unwrap();
    world.run();
    let got = got.borrow();
    assert_eq!(got.len(), 1, "datagram reached the secondary host");
    assert_eq!(got[0].0, ip(1), "original source preserved end-to-end");
    assert_eq!(got[0].1, b"balance me");
}

#[test]
fn tcp_redirect_preserves_end_to_end_semantics() {
    // The paper's §5.2 argument: the in-kernel forwarder redirects
    // *control* packets too, so connection establishment and teardown work
    // end-to-end between client and server.
    let mut world = World::new();
    let mc = world.add_machine("client");
    let mf = world.add_machine("forwarder");
    let ms = world.add_machine("server");
    let (_m, nics) = world.connect(
        &[&mc, &mf, &ms],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let client = PlexusStack::attach(
        &mc,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let fwd = PlexusStack::attach(
        &mf,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    let server = PlexusStack::attach(
        &ms,
        &nics[2],
        StackConfig::interrupt(ip(3), MacAddr::local(3)),
    );
    for (a, b) in [(&client, &fwd), (&client, &server), (&fwd, &server)] {
        a.seed_arp(b.ip(), b.mac());
        b.seed_arp(a.ip(), a.mac());
    }
    let fext = fwd.link_extension(&ext_spec("Fwd")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    let cext = client.link_extension(&ext_spec("C")).unwrap();

    // DSR-style: the server answers on the forwarder's address.
    fwd.tcp().redirect(&fext, 8080, ip(3)).unwrap();
    server.add_ip_alias(ip(2));
    server
        .tcp()
        .listen(&sext, 8080, |_, conn| {
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(|ctx, conn, data| {
                    let mut out = b"from-backend:".to_vec();
                    out.extend_from_slice(data);
                    conn.send_in(ctx, &out);
                })),
                ..Default::default()
            });
        })
        .unwrap();

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    // Client connects to the FORWARDER.
    let conn = client
        .tcp()
        .connect(&cext, world.engine_mut(), (ip(2), 8080))
        .unwrap();
    let g = got.clone();
    conn.set_callbacks(TcpCallbacks {
        on_connected: Some(Rc::new(|ctx, conn| conn.send_in(ctx, b"GET /"))),
        on_data: Some(Rc::new(move |_, _, data| {
            g.borrow_mut().extend_from_slice(data);
        })),
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(5));
    assert_eq!(
        *got.borrow(),
        b"from-backend:GET /",
        "three-way handshake and data crossed the in-kernel redirector"
    );
    assert_eq!(conn.state(), plexus_net::tcp::TcpState::Established);
}

#[test]
fn special_tcp_implementation_coexists_with_standard() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();

    // TCP-special: claims port 9999 and counts raw segments itself.
    let raw_segments = Rc::new(Cell::new(0u32));
    let rs = raw_segments.clone();
    server
        .tcp()
        .claim_special(&sext, &[9999], move |_, _ev| {
            rs.set(rs.get() + 1);
        })
        .unwrap();

    // TCP-standard: normal service on port 80.
    let standard_data = Rc::new(RefCell::new(Vec::new()));
    let sd = standard_data.clone();
    server
        .tcp()
        .listen(&sext, 80, move |_, conn| {
            let sd = sd.clone();
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(move |_, _, data| {
                    sd.borrow_mut().extend_from_slice(data);
                })),
                ..Default::default()
            });
        })
        .unwrap();

    let before = server.tcp().segments_in();
    // A standard connection works.
    let conn = client
        .tcp()
        .connect(&cext, world.engine_mut(), (ip(2), 80))
        .unwrap();
    conn.set_callbacks(TcpCallbacks {
        on_connected: Some(Rc::new(|ctx, conn| conn.send_in(ctx, b"std"))),
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(2));
    assert_eq!(*standard_data.borrow(), b"std");
    assert!(server.tcp().segments_in() > before);

    // Segments to the special port go to the special implementation, not
    // the standard node.
    let mid = server.tcp().segments_in();
    let conn2 = client
        .tcp()
        .connect(&cext, world.engine_mut(), (ip(2), 9999))
        .unwrap();
    world.run_for(SimDuration::from_secs(2));
    assert!(raw_segments.get() > 0, "special implementation saw the SYN");
    assert_eq!(
        server.tcp().segments_in(),
        mid,
        "standard node must not see special-port segments"
    );
    let _ = conn2;
}

#[test]
fn ephemeral_time_limit_terminates_runaway_extension() {
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let mut cfg = StackConfig::interrupt(ip(1), MacAddr::local(1));
    cfg.ext_time_limit = Some(SimDuration::from_micros(50));
    let sa = PlexusStack::attach(&a, &nics[0], cfg);
    let sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    sa.seed_arp(sb.ip(), sb.mac());
    sb.seed_arp(sa.ip(), sa.mac());
    let aext = sa.link_extension(&ext_spec("Runaway")).unwrap();
    let bext = sb.link_extension(&ext_spec("C")).unwrap();

    sa.udp()
        .bind(
            &aext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(|ctx, _ev: &plexus_core::UdpRecv| {
                // A runaway handler trying to burn 10 ms at interrupt level.
                ctx.lease.charge(SimDuration::from_millis(10));
            }),
        )
        .unwrap();
    let cep = sb
        .udp()
        .bind(
            &bext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    cep.send(world.engine_mut(), ip(1), 7, b"trigger").unwrap();
    world.run();
    assert_eq!(
        sa.dispatcher().stats().terminations,
        1,
        "over-budget ephemeral handler must be terminated"
    );
    // The CPU only lost the 50 us allotment, not 10 ms.
    assert!(a.cpu().busy() < SimDuration::from_millis(1));
}

#[test]
fn mac_filter_discards_foreign_frames_unless_promiscuous() {
    // Three machines on one segment; A sends to B; C must filter the frame
    // at the driver (no promiscuous snooping), and the filter is a
    // privileged stack operation, not an extension API.
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let c = world.add_machine("c");
    let (_m, nics) = world.connect(
        &[&a, &b, &c],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let sa = PlexusStack::attach(
        &a,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    let sc = PlexusStack::attach(
        &c,
        &nics[2],
        StackConfig::interrupt(ip(3), MacAddr::local(3)),
    );
    sa.seed_arp(ip(2), MacAddr::local(2));
    sb.seed_arp(ip(1), MacAddr::local(1));

    let aext = sa.link_extension(&ext_spec("A")).unwrap();
    let bext = sb.link_extension(&ext_spec("B")).unwrap();
    let bep_slot: Rc<RefCell<Option<Rc<plexus_core::UdpEndpoint>>>> = Rc::new(RefCell::new(None));
    let bs = bep_slot.clone();
    let bep = sb
        .udp()
        .bind(
            &bext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |ctx, ev: &plexus_core::UdpRecv| {
                let ep = bs.borrow().clone().unwrap();
                ep.send_in(ctx, ev.src, ev.src_port, b"ok").unwrap();
            }),
        )
        .unwrap();
    *bep_slot.borrow_mut() = Some(bep);
    let aep = sa
        .udp()
        .bind(
            &aext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    aep.send(world.engine_mut(), ip(2), 7, b"unicast").unwrap();
    world.run();
    // C heard the frames on the shared wire but filtered them all.
    assert_eq!(sc.stats().eth_rx, 0);
    assert!(
        sc.stats().eth_filtered >= 2,
        "request + reply filtered at C"
    );

    // With the (privileged) promiscuous switch, C's driver accepts them —
    // but they die at C's IP layer, which is not their destination.
    sc.set_promiscuous(true);
    aep.send(world.engine_mut(), ip(2), 7, b"unicast2").unwrap();
    world.run();
    assert!(sc.stats().eth_rx > 0, "promiscuous driver accepts");
    assert!(sc.stats().ip_dropped > 0, "but IP drops foreign datagrams");
}

#[test]
fn detach_ether_stops_delivery_at_runtime() {
    let (mut world, client, server) = two_plexus(true);
    let ext = server.link_extension(&ext_spec("AM")).unwrap();
    let hits = Rc::new(Cell::new(0u32));
    let h = hits.clone();
    let id = server
        .attach_ether(
            &ext,
            EtherType::ACTIVE_MESSAGE,
            AppHandler::interrupt(move |_, _| {
                h.set(h.get() + 1);
            }),
        )
        .unwrap();
    client
        .send_ether(
            world.engine_mut(),
            server.mac(),
            EtherType::ACTIVE_MESSAGE,
            b"one",
        )
        .unwrap();
    world.run();
    assert_eq!(hits.get(), 1);
    assert!(server.detach_ether(id));
    assert!(!server.detach_ether(id), "double detach fails");
    client
        .send_ether(
            world.engine_mut(),
            server.mac(),
            EtherType::ACTIVE_MESSAGE,
            b"two",
        )
        .unwrap();
    world.run();
    assert_eq!(hits.get(), 1, "no delivery after detach");
}

#[test]
fn tcp_listen_conflicts_are_refused_and_unlisten_frees() {
    let (world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let ext = server.link_extension(&ext_spec("S")).unwrap();
    server.tcp().listen(&ext, 80, |_, _| {}).unwrap();
    let err = server.tcp().listen(&ext, 80, |_, _| {}).unwrap_err();
    assert_eq!(err, PlexusError::PortInUse(80));
    // claim_special and redirect also respect the reservation.
    assert!(server.tcp().claim_special(&ext, &[80], |_, _| {}).is_err());
    assert!(server.tcp().redirect(&ext, 80, ip(1)).is_err());
    assert!(server.tcp().unlisten(80));
    assert!(!server.tcp().unlisten(80));
    server
        .tcp()
        .listen(&ext, 80, |_, _| {})
        .expect("port freed");
    let _ = world;
}

#[test]
fn udp_redirect_conflicts_with_existing_binding() {
    let (_world, _client, server) = two_plexus(true);
    let ext = server.link_extension(&ext_spec("S")).unwrap();
    server
        .udp()
        .bind(
            &ext,
            9000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    let err = server.udp().redirect(&ext, 9000, ip(1)).unwrap_err();
    assert_eq!(err, PlexusError::PortInUse(9000));
}

#[test]
fn dispatcher_trace_shows_the_packet_walk() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();
    server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    server.dispatcher().enable_trace(16);
    cep.send(world.engine_mut(), ip(2), 7, b"traced").unwrap();
    world.run();
    let trace = server.dispatcher().trace();
    let names: Vec<&str> = trace.iter().map(|t| t.event.as_str()).collect();
    // Entries land in completion order, so the nested raises (upper
    // layers) appear before the layer that raised them: the packet's walk
    // through Figure 1's graph, read bottom-up.
    assert_eq!(
        names,
        vec!["Udp.PacketRecv", "Ip.PacketRecv", "Ethernet.PacketRecv"],
        "trace: {trace:?}"
    );
    // The Ip raise saw the ICMP and TCP guards reject; Ethernet saw ARP's.
    assert_eq!(trace[1].rejected, 2);
    assert_eq!(trace[2].rejected, 1);
}

#[test]
fn udp_to_unbound_port_elicits_port_unreachable() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    cep.send(world.engine_mut(), ip(2), 4444, b"anyone?")
        .unwrap();
    world.run();
    assert_eq!(server.udp().unreachable_sent(), 1);
    // The ICMP error datagram came back to the client's IP layer.
    assert!(client.stats().ip_rx >= 1);
}

#[test]
fn unanswered_arp_is_retried_then_abandoned() {
    // A lossy segment that eats every frame: ARP can never resolve.
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (medium, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    medium.set_faults(plexus_sim::nic::FaultInjector::new(1.0, 0.0, 5));
    let sa = PlexusStack::attach(
        &a,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let _sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    let ext = sa.link_extension(&ext_spec("C")).unwrap();
    let ep = sa
        .udp()
        .bind(
            &ext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    ep.send(world.engine_mut(), ip(2), 7, b"stranded").unwrap();
    world.run();
    assert_eq!(
        sa.stats().arp_failures,
        1,
        "parked packets dropped after retries"
    );
    // The original request plus two retries were broadcast (the medium
    // counts them as transmitted before eating them).
    assert_eq!(nics[0].stats().tx_frames, 3);
}

#[test]
fn graph_description_reflects_installed_extensions() {
    let (_world, _client, server) = two_plexus(true);
    let ext = server.link_extension(&ext_spec("S")).unwrap();
    let before = server.graph_description();
    assert!(before.contains("Ethernet.PacketRecv"));
    assert!(before.contains("Udp.PacketRecv"));
    // Bind two endpoints: two more guarded handler nodes under UDP.
    server
        .udp()
        .bind(
            &ext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    server
        .udp()
        .bind(
            &ext,
            8,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    let after = server.graph_description();
    let udp_line = after
        .lines()
        .find(|l| l.contains("Udp.PacketRecv"))
        .expect("UDP event listed");
    assert!(
        udp_line.contains("2 handler(s), 2 guarded"),
        "got: {udp_line}"
    );
}

#[test]
fn fifty_concurrent_tcp_connections_multiplex_cleanly() {
    // One server port, fifty simultaneous client connections: the
    // per-connection guards must demultiplex every segment to its own
    // connection, and all transfers must complete intact.
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    let sext = server.link_extension(&ext_spec("S")).unwrap();

    server
        .tcp()
        .listen(&sext, 80, |_, conn| {
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(|ctx, conn, data| {
                    // Echo, tagged with the connection's remote port so
                    // cross-delivery would be caught.
                    let mut out = conn.remote().1.to_be_bytes().to_vec();
                    out.extend_from_slice(data);
                    conn.send_in(ctx, &out);
                })),
                on_peer_close: Some(Rc::new(|ctx, conn| conn.close_in(ctx))),
                ..Default::default()
            });
        })
        .unwrap();

    const N: usize = 50;
    let mut conns = Vec::new();
    let results: Rc<RefCell<Vec<Option<Vec<u8>>>>> = Rc::new(RefCell::new(vec![None; N]));
    for i in 0..N {
        let conn = client
            .tcp()
            .connect(&cext, world.engine_mut(), (ip(2), 80))
            .unwrap();
        let payload = vec![i as u8; 32];
        let res = results.clone();
        let p2 = payload.clone();
        conn.set_callbacks(TcpCallbacks {
            on_connected: Some(Rc::new(move |ctx, conn| conn.send_in(ctx, &p2))),
            on_data: Some(Rc::new(move |_, _, data| {
                res.borrow_mut()[i] = Some(data.to_vec());
            })),
            ..Default::default()
        });
        conns.push((conn, payload));
    }
    world.run_for(SimDuration::from_secs(30));

    for (i, (conn, payload)) in conns.iter().enumerate() {
        let got = results.borrow()[i]
            .clone()
            .unwrap_or_else(|| panic!("connection {i} got no echo (state {:?})", conn.state()));
        let (tag, body) = got.split_at(2);
        assert_eq!(
            u16::from_be_bytes([tag[0], tag[1]]),
            conn.local_port(),
            "echo tagged with the wrong connection's port"
        );
        assert_eq!(body, &payload[..], "connection {i} payload intact");
    }
}

#[test]
fn wire_capture_shows_the_whole_exchange() {
    // The simulated tcpdump: a cold-cache UDP ping-pong must appear on the
    // wire as ARP request, ARP reply, UDP request, UDP reply.
    use plexus_kernel::view::view;
    use plexus_net::ether::EtherView;

    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (medium, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let sa = PlexusStack::attach(
        &a,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    let aext = sa.link_extension(&ext_spec("C")).unwrap();
    let bext = sb.link_extension(&ext_spec("S")).unwrap();
    let slot: Rc<RefCell<Option<Rc<plexus_core::UdpEndpoint>>>> = Rc::new(RefCell::new(None));
    let es = slot.clone();
    let bep = sb
        .udp()
        .bind(
            &bext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |ctx, ev: &plexus_core::UdpRecv| {
                let ep = es.borrow().clone().unwrap();
                ep.send_in(ctx, ev.src, ev.src_port, b"pong").unwrap();
            }),
        )
        .unwrap();
    *slot.borrow_mut() = Some(bep);
    let aep = sa
        .udp()
        .bind(
            &aext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();

    medium.start_capture();
    aep.send(world.engine_mut(), ip(2), 7, b"ping").unwrap();
    world.run();
    let cap = medium.stop_capture();

    let kinds: Vec<u16> = cap
        .iter()
        .map(|f| view::<EtherView>(&f.bytes).unwrap().ethertype().0)
        .collect();
    // ARP request (broadcast), ARP reply, then two IP datagrams. B's reply
    // needs its own ARP resolution? No: B learned A's binding from the
    // request's sender fields.
    assert_eq!(
        kinds,
        vec![0x0806, 0x0806, 0x0800, 0x0800],
        "capture: {cap:?}"
    );
    // Timestamps are strictly increasing along the shared wire.
    for w in cap.windows(2) {
        assert!(w[0].at < w[1].at);
    }
}

#[test]
fn unloading_an_extension_tears_down_everything_it_installed() {
    let (mut world, client, server) = two_plexus(true);
    seed_arp_both(&client, &server);
    let cext = client.link_extension(&ext_spec("C")).unwrap();
    // One extension installs a UDP endpoint, a TCP listener, and a raw
    // Ethernet handler.
    let spec = ExtensionSpec::typesafe(
        "KitchenSink",
        &["UDP.Bind", "TCP.Listen", "Ethernet.Attach"],
    );
    let sext = server.link_extension(&spec).unwrap();
    let udp_hits = Rc::new(Cell::new(0u32));
    let eth_hits = Rc::new(Cell::new(0u32));
    let (uh, eh) = (udp_hits.clone(), eth_hits.clone());
    server
        .udp()
        .bind(
            &sext,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(move |_, _| {
                uh.set(uh.get() + 1);
            }),
        )
        .unwrap();
    server.tcp().listen(&sext, 80, |_, _| {}).unwrap();
    server
        .attach_ether(
            &sext,
            EtherType::ACTIVE_MESSAGE,
            AppHandler::interrupt(move |_, _| {
                eh.set(eh.get() + 1);
            }),
        )
        .unwrap();

    // Traffic reaches all of it.
    let cep = client
        .udp()
        .bind(
            &cext,
            2000,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .unwrap();
    cep.send(world.engine_mut(), ip(2), 7, b"one").unwrap();
    client
        .send_ether(
            world.engine_mut(),
            server.mac(),
            EtherType::ACTIVE_MESSAGE,
            b"am",
        )
        .unwrap();
    world.run();
    assert_eq!(udp_hits.get(), 1);
    assert_eq!(eth_hits.get(), 1);

    // Unload: every installation disappears, the symbols unlink, and the
    // resources are reusable by the next application.
    assert!(server.unload_extension("KitchenSink"));
    assert!(!server.unload_extension("KitchenSink"), "idempotent");
    cep.send(world.engine_mut(), ip(2), 7, b"two").unwrap();
    client
        .send_ether(
            world.engine_mut(),
            server.mac(),
            EtherType::ACTIVE_MESSAGE,
            b"am2",
        )
        .unwrap();
    world.run();
    assert_eq!(udp_hits.get(), 1, "UDP endpoint gone");
    assert_eq!(eth_hits.get(), 1, "raw handler gone");

    let next = server.link_extension(&spec).unwrap();
    server
        .udp()
        .bind(
            &next,
            7,
            UdpConfig::default(),
            AppHandler::interrupt(|_, _| {}),
        )
        .expect("port 7 reusable");
    server
        .tcp()
        .listen(&next, 80, |_, _| {})
        .expect("port 80 reusable");
}
