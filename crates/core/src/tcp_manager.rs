//! The TCP protocol manager: connections as graph nodes.
//!
//! The standard TCP implementation is a node on `Ip.PacketRecv` whose
//! guard accepts TCP segments *except* those destined for ports claimed by
//! special implementations — the paper's TCP-standard/TCP-special example
//! (§3.1) verbatim. Verified segments are re-raised as `Tcp.PacketRecv`,
//! where each connection (and each listener) is its own guarded handler.
//!
//! Connections wrap the shared [`plexus_net::tcp::Tcb`] state machine;
//! its output segments flow down through `Ip.PacketSend` with the
//! manager-stamped source, and its retransmission timers are armed on the
//! simulation engine.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_filter::{conjunction, EventKind, Field, FieldKey, Operand, Policy, PortSet, Test};
use plexus_kernel::dispatcher::{HandlerId, RaiseCtx};
use plexus_kernel::domain::LinkedExtension;
use plexus_net::ether::EtherType;
use plexus_net::ip::{encapsulate as ip_encapsulate, proto, IpHeader};
use plexus_net::tcp::{Actions, Tcb, TcpFlags, TcpSegment, TcpState, TCP_HDR_LEN};
use plexus_sim::engine::TimerHandle;
use plexus_sim::time::SimDuration;
use plexus_sim::Engine;

use crate::guards;
use crate::stack::StackShared;
use crate::types::{IpRecv, IpSendReq, PlexusError, TcpRecv};

/// A connection-event callback (connected, closed, peer-closed).
pub type ConnCallback = Rc<dyn Fn(&mut RaiseCtx<'_>, &Rc<TcpConn>)>;

/// A data-arrival callback.
pub type DataCallback = Rc<dyn Fn(&mut RaiseCtx<'_>, &Rc<TcpConn>, &[u8])>;

/// Callbacks an application attaches to a connection. `Rc`-based so the
/// manager can invoke them without holding the callback cell borrowed
/// (handlers may re-enter the connection).
#[derive(Default)]
pub struct TcpCallbacks {
    /// Connection reached `Established`.
    pub on_connected: Option<ConnCallback>,
    /// In-order data arrived.
    pub on_data: Option<DataCallback>,
    /// Connection fully closed (or reset).
    pub on_closed: Option<ConnCallback>,
    /// The peer finished sending (half-close); typical servers respond by
    /// closing their side.
    pub on_peer_close: Option<ConnCallback>,
}

type ConnKey = (u16, Ipv4Addr, u16);

struct ListenerState {
    handler: HandlerId,
}

/// The TCP protocol manager for one stack.
pub struct TcpManager {
    shared: Rc<StackShared>,
    conns: Rc<RefCell<HashMap<ConnKey, Rc<TcpConn>>>>,
    listeners: RefCell<HashMap<u16, Rc<ListenerState>>>,
    /// Ports claimed by special implementations or redirects; shared with
    /// the standard node's guard program, so claims apply immediately.
    special_ports: PortSet,
    iss: Cell<u32>,
    next_ephemeral: Cell<u16>,
    segments_in: Cell<u64>,
}

impl TcpManager {
    pub(crate) fn install(shared: &Rc<StackShared>) -> Rc<TcpManager> {
        let special_ports = PortSet::new();
        let mgr = Rc::new(TcpManager {
            shared: shared.clone(),
            conns: Rc::new(RefCell::new(HashMap::new())),
            listeners: RefCell::new(HashMap::new()),
            special_ports: special_ports.clone(),
            iss: Cell::new(1000),
            next_ephemeral: Cell::new(40_000),
            segments_in: Cell::new(0),
        });

        // The standard TCP implementation node: all TCP except ports owned
        // by special implementations (§3.1's two-implementations example).
        // The destination port is bytes 2..4 of the TCP header.
        let guard = guards::build_bounded(
            guards::transport_over_ip(
                proto::TCP,
                None,
                Some(Test::NotInSet {
                    op: guards::TRANSPORT_DST_PORT,
                    set: 0,
                }),
                vec![special_ports],
            ),
            &Policy::new(),
            guards::TRANSPORT_GUARD_CYCLES,
        );
        let s = shared.clone();
        let m = mgr.clone();
        // Scratch buffer reused across segments: parsing needs contiguous
        // bytes, but the allocation should not recur per packet.
        let scratch = std::cell::RefCell::new(Vec::new());
        shared.install_layer(
            shared.events.ip_recv,
            Some(guard.guard()),
            move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                ctx.lease.charge(model.tcp_proc);
                if !s.csum_offload {
                    ctx.lease.charge(model.checksum(ev.payload.total_len()));
                }
                let mut bytes = scratch.borrow_mut();
                bytes.clear();
                ev.payload.copy_into(0, ev.payload.total_len(), &mut bytes);
                let Some(segment) = TcpSegment::parse(ev.src, ev.dst, &bytes) else {
                    return;
                };
                drop(bytes);
                m.segments_in.set(m.segments_in.get() + 1);
                let arg = TcpRecv {
                    src: ev.src,
                    dst: ev.dst,
                    segment,
                };
                s.dispatcher.raise(ctx, s.events.tcp_recv, &arg);
            },
            "tcp",
        );
        mgr
    }

    /// Verified segments received by the standard implementation.
    pub fn segments_in(&self) -> u64 {
        self.segments_in.get()
    }

    fn next_iss(&self) -> u32 {
        let iss = self.iss.get();
        self.iss.set(iss.wrapping_add(64_000));
        iss
    }

    fn alloc_port(&self) -> u16 {
        loop {
            let p = self.next_ephemeral.get();
            self.next_ephemeral.set(p.wrapping_add(1).max(40_000));
            let taken = self.listeners.borrow().contains_key(&p)
                || self.special_ports.contains(p)
                || self.conns.borrow().keys().any(|(lp, _, _)| *lp == p);
            if !taken {
                return p;
            }
        }
    }

    fn port_in_use(&self, port: u16) -> bool {
        self.listeners.borrow().contains_key(&port) || self.special_ports.contains(port)
    }

    /// Passive open: accept connections on `port`. `on_accept` runs for
    /// each new connection (attach data/close callbacks there).
    pub fn listen<F>(
        self: &Rc<Self>,
        ext: &LinkedExtension,
        port: u16,
        on_accept: F,
    ) -> Result<(), PlexusError>
    where
        F: Fn(&mut RaiseCtx<'_>, &Rc<TcpConn>) + 'static,
    {
        if self.port_in_use(port) {
            return Err(PlexusError::PortInUse(port));
        }
        // Listener guard: initial SYNs for our port. Locality of `dst` was
        // already enforced by the IP layer (host address, broadcast, or
        // configured alias). Whether the segment belongs to an existing
        // connection is dynamic state the static program cannot consult,
        // so that check moved into the handler below; the policy proves
        // the listener only ever sees its own port (§3.1).
        let policy = Policy::new().require_eq(FieldKey::Field(Field::TcpDstPort), u64::from(port));
        let guard = guards::build_bounded(
            conjunction(
                EventKind::TcpRecv,
                &[
                    Test::eq(Operand::Field(Field::TcpDstPort), u64::from(port)),
                    Test::eq(Operand::Field(Field::TcpFlagSyn), 1),
                    Test::eq(Operand::Field(Field::TcpFlagAck), 0),
                ],
                vec![],
            ),
            &policy,
            guards::TRANSPORT_GUARD_CYCLES,
        );
        let on_accept: ConnCallback = Rc::new(on_accept);
        let mgr2 = self.clone();
        let accept_cb = on_accept.clone();
        let handler = self.shared.install_layer(
            self.shared.events.tcp_recv,
            Some(guard.guard()),
            move |ctx, ev: &TcpRecv| {
                let key = (port, ev.src, ev.segment.src_port);
                if mgr2.conns.borrow().contains_key(&key) {
                    // A retransmitted SYN for a live connection: that
                    // connection's own node handles it.
                    return;
                }
                let tcb = Tcb::listen((ev.dst, port), mgr2.next_iss());
                let conn = TcpConn::register(&mgr2, key, ev.dst, tcb);
                // Let the application attach callbacks before the handshake
                // proceeds.
                (accept_cb)(ctx, &conn);
                let actions = conn.tcb.borrow_mut().on_segment(
                    &ev.segment,
                    (ev.src, ev.segment.src_port),
                    now_ns(ctx),
                );
                conn.process_actions(ctx, actions);
            },
            ext.name(),
        );
        let _ = on_accept;
        self.listeners
            .borrow_mut()
            .insert(port, Rc::new(ListenerState { handler }));
        let mgr = self.clone();
        self.shared.register_cleanup(ext, move || {
            mgr.unlisten(port);
        });
        Ok(())
    }

    /// Stops listening on `port` (existing connections continue).
    pub fn unlisten(&self, port: u16) -> bool {
        if let Some(l) = self.listeners.borrow_mut().remove(&port) {
            self.shared
                .dispatcher
                .uninstall(self.shared.events.tcp_recv, l.handler);
            true
        } else {
            false
        }
    }

    /// Active open to `remote`. Returns the connection; attach callbacks
    /// via [`TcpConn::set_callbacks`] before running the engine.
    pub fn connect(
        self: &Rc<Self>,
        _ext: &LinkedExtension,
        engine: &mut Engine,
        remote: (Ipv4Addr, u16),
    ) -> Result<Rc<TcpConn>, PlexusError> {
        let port = self.alloc_port();
        let key = (port, remote.0, remote.1);
        let now = engine.now().as_nanos();
        let (tcb, actions) = Tcb::connect((self.shared.ip, port), remote, self.next_iss(), now);
        let conn = TcpConn::register(self, key, self.shared.ip, tcb);
        let cpu = self.shared.cpu.clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        conn.process_actions(&mut ctx, actions);
        Ok(conn)
    }

    /// Claims `ports` for a special TCP implementation: raw segments for
    /// those ports bypass the standard node and arrive at `handler`
    /// (which implements whatever transport discipline it wants).
    pub fn claim_special<F>(
        self: &Rc<Self>,
        ext: &LinkedExtension,
        ports: &[u16],
        handler: F,
    ) -> Result<HandlerId, PlexusError>
    where
        F: Fn(&mut RaiseCtx<'_>, &IpRecv) + 'static,
    {
        if ports.is_empty() {
            return Err(PlexusError::SnoopDenied(
                "a special TCP implementation must claim at least one port",
            ));
        }
        for p in ports {
            if self.port_in_use(*p) {
                return Err(PlexusError::PortInUse(*p));
            }
        }
        for p in ports {
            self.special_ports.insert(*p);
        }
        let claimed: Vec<u64> = ports.iter().map(|p| u64::from(*p)).collect();
        let policy = Policy::new()
            .require_eq(FieldKey::Field(Field::IpProto), u64::from(proto::TCP))
            .require_in(guards::TRANSPORT_DST_PORT_KEY, claimed.iter().copied());
        let guard = guards::build_bounded(
            guards::transport_over_ip(
                proto::TCP,
                None,
                Some(Test::one_of(guards::TRANSPORT_DST_PORT, claimed)),
                vec![],
            ),
            &policy,
            guards::MULTIPORT_GUARD_CYCLES,
        );
        Ok(self.shared.install_layer(
            self.shared.events.ip_recv,
            Some(guard.guard()),
            handler,
            ext.name(),
        ))
    }

    /// Installs a TCP port redirector (§5.2): segments for `port` —
    /// including *control* packets (SYN/FIN/RST), which a user-level splice
    /// cannot forward — are re-routed to the machine owning `new_dst` at
    /// the link layer, with the IP destination (this host's address)
    /// preserved. The target accepts that address as an alias
    /// ([`crate::PlexusStack::add_ip_alias`]) and answers the client
    /// directly from it, so end-to-end TCP semantics hold between the
    /// original endpoints — no header or checksum is touched in flight.
    pub fn redirect(
        self: &Rc<Self>,
        ext: &LinkedExtension,
        port: u16,
        new_dst: Ipv4Addr,
    ) -> Result<HandlerId, PlexusError> {
        if self.port_in_use(port) {
            return Err(PlexusError::PortInUse(port));
        }
        self.special_ports.insert(port);
        let shared = self.shared.clone();
        let policy = Policy::new()
            .require_eq(FieldKey::Field(Field::IpProto), u64::from(proto::TCP))
            .require_eq(guards::TRANSPORT_DST_PORT_KEY, u64::from(port));
        let guard = guards::build_bounded(
            guards::transport_over_ip(
                proto::TCP,
                None,
                Some(Test::eq(guards::TRANSPORT_DST_PORT, u64::from(port))),
                vec![],
            ),
            &policy,
            guards::TRANSPORT_GUARD_CYCLES,
        );
        Ok(self.shared.install_layer(
            self.shared.events.ip_recv,
            Some(guard.guard()),
            move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                ctx.lease.charge(model.proc_call);
                // Rebuild the datagram with its original addressing and
                // hand it to the target's link address. If ARP has not
                // resolved yet the packet is dropped; TCP retransmits.
                let hdr = IpHeader::simple(ev.src, ev.dst, proto::TCP, next_redirect_ident());
                let dgram = ip_encapsulate(&hdr, ev.payload.share());
                if let Some(mac) = shared.resolve_or_request(ctx, new_dst) {
                    shared.raise_eth_send(ctx, mac, EtherType::IPV4, dgram);
                }
            },
            ext.name(),
        ))
    }
}

thread_local! {
    static REDIRECT_IDENT: Cell<u16> = const { Cell::new(0x8000) };
}

fn next_redirect_ident() -> u16 {
    REDIRECT_IDENT.with(|c| {
        let v = c.get();
        c.set(v.wrapping_add(1));
        v
    })
}

fn now_ns(ctx: &RaiseCtx<'_>) -> u64 {
    ctx.lease.now().as_nanos()
}

/// One TCP connection living in the protocol graph.
pub struct TcpConn {
    manager: Rc<TcpManager>,
    key: ConnKey,
    /// The local address this connection answers on — normally the host
    /// address, but a DSR redirection target answers on the forwarder's
    /// alias, preserving end-to-end addressing (§5.2).
    local_ip: Ipv4Addr,
    tcb: RefCell<Tcb>,
    callbacks: RefCell<TcpCallbacks>,
    timer: RefCell<Option<TimerHandle>>,
    handler: Cell<Option<HandlerId>>,
    deregistered: Cell<bool>,
}

impl TcpConn {
    fn register(
        mgr: &Rc<TcpManager>,
        key: ConnKey,
        local_ip: Ipv4Addr,
        mut tcb: Tcb,
    ) -> Rc<TcpConn> {
        // When the adapter advertises segmentation offload, let the state
        // machine emit super-segments; `process_actions` resegments them at
        // wire MSS on the way to the driver.
        let tso = mgr.shared.nic.profile().tso_segs;
        if tso > 1 {
            tcb.set_gso_segs(tso);
        }
        let conn = Rc::new(TcpConn {
            manager: mgr.clone(),
            key,
            local_ip,
            tcb: RefCell::new(tcb),
            callbacks: RefCell::new(TcpCallbacks::default()),
            timer: RefCell::new(None),
            handler: Cell::new(None),
            deregistered: Cell::new(false),
        });
        mgr.conns.borrow_mut().insert(key, conn.clone());

        // The connection's own guarded handler: exact 4-tuple match, with
        // the policy proving the program cannot see any other flow.
        let (lport, rip, rport) = key;
        let tuple = [
            (Field::TcpDstAddr, u64::from(u32::from(local_ip))),
            (Field::TcpDstPort, u64::from(lport)),
            (Field::TcpSrcAddr, u64::from(u32::from(rip))),
            (Field::TcpSrcPort, u64::from(rport)),
        ];
        let mut policy = Policy::new();
        let mut tests = Vec::new();
        for (field, value) in tuple {
            policy = policy.require_eq(FieldKey::Field(field), value);
            tests.push(Test::eq(Operand::Field(field), value));
        }
        let guard = guards::build_bounded(
            conjunction(EventKind::TcpRecv, &tests, vec![]),
            &policy,
            guards::TRANSPORT_GUARD_CYCLES,
        );
        let c = conn.clone();
        let id = mgr.shared.install_layer(
            mgr.shared.events.tcp_recv,
            Some(guard.guard()),
            move |ctx, ev: &TcpRecv| {
                let actions = c.tcb.borrow_mut().on_segment(
                    &ev.segment,
                    (ev.src, ev.segment.src_port),
                    now_ns(ctx),
                );
                c.process_actions(ctx, actions);
            },
            "tcp",
        );
        conn.handler.set(Some(id));
        conn
    }

    /// Attaches application callbacks.
    pub fn set_callbacks(&self, callbacks: TcpCallbacks) {
        *self.callbacks.borrow_mut() = callbacks;
    }

    /// Connection state.
    pub fn state(&self) -> TcpState {
        self.tcb.borrow().state()
    }

    /// The local port.
    pub fn local_port(&self) -> u16 {
        self.key.0
    }

    /// The remote endpoint.
    pub fn remote(&self) -> (Ipv4Addr, u16) {
        (self.key.1, self.key.2)
    }

    /// Segments this side retransmitted.
    pub fn retransmits(&self) -> u64 {
        self.tcb.borrow().retransmits
    }

    /// Queues `data` for transmission (from inside an event handler).
    pub fn send_in(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>, data: &[u8]) {
        let actions = self.tcb.borrow_mut().send(data, now_ns(ctx));
        self.process_actions(ctx, actions);
    }

    /// Queues `data` for transmission (top-level entry; opens a lease).
    pub fn send(self: &Rc<Self>, engine: &mut Engine, data: &[u8]) {
        let cpu = self.manager.shared.cpu.clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        self.send_in(&mut ctx, data);
    }

    /// Begins an orderly close from inside an event handler.
    pub fn close_in(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>) {
        let actions = self.tcb.borrow_mut().close(now_ns(ctx));
        self.process_actions(ctx, actions);
    }

    /// Begins an orderly close.
    pub fn close(self: &Rc<Self>, engine: &mut Engine) {
        let cpu = self.manager.shared.cpu.clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        let actions = self.tcb.borrow_mut().close(now_ns(&ctx));
        self.process_actions(&mut ctx, actions);
    }

    /// Applies the state machine's outputs: transmit segments, fire
    /// callbacks, rearm timers, tear down on close.
    fn process_actions(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>, actions: Actions) {
        let model = ctx.lease.model().clone();
        let (_, rip, _) = self.key;
        let shared = self.manager.shared.clone();
        let mss = self.tcb.borrow().mss;
        for seg in &actions.segments {
            // One protocol pass per (super-)segment: with segmentation
            // offload the state machine hands down up to gso_segs * mss
            // bytes here, and the resegmentation below models the
            // adapter-assisted split, not another trip through TCP.
            ctx.lease.charge(model.tcp_proc);
            let len = seg.payload.len();
            let nchunks = if len > mss { len.div_ceil(mss) } else { 1 };
            for i in 0..nchunks {
                let off = i * mss;
                let sub;
                let wire = if nchunks == 1 {
                    seg
                } else {
                    let end = (off + mss).min(len);
                    sub = TcpSegment {
                        src_port: seg.src_port,
                        dst_port: seg.dst_port,
                        seq: seg.seq.wrapping_add(off as u32),
                        ack: seg.ack,
                        // Interior chunks are plain ACKs; the final chunk
                        // keeps the original flags (PSH/FIN ride on it).
                        flags: if end == len { seg.flags } else { TcpFlags::ACK },
                        window: seg.window,
                        mss: None,
                        payload: seg.payload[off..end].to_vec(),
                    };
                    &sub
                };
                let payload = if shared.csum_offload {
                    wire.to_mbuf_offload(self.local_ip, rip, 64)
                } else {
                    ctx.lease
                        .charge(model.checksum(wire.payload.len() + TCP_HDR_LEN));
                    wire.to_mbuf(self.local_ip, rip, 64)
                };
                shared.raise_ip_send(
                    ctx,
                    IpSendReq {
                        src: self.local_ip,
                        dst: rip,
                        protocol: proto::TCP,
                        payload,
                    },
                );
            }
        }
        if actions.connected {
            let cb = self.callbacks.borrow().on_connected.clone();
            if let Some(cb) = cb {
                cb(ctx, self);
            }
        }
        if actions.data_available {
            let data = self.tcb.borrow_mut().take_received();
            if !data.is_empty() {
                let cb = self.callbacks.borrow().on_data.clone();
                if let Some(cb) = cb {
                    cb(ctx, self, &data);
                }
            }
        }
        if actions.peer_fin {
            let cb = self.callbacks.borrow().on_peer_close.clone();
            if let Some(cb) = cb {
                cb(ctx, self);
            }
        }
        if actions.closed {
            self.deregister();
            let cb = self.callbacks.borrow().on_closed.clone();
            if let Some(cb) = cb {
                cb(ctx, self);
            }
            return;
        }
        self.rearm_timer(ctx.engine);
    }

    fn rearm_timer(self: &Rc<Self>, engine: &mut Engine) {
        if let Some(old) = self.timer.borrow_mut().take() {
            old.cancel();
        }
        let Some(deadline_ns) = self.tcb.borrow().next_timeout() else {
            return;
        };
        let now = engine.now().as_nanos();
        let delay = SimDuration::from_nanos(deadline_ns.saturating_sub(now));
        let conn = self.clone();
        let handle = engine.schedule_cancelable(delay, move |eng| {
            conn.on_timer_fire(eng);
        });
        *self.timer.borrow_mut() = Some(handle);
    }

    fn on_timer_fire(self: &Rc<Self>, engine: &mut Engine) {
        if self.deregistered.get() {
            return;
        }
        let cpu = self.manager.shared.cpu.clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        let now = now_ns(&ctx);
        let actions = self.tcb.borrow_mut().on_timer(now);
        self.process_actions(&mut ctx, actions);
    }

    fn deregister(&self) {
        if self.deregistered.replace(true) {
            return;
        }
        if let Some(t) = self.timer.borrow_mut().take() {
            t.cancel();
        }
        if let Some(id) = self.handler.take() {
            self.manager
                .shared
                .dispatcher
                .uninstall(self.manager.shared.events.tcp_recv, id);
        }
        self.manager.conns.borrow_mut().remove(&self.key);
    }
}
