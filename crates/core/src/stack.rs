//! The Plexus protocol graph on one machine (Figure 1).
//!
//! [`PlexusStack::attach`] builds the kernel-resident graph over a
//! simulated machine and NIC:
//!
//! ```text
//!             device rx interrupt
//!                    |
//!            Ethernet.PacketRecv          (event)
//!             /        |        \
//!        [type=ARP] [type=IP] [type=X]    (guards)
//!           ARP        IP      app ext    (handlers)
//!                       |
//!                 Ip.PacketRecv           (event)
//!               /       |       \
//!        [proto=ICMP][proto=UDP][proto=TCP]
//!           ICMP       UDP        TCP
//!                       |          |
//!               Udp.PacketRecv  Tcp.PacketRecv
//!                /      \            \
//!          [port=a]  [port=b]     [4-tuple]
//!           app A     app B       connection
//! ```
//!
//! Packets go *up* through `PacketRecv` events and *down* through
//! `PacketSend` events; every hop is a dispatcher raise whose guard/handler
//! costs are charged to the CPU, and the whole receive path runs either at
//! interrupt level (ephemeral handlers) or in per-event threads, per
//! [`DispatchMode`] — the two Plexus bars of Figure 5.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_filter::{Field, FieldKey, Policy};
use plexus_kernel::dispatcher::{Dispatcher, Event, Guard, HandlerId, HandlerSpec, RaiseCtx};
use plexus_kernel::domain::{Domain, ExtensionSpec, Interface, LinkedExtension};
use plexus_kernel::ephemeral::Ephemeral;
use plexus_kernel::view::view;
use plexus_sim::nic::{DriverConfig, Nic};
use plexus_sim::time::SimDuration;
use plexus_sim::{Cpu, Engine, Machine};

use plexus_net::arp::{ArpCache, ArpPacket, Resolution};
use plexus_net::ether::{EtherType, EtherView, MacAddr, ETHER_HDR_LEN};
use plexus_net::icmp::{IcmpMessage, IcmpType};
use plexus_net::ip::{self, IpHeader, Reassembler};
use plexus_net::mbuf::Mbuf;

use crate::guards;
use crate::tcp_manager::TcpManager;
use crate::types::{
    mac_to_u64, AppHandler, DispatchMode, EthRecv, EthSendReq, IpRecv, IpSendReq, PlexusError,
    TcpRecv, UdpRecv,
};
use crate::udp_manager::UdpManager;

/// Configuration for one stack instance.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// This host's IP address.
    pub ip: Ipv4Addr,
    /// This host's MAC address.
    pub mac: MacAddr,
    /// Receive-path delivery mode (Figure 5's interrupt vs. thread bars).
    pub mode: DispatchMode,
    /// Optional per-handler time limit for interrupt-level extension
    /// handlers (§3.3's termination allotment).
    pub ext_time_limit: Option<SimDuration>,
    /// Local subnet prefix length (default /24); destinations outside it
    /// go via the gateway.
    pub prefix_len: u8,
    /// Default gateway for off-subnet destinations (see
    /// [`crate::router::IpRouter`]).
    pub gateway: Option<Ipv4Addr>,
    /// Use the NIC's batched receive path (rx ring + interrupt
    /// coalescing) instead of one interrupt per frame. Off by default:
    /// the per-frame path is the paper's configuration and the one the
    /// latency goldens pin.
    pub coalesce: bool,
    /// Submit transmits through the NIC's doorbell-batching tier
    /// ([`plexus_sim::nic::TxSubmit::Doorbell`]): while the adapter is
    /// draining, follow-on frames share one fixed driver charge. Off by
    /// default (one doorbell per frame — the historical cost model the
    /// latency goldens pin).
    pub tx_doorbell: bool,
    /// Flatten every outgoing frame to contiguous bytes before handing it
    /// to the adapter instead of letting the DMA engine gather the mbuf
    /// chain. Strictly worse (an extra copy, and it disables checksum
    /// offload); exists so benchmarks and tests can A/B the legacy path
    /// against scatter-gather on identical wire bytes.
    pub tx_flatten: bool,
}

impl StackConfig {
    /// Interrupt-mode stack for `ip`/`mac`.
    pub fn interrupt(ip: Ipv4Addr, mac: MacAddr) -> StackConfig {
        StackConfig {
            ip,
            mac,
            mode: DispatchMode::Interrupt,
            ext_time_limit: None,
            prefix_len: 24,
            gateway: None,
            coalesce: false,
            tx_doorbell: false,
            tx_flatten: false,
        }
    }

    /// Sets the default gateway (and keeps the /24 prefix).
    pub fn with_gateway(mut self, gateway: Ipv4Addr) -> StackConfig {
        self.gateway = Some(gateway);
        self
    }

    /// Enables the batched receive path (rx ring + interrupt coalescing).
    pub fn coalesced(mut self) -> StackConfig {
        self.coalesce = true;
        self
    }

    /// Enables doorbell-batched transmit submission.
    pub fn doorbell_tx(mut self) -> StackConfig {
        self.tx_doorbell = true;
        self
    }

    /// Forces the legacy flatten-before-transmit path (A/B comparison).
    pub fn flattened_tx(mut self) -> StackConfig {
        self.tx_flatten = true;
        self
    }

    /// Thread-mode stack for `ip`/`mac`.
    pub fn thread(ip: Ipv4Addr, mac: MacAddr) -> StackConfig {
        StackConfig {
            mode: DispatchMode::Thread,
            ..StackConfig::interrupt(ip, mac)
        }
    }
}

/// Counters the stack keeps (beyond the dispatcher's own).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Frames delivered to `Ethernet.PacketRecv`.
    pub eth_rx: u64,
    /// Frames dropped by the MAC filter.
    pub eth_filtered: u64,
    /// Datagrams delivered to `Ip.PacketRecv`.
    pub ip_rx: u64,
    /// IP datagrams dropped (bad checksum, not addressed to us).
    pub ip_dropped: u64,
    /// Datagrams sent through `Ip.PacketSend`.
    pub ip_tx: u64,
    /// ICMP echo requests answered.
    pub icmp_echoes: u64,
    /// ARP requests answered.
    pub arp_replies: u64,
    /// Sends queued waiting on ARP resolution.
    pub arp_queued: u64,
    /// Sends dropped: destination off-subnet and no gateway configured.
    pub no_route: u64,
    /// ARP resolutions abandoned after retries; their parked packets were
    /// dropped.
    pub arp_failures: u64,
}

/// The events of the protocol graph (all capabilities are held privately by
/// the stack and its managers; extensions never see them — §3.1).
pub(crate) struct StackEvents {
    pub(crate) eth_recv: Event<EthRecv>,
    pub(crate) eth_send: Event<EthSendReq>,
    pub(crate) ip_recv: Event<IpRecv>,
    pub(crate) ip_send: Event<IpSendReq>,
    pub(crate) udp_recv: Event<UdpRecv>,
    pub(crate) tcp_recv: Event<TcpRecv>,
}

/// Teardown actions queued for one extension, run when it unloads.
type CleanupActions = Vec<Box<dyn Fn()>>;

/// Shared stack state, reachable from every installed handler.
pub(crate) struct StackShared {
    pub(crate) cpu: Rc<Cpu>,
    pub(crate) nic: Rc<Nic>,
    pub(crate) dispatcher: Rc<Dispatcher>,
    pub(crate) mode: DispatchMode,
    pub(crate) ip: Ipv4Addr,
    pub(crate) mac: MacAddr,
    pub(crate) ext_time_limit: Option<SimDuration>,
    prefix_len: u8,
    gateway: Option<Ipv4Addr>,
    pub(crate) events: StackEvents,
    arp: RefCell<ArpCache>,
    arp_pending: RefCell<HashMap<Ipv4Addr, Vec<Mbuf>>>,
    /// Additional local addresses (e.g. a load-balancer VIP a backend
    /// accepts after DSR-style redirection, §5.2).
    ip_aliases: RefCell<HashSet<Ipv4Addr>>,
    reasm: RefCell<Reassembler>,
    ip_ident: Cell<u16>,
    pub(crate) stats: Cell<StackStats>,
    ext_domain: Rc<Domain>,
    /// Per-extension teardown actions, run when the extension unloads
    /// (runtime adaptation: extensions "come and go with their
    /// corresponding applications").
    ext_cleanup: RefCell<HashMap<String, CleanupActions>>,
    /// True while the NIC rx glue should deliver (promiscuous snooping is
    /// structurally impossible: the filter runs before any extension code).
    promiscuous: Cell<bool>,
    /// Transport checksums are offloaded to the adapter: the NIC profile
    /// advertises [`plexus_sim::nic::NicProfile::checksum_offload`] and the
    /// scatter-gather path is in use (the legacy flatten path bypasses the
    /// DMA gather, so it cannot offload). When set, UDP/TCP skip the
    /// software checksum CPU charge and stamp offload descriptors instead.
    pub(crate) csum_offload: bool,
    /// Flatten frames to contiguous bytes before transmit (legacy A/B path).
    tx_flatten: bool,
}

impl StackShared {
    pub(crate) fn bump<F: FnOnce(&mut StackStats)>(&self, f: F) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Installs a protocol-layer handler per the stack's dispatch mode.
    /// `owner` names the protection domain the handler runs for, so the
    /// flight recorder can attribute work per-domain.
    pub(crate) fn install_layer<T, F>(
        &self,
        event: Event<T>,
        guard: Option<Guard<T>>,
        handler: F,
        owner: &str,
    ) -> HandlerId
    where
        T: 'static,
        F: Fn(&mut RaiseCtx<'_>, &T) + 'static,
    {
        let spec = match self.mode {
            DispatchMode::Interrupt => {
                HandlerSpec::ephemeral(Ephemeral::certify(handler)).interrupt()
            }
            DispatchMode::Thread => HandlerSpec::new(handler),
        };
        self.dispatcher
            .install(event, spec.guard_opt(guard).owner(owner))
    }

    /// Installs a send-path handler. The send path is always a direct
    /// call chain (the caller's thread carries the packet down); Figure 5's
    /// thread cost is a *receive*-delivery phenomenon, where each raised
    /// `PacketRecv` event creates a new thread.
    pub(crate) fn install_send<T, F>(&self, event: Event<T>, handler: F) -> HandlerId
    where
        T: 'static,
        F: Fn(&mut RaiseCtx<'_>, &T) + 'static,
    {
        self.dispatcher.install(
            event,
            HandlerSpec::ephemeral(Ephemeral::certify(handler)).interrupt(),
        )
    }

    /// Installs an *application* handler: interrupt-level only when the app
    /// provided certified-ephemeral code (§3.3), thread otherwise.
    pub(crate) fn install_app<T: 'static>(
        &self,
        event: Event<T>,
        guard: Option<Guard<T>>,
        handler: AppHandler<T>,
        owner: &str,
    ) -> HandlerId {
        let spec = match handler {
            AppHandler::Interrupt(eph) => {
                let f = eph.into_inner();
                HandlerSpec::ephemeral(Ephemeral::certify(
                    move |ctx: &mut RaiseCtx<'_>, arg: &T| f(ctx, arg),
                ))
                .time_limit(self.ext_time_limit)
            }
            AppHandler::Thread(f) => HandlerSpec::new(f),
        };
        self.dispatcher
            .install(event, spec.guard_opt(guard).owner(owner))
    }

    /// Registers a teardown action to run when extension `ext` unloads.
    pub(crate) fn register_cleanup<F: Fn() + 'static>(&self, ext: &LinkedExtension, f: F) {
        self.ext_cleanup
            .borrow_mut()
            .entry(ext.name().to_string())
            .or_default()
            .push(Box::new(f));
    }

    fn next_ident(&self) -> u16 {
        let id = self.ip_ident.get();
        self.ip_ident.set(id.wrapping_add(1));
        id
    }

    /// The full IP send path: fragment, resolve the next hop, hand frames
    /// to `Ethernet.PacketSend`. Runs on the caller's CPU lease.
    pub(crate) fn ip_output(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>, req: &IpSendReq) {
        let model = ctx.lease.model().clone();
        ctx.lease.charge(model.ip_proc);
        self.bump(|s| s.ip_tx += 1);
        let hdr = IpHeader {
            src: req.src,
            dst: req.dst,
            protocol: req.protocol,
            ident: self.next_ident(),
            ttl: ip::DEFAULT_TTL,
            more_fragments: false,
            frag_offset: 0,
        };
        let mtu = self.nic.profile().mtu;
        let frags = ip::fragment(&hdr, &req.payload, mtu);
        let broadcast = req.dst == Ipv4Addr::BROADCAST;
        // Next hop: on-subnet destinations directly, everything else via
        // the gateway (if any).
        let next_hop = if broadcast {
            None
        } else if self.on_subnet(req.dst) {
            Some(req.dst)
        } else {
            match self.gateway {
                Some(gw) => Some(gw),
                None => {
                    self.bump(|s| s.no_route += 1);
                    if let Some(rec) = ctx.lease.recorder() {
                        rec.packet_drop(ctx.lease.now().as_nanos(), "ip", "no_route");
                    }
                    return;
                }
            }
        };
        for frag in frags {
            let Some(next_hop) = next_hop else {
                self.raise_eth_send(ctx, MacAddr::BROADCAST, EtherType::IPV4, frag);
                continue;
            };
            ctx.lease.charge(model.arp_lookup);
            let resolution = self
                .arp
                .borrow_mut()
                .resolve(next_hop, ctx.lease.now().as_nanos());
            match resolution {
                Resolution::Known(mac) => {
                    self.raise_eth_send(ctx, mac, EtherType::IPV4, frag);
                }
                Resolution::NeedsRequest(first) => {
                    self.bump(|s| s.arp_queued += 1);
                    self.arp_pending
                        .borrow_mut()
                        .entry(next_hop)
                        .or_default()
                        .push(frag);
                    if first {
                        let arp = ArpPacket::request(self.mac, self.ip, next_hop);
                        let m = Mbuf::from_payload(ETHER_HDR_LEN, &arp.to_bytes());
                        self.raise_eth_send(ctx, MacAddr::BROADCAST, EtherType::ARP, m);
                        self.schedule_arp_retry(ctx.engine, next_hop, 1);
                    }
                }
            }
        }
    }

    /// Retries an unanswered ARP request twice at one-second intervals,
    /// then drops whatever was parked on the resolution — lost ARP replies
    /// must not strand packets (and their senders) forever.
    fn schedule_arp_retry(self: &Rc<Self>, engine: &mut Engine, next_hop: Ipv4Addr, attempt: u32) {
        let me = self.clone();
        engine.schedule_in(SimDuration::from_secs(1), move |eng| {
            let still_pending = me.arp_pending.borrow().contains_key(&next_hop);
            if !still_pending {
                return; // Resolved in the meantime.
            }
            if attempt >= 3 {
                let dropped = me
                    .arp_pending
                    .borrow_mut()
                    .remove(&next_hop)
                    .map(|v| v.len())
                    .unwrap_or(0);
                if dropped > 0 {
                    me.bump(|s| s.arp_failures += 1);
                    if let Some(rec) = eng.recorder() {
                        rec.packet_drop(eng.now().as_nanos(), "arp", "resolution_failed");
                    }
                }
                return;
            }
            let mut lease = me.cpu.begin(eng.now());
            let mut ctx = RaiseCtx {
                engine: eng,
                lease: &mut lease,
            };
            let arp = ArpPacket::request(me.mac, me.ip, next_hop);
            let m = Mbuf::from_payload(ETHER_HDR_LEN, &arp.to_bytes());
            me.raise_eth_send(&mut ctx, MacAddr::BROADCAST, EtherType::ARP, m);
            let eng = ctx.engine;
            me.schedule_arp_retry(eng, next_hop, attempt + 1);
        });
    }

    /// True if `dst` is on this host's subnet.
    fn on_subnet(&self, dst: Ipv4Addr) -> bool {
        let mask = if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len)
        };
        (u32::from(dst) & mask) == (u32::from(self.ip) & mask)
    }

    /// True if `dst` is one of this host's addresses (or broadcast).
    pub(crate) fn is_local_ip(&self, dst: Ipv4Addr) -> bool {
        dst == self.ip || dst == Ipv4Addr::BROADCAST || self.ip_aliases.borrow().contains(&dst)
    }

    /// Resolves `ip` to a MAC, broadcasting an ARP request (and returning
    /// `None`) when unknown. Callers that cannot park the packet simply
    /// drop it; transports recover by retransmission.
    pub(crate) fn resolve_or_request(
        self: &Rc<Self>,
        ctx: &mut RaiseCtx<'_>,
        ip_addr: Ipv4Addr,
    ) -> Option<MacAddr> {
        let model = ctx.lease.model().clone();
        ctx.lease.charge(model.arp_lookup);
        let res = self
            .arp
            .borrow_mut()
            .resolve(ip_addr, ctx.lease.now().as_nanos());
        match res {
            Resolution::Known(mac) => Some(mac),
            Resolution::NeedsRequest(first) => {
                if first {
                    let arp = ArpPacket::request(self.mac, self.ip, ip_addr);
                    let m = Mbuf::from_payload(ETHER_HDR_LEN, &arp.to_bytes());
                    self.raise_eth_send(ctx, MacAddr::BROADCAST, EtherType::ARP, m);
                }
                None
            }
        }
    }

    pub(crate) fn raise_eth_send(
        self: &Rc<Self>,
        ctx: &mut RaiseCtx<'_>,
        dst: MacAddr,
        ethertype: EtherType,
        packet: Mbuf,
    ) {
        let req = EthSendReq {
            dst,
            ethertype,
            packet,
        };
        self.dispatcher.raise(ctx, self.events.eth_send, &req);
    }

    /// Raises `Ip.PacketSend` — the entry point managers use after stamping
    /// the legitimate source (§3.1).
    pub(crate) fn raise_ip_send(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>, req: IpSendReq) {
        self.dispatcher.raise(ctx, self.events.ip_send, &req);
    }
}

/// A Plexus protocol stack bound to one machine + NIC.
pub struct PlexusStack {
    machine: Rc<Machine>,
    shared: Rc<StackShared>,
    udp: Rc<UdpManager>,
    tcp: Rc<TcpManager>,
}

impl PlexusStack {
    /// Builds the graph of Figure 1 over `machine`'s NIC `nic`.
    pub fn attach(machine: &Rc<Machine>, nic: &Rc<Nic>, config: StackConfig) -> Rc<PlexusStack> {
        let dispatcher = Dispatcher::new();
        let events = StackEvents {
            eth_recv: dispatcher.define_event("Ethernet.PacketRecv"),
            eth_send: dispatcher.define_event("Ethernet.PacketSend"),
            ip_recv: dispatcher.define_event("Ip.PacketRecv"),
            ip_send: dispatcher.define_event("Ip.PacketSend"),
            udp_recv: dispatcher.define_event("Udp.PacketRecv"),
            tcp_recv: dispatcher.define_event("Tcp.PacketRecv"),
        };

        // The logical protection domain applications link against: the
        // public manager interfaces only. Internal events/symbols (VM,
        // device, dispatcher internals) are *not* here, so an extension
        // importing them is rejected at link time (§2).
        let ext_domain = Domain::new("plexus-extensions");
        ext_domain.add_interface(Interface::new("Mbuf", &["Alloc", "Free", "Prepend", "Adj"]));
        ext_domain.add_interface(Interface::new("Ethernet", &["Attach", "Detach", "Send"]));
        ext_domain.add_interface(Interface::new(
            "UDP",
            &["Bind", "Unbind", "Send", "Redirect"],
        ));
        ext_domain.add_interface(Interface::new(
            "TCP",
            &["Listen", "Connect", "Send", "Close", "Redirect"],
        ));
        ext_domain.add_interface(Interface::new("ICMP", &["Ping"]));

        let shared = Rc::new(StackShared {
            cpu: machine.cpu().clone(),
            nic: nic.clone(),
            dispatcher: dispatcher.clone(),
            mode: config.mode,
            ip: config.ip,
            mac: config.mac,
            ext_time_limit: config.ext_time_limit,
            prefix_len: config.prefix_len,
            gateway: config.gateway,
            events,
            arp: RefCell::new(ArpCache::new()),
            arp_pending: RefCell::new(HashMap::new()),
            ip_aliases: RefCell::new(HashSet::new()),
            reasm: RefCell::new(Reassembler::new()),
            ip_ident: Cell::new(1),
            stats: Cell::new(StackStats::default()),
            ext_domain,
            ext_cleanup: RefCell::new(HashMap::new()),
            promiscuous: Cell::new(false),
            csum_offload: nic.profile().checksum_offload && !config.tx_flatten,
            tx_flatten: config.tx_flatten,
        });

        let driver = if config.coalesce {
            Self::driver_glue_coalesced(&shared)
        } else {
            Self::driver_glue(&shared)
        };
        shared.nic.attach(if config.tx_doorbell {
            driver.doorbell()
        } else {
            driver
        });
        Self::install_eth_output(&shared);
        Self::install_arp(&shared);
        Self::install_ip(&shared);
        Self::install_icmp(&shared);
        let udp = UdpManager::install(&shared);
        let tcp = TcpManager::install(&shared);

        Rc::new(PlexusStack {
            machine: machine.clone(),
            shared,
            udp,
            tcp,
        })
    }

    /// The device receive interrupt: charge driver + interrupt costs, MAC
    /// filter, then raise `Ethernet.PacketRecv`. Returns the driver
    /// binding for [`plexus_sim::nic::Nic::attach`].
    fn driver_glue(shared: &Rc<StackShared>) -> DriverConfig {
        let s = shared.clone();
        DriverConfig::per_frame(move |engine, frame| {
            let mut lease = s.cpu.begin(engine.now());
            let model = lease.model().clone();
            lease.charge(model.interrupt_entry);
            lease.charge(s.nic.profile().rx_cpu_cost(frame.len()));
            let accept = match view::<EtherView>(&frame) {
                Some(v) => {
                    let dst = v.dst();
                    dst == s.mac || dst.is_broadcast() || s.promiscuous.get()
                }
                None => false,
            };
            if accept {
                s.bump(|st| st.eth_rx += 1);
                let mut mbuf = Mbuf::from_wire(&frame);
                mbuf.pkthdr_mut().rcvif = Some(0);
                mbuf.pkthdr_mut().packet_id = lease.recorder().and_then(|r| r.current_packet());
                mbuf.pkthdr_mut().journey_id = lease.recorder().and_then(|r| r.current_journey());
                let arg = EthRecv { mbuf };
                let mut ctx = RaiseCtx {
                    engine,
                    lease: &mut lease,
                };
                s.dispatcher.raise(&mut ctx, s.events.eth_recv, &arg);
            } else {
                s.bump(|st| st.eth_filtered += 1);
                if let Some(rec) = lease.recorder() {
                    rec.packet_drop(lease.now().as_nanos(), "ether", "mac_filter");
                }
            }
            lease.charge(model.interrupt_exit);
        })
    }

    /// The coalesced device receive interrupt: one `interrupt_entry` /
    /// `interrupt_exit` pair covers the whole drained batch, the first
    /// frame pays the full driver cost and later frames only the
    /// amortized `rx_per_frame`, and `Ethernet.PacketRecv` is raised
    /// through a warm [`plexus_kernel::dispatcher::EventBatch`]. Each
    /// frame still gets its own packet ID, MAC-filter verdict, and trace
    /// records — batching amortizes fixed costs, never dispatch
    /// semantics.
    fn driver_glue_coalesced(shared: &Rc<StackShared>) -> DriverConfig {
        let s = shared.clone();
        DriverConfig::coalesced(move |engine, frames| {
            let mut lease = s.cpu.begin(engine.now());
            let model = lease.model().clone();
            lease.charge(model.interrupt_entry);
            let host = s.nic.host();
            let mut batch = s.dispatcher.batch(s.events.eth_recv);
            for (i, frame) in frames.iter().enumerate() {
                // In batch mode the glue stamps per-frame packet IDs (the
                // NIC cannot: only the glue knows when each frame's CPU
                // work begins inside the drained interrupt).
                let rec = lease.recorder_handle();
                if let Some(rec) = &rec {
                    rec.packet_arrival_hop(
                        lease.now().as_nanos(),
                        s.nic.profile().name,
                        &host,
                        frame.bytes.len(),
                        frame.journey,
                    );
                }
                lease.charge(
                    s.nic
                        .profile()
                        .rx_cpu_cost_coalesced(frame.bytes.len(), i == 0),
                );
                let accept = match view::<EtherView>(&frame.bytes) {
                    Some(v) => {
                        let dst = v.dst();
                        dst == s.mac || dst.is_broadcast() || s.promiscuous.get()
                    }
                    None => false,
                };
                if accept {
                    s.bump(|st| st.eth_rx += 1);
                    let mut mbuf = Mbuf::from_wire(&frame.bytes);
                    mbuf.pkthdr_mut().rcvif = Some(0);
                    mbuf.pkthdr_mut().packet_id = lease.recorder().and_then(|r| r.current_packet());
                    mbuf.pkthdr_mut().journey_id =
                        lease.recorder().and_then(|r| r.current_journey());
                    let arg = EthRecv { mbuf };
                    let mut ctx = RaiseCtx {
                        engine: &mut *engine,
                        lease: &mut lease,
                    };
                    batch.raise(&mut ctx, &arg);
                } else {
                    s.bump(|st| st.eth_filtered += 1);
                    if let Some(rec) = lease.recorder() {
                        rec.packet_drop(lease.now().as_nanos(), "ether", "mac_filter");
                    }
                }
                if let Some(rec) = &rec {
                    rec.packet_done();
                }
            }
            lease.charge(model.interrupt_exit);
            lease.now()
        })
    }

    /// `Ethernet.PacketSend`: prepend the link header, pay the driver TX
    /// submission cost (full per-frame, or amortized under an open
    /// doorbell — [`plexus_sim::nic::Nic::tx_cpu_charge`] decides), and
    /// hand the mbuf chain to the adapter for the scatter-gather DMA.
    /// The frame is never flattened on this path; `tx_flatten` keeps the
    /// legacy copy-to-contiguous behavior for A/B comparisons.
    fn install_eth_output(shared: &Rc<StackShared>) {
        let s = shared.clone();
        shared.install_send(shared.events.eth_send, move |ctx, req: &EthSendReq| {
            let model = ctx.lease.model().clone();
            ctx.lease.charge(model.eth_proc);
            let mut frame = req.packet.share();
            let hdr = frame.prepend(ETHER_HDR_LEN);
            plexus_net::ether::write_header(hdr, req.dst, s.mac, req.ethertype);
            let len = frame.total_len();
            ctx.lease.charge(s.nic.tx_cpu_charge(ctx.lease.now(), len));
            let ready = ctx.lease.now();
            if s.tx_flatten {
                let bytes = frame.to_vec();
                s.nic.transmit_frame(ctx.engine, ready, bytes);
            } else {
                s.nic.transmit(ctx.engine, ready, &frame);
            }
        });
    }

    fn install_arp(shared: &Rc<StackShared>) {
        let s = shared.clone();
        let guard = guards::build_bounded(
            guards::ether_type_program(EtherType::ARP, None),
            &Policy::new(),
            guards::ETHER_GUARD_CYCLES,
        )
        .guard();
        shared.install_layer(
            shared.events.eth_recv,
            Some(guard),
            move |ctx, ev: &EthRecv| {
                let model = ctx.lease.model().clone();
                ctx.lease.charge(model.eth_proc);
                let bytes = ev.mbuf.to_vec();
                let Some(pkt) = ArpPacket::parse(&bytes[ETHER_HDR_LEN..]) else {
                    return;
                };
                let now = ctx.lease.now().as_nanos();
                let satisfied = s.arp.borrow_mut().learn(pkt.sender_ip, pkt.sender_mac, now);
                if satisfied {
                    // Drain datagrams parked on this resolution.
                    let parked = s.arp_pending.borrow_mut().remove(&pkt.sender_ip);
                    for frag in parked.into_iter().flatten() {
                        s.raise_eth_send(ctx, pkt.sender_mac, EtherType::IPV4, frag);
                    }
                }
                if pkt.op == plexus_net::arp::ArpOp::Request && pkt.target_ip == s.ip {
                    s.bump(|st| st.arp_replies += 1);
                    let reply = ArpPacket::reply_to(&pkt, s.mac, s.ip);
                    let m = Mbuf::from_payload(ETHER_HDR_LEN, &reply.to_bytes());
                    s.raise_eth_send(ctx, pkt.sender_mac, EtherType::ARP, m);
                }
            },
            "arp",
        );
    }

    /// The standard IP implementation: validate, reassemble, raise
    /// `Ip.PacketRecv`; plus the `Ip.PacketSend` output handler.
    fn install_ip(shared: &Rc<StackShared>) {
        let s = shared.clone();
        let guard = guards::build_bounded(
            guards::ether_type_program(EtherType::IPV4, None),
            &Policy::new(),
            guards::ETHER_GUARD_CYCLES,
        )
        .guard();
        shared.install_layer(
            shared.events.eth_recv,
            Some(guard),
            move |ctx, ev: &EthRecv| {
                let model = ctx.lease.model().clone();
                ctx.lease.charge(model.ip_proc);
                let mut pkt = ev.mbuf.share();
                pkt.trim_front(ETHER_HDR_LEN);
                let now = ctx.lease.now().as_nanos();
                let offered = s.reasm.borrow_mut().offer(&pkt, now);
                let Some((hdr, payload)) = offered else {
                    // Bad checksum/version, or a fragment still waiting.
                    if pkt.total_len() >= ip::IP_HDR_LEN {
                        s.bump(|st| st.ip_dropped += 1);
                        if let Some(rec) = ctx.lease.recorder() {
                            rec.packet_drop(ctx.lease.now().as_nanos(), "ip", "bad_or_fragment");
                        }
                    }
                    return;
                };
                if !s.is_local_ip(hdr.dst) {
                    s.bump(|st| st.ip_dropped += 1);
                    if let Some(rec) = ctx.lease.recorder() {
                        rec.packet_drop(ctx.lease.now().as_nanos(), "ip", "not_local");
                    }
                    return;
                }
                s.bump(|st| st.ip_rx += 1);
                let arg = IpRecv {
                    src: hdr.src,
                    dst: hdr.dst,
                    protocol: hdr.protocol,
                    payload,
                };
                s.dispatcher.raise(ctx, s.events.ip_recv, &arg);
            },
            "ip",
        );

        let s = shared.clone();
        shared.install_send(shared.events.ip_send, move |ctx, req: &IpSendReq| {
            s.ip_output(ctx, req);
        });
    }

    fn install_icmp(shared: &Rc<StackShared>) {
        let s = shared.clone();
        let guard = guards::build_bounded(
            guards::transport_over_ip(ip::proto::ICMP, None, None, vec![]),
            &Policy::new(),
            guards::TRANSPORT_GUARD_CYCLES,
        )
        .guard();
        shared.install_layer(
            shared.events.ip_recv,
            Some(guard),
            move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                let bytes = ev.payload.to_vec();
                ctx.lease.charge(model.checksum(bytes.len()));
                let Some(msg) = IcmpMessage::parse(&bytes) else {
                    return;
                };
                if msg.kind == IcmpType::EchoRequest {
                    s.bump(|st| st.icmp_echoes += 1);
                    let reply = IcmpMessage::echo_reply(&msg);
                    let payload = Mbuf::from_payload(64, &reply.to_bytes());
                    ctx.lease.charge(model.checksum(payload.total_len()));
                    s.raise_ip_send(
                        ctx,
                        IpSendReq {
                            src: s.ip,
                            dst: ev.src,
                            protocol: ip::proto::ICMP,
                            payload,
                        },
                    );
                }
            },
            "icmp",
        );
    }

    /// The machine this stack runs on.
    pub fn machine(&self) -> &Rc<Machine> {
        &self.machine
    }

    /// This stack's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.shared.ip
    }

    /// This stack's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.shared.mac
    }

    /// The stack's dispatcher (for inspection in tests/benches).
    pub fn dispatcher(&self) -> &Rc<Dispatcher> {
        &self.shared.dispatcher
    }

    /// Stack counters.
    pub fn stats(&self) -> StackStats {
        self.shared.stats.get()
    }

    /// Renders the live protocol graph — Figure 1 as the kernel actually
    /// sees it: one line per event, with the number of handler nodes and
    /// how many hang off guards (packet filters).
    pub fn graph_description(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "protocol graph on {} ({}):\n",
            self.shared.ip, self.shared.mac
        ));
        for ev in self.shared.dispatcher.event_summary() {
            out.push_str(&format!(
                "  {:<22} {} handler(s), {} guarded\n",
                ev.name, ev.handlers, ev.guarded
            ));
        }
        out
    }

    /// The UDP protocol manager.
    pub fn udp(&self) -> &Rc<UdpManager> {
        &self.udp
    }

    /// The TCP protocol manager.
    pub fn tcp(&self) -> &Rc<TcpManager> {
        &self.tcp
    }

    /// Dynamically links an application extension against the public
    /// extension domain. Fails — rejecting the extension — if it imports
    /// any symbol outside that domain (§2).
    pub fn link_extension(&self, spec: &ExtensionSpec) -> Result<LinkedExtension, PlexusError> {
        Ok(self.shared.ext_domain.link(spec)?)
    }

    /// Unlinks an extension (managers revoke its endpoints separately).
    pub fn unlink_extension(&self, name: &str) -> bool {
        self.shared.ext_domain.unlink(name)
    }

    /// Unloads an extension completely: every endpoint, listener, and raw
    /// handler it installed is torn down, and its symbols are unlinked —
    /// the full "extensions come and go with their corresponding
    /// applications" lifecycle. Returns whether the extension was linked.
    pub fn unload_extension(&self, name: &str) -> bool {
        let actions = self.shared.ext_cleanup.borrow_mut().remove(name);
        for f in actions.into_iter().flatten() {
            f();
        }
        self.shared.ext_domain.unlink(name)
    }

    /// Attaches a raw Ethernet extension (e.g. active messages, §3.3) for
    /// frames of `ethertype` addressed to this host. The *manager* builds
    /// the guard, so the extension cannot widen it to snoop other traffic;
    /// claiming the IP or ARP types is refused outright.
    pub fn attach_ether(
        &self,
        ext: &LinkedExtension,
        ethertype: EtherType,
        handler: AppHandler<EthRecv>,
    ) -> Result<HandlerId, PlexusError> {
        if ethertype == EtherType::IPV4 || ethertype == EtherType::ARP {
            return Err(PlexusError::SnoopDenied(
                "EtherType belongs to the system protocol stack",
            ));
        }
        let my_mac = self.shared.mac;
        // The guard is manager-built *and* policy-checked: the verifier
        // proves it only accepts the claimed EtherType addressed to this
        // host, so the extension provably cannot snoop (§3.1).
        let policy = Policy::new()
            .require_eq(FieldKey::Field(Field::EthType), u64::from(ethertype.0))
            .require_in(
                FieldKey::Field(Field::EthDst),
                [mac_to_u64(my_mac), mac_to_u64(MacAddr::BROADCAST)],
            );
        let guard = guards::build_bounded(
            guards::ether_type_program(ethertype, Some(my_mac)),
            &policy,
            guards::ETHER_GUARD_CYCLES,
        )
        .guard();
        let id = self.shared.install_app(
            self.shared.events.eth_recv,
            Some(guard),
            handler,
            ext.name(),
        );
        let shared = self.shared.clone();
        self.shared.register_cleanup(ext, move || {
            shared.dispatcher.uninstall(shared.events.eth_recv, id);
        });
        Ok(id)
    }

    /// Detaches a raw Ethernet extension (runtime adaptation: extensions
    /// "come and go with their corresponding applications").
    pub fn detach_ether(&self, id: HandlerId) -> bool {
        self.shared
            .dispatcher
            .uninstall(self.shared.events.eth_recv, id)
    }

    /// Sends a raw Ethernet frame on behalf of an extension. The manager
    /// refuses the system EtherTypes, so extensions cannot inject forged
    /// IP/ARP traffic (link-level anti-spoofing).
    pub fn send_ether(
        &self,
        engine: &mut Engine,
        dst: MacAddr,
        ethertype: EtherType,
        payload: &[u8],
    ) -> Result<(), PlexusError> {
        let mut lease = self.shared.cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        self.send_ether_in(&mut ctx, dst, ethertype, payload)
    }

    /// [`PlexusStack::send_ether`] from inside an event handler (continues
    /// on the caller's CPU lease) — e.g. an active-message acknowledgement
    /// sent from the interrupt-level handler itself (§3.3).
    pub fn send_ether_in(
        &self,
        ctx: &mut RaiseCtx<'_>,
        dst: MacAddr,
        ethertype: EtherType,
        payload: &[u8],
    ) -> Result<(), PlexusError> {
        if ethertype == EtherType::IPV4 || ethertype == EtherType::ARP {
            return Err(PlexusError::SnoopDenied(
                "EtherType belongs to the system protocol stack",
            ));
        }
        let m = Mbuf::from_payload(ETHER_HDR_LEN, payload);
        self.shared.raise_eth_send(ctx, dst, ethertype, m);
        Ok(())
    }

    /// Sends a raw transport-layer packet over IP from inside a handler —
    /// the send path for *special protocol implementations* (§3.1's
    /// TCP-special and kin) that build their own transport headers. The
    /// source address is stamped with this host's own (the managers'
    /// Overwrite anti-spoofing policy applies here too).
    pub fn send_raw_ip(&self, ctx: &mut RaiseCtx<'_>, dst: Ipv4Addr, protocol: u8, payload: Mbuf) {
        self.shared.raise_ip_send(
            ctx,
            IpSendReq {
                src: self.shared.ip,
                dst,
                protocol,
                payload,
            },
        );
    }

    /// Sends an ICMP echo request (used by examples/tests).
    pub fn ping(&self, engine: &mut Engine, dst: Ipv4Addr, ident: u16, seq: u16, data: &[u8]) {
        let msg = IcmpMessage::echo_request(ident, seq, data);
        let payload = Mbuf::from_payload(64, &msg.to_bytes());
        let mut lease = self.shared.cpu.begin(engine.now());
        let model = lease.model().clone();
        lease.charge(model.checksum(payload.total_len()));
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        self.shared.raise_ip_send(
            &mut ctx,
            IpSendReq {
                src: self.shared.ip,
                dst,
                protocol: ip::proto::ICMP,
                payload,
            },
        );
    }

    /// Pre-seeds the ARP cache (lets latency benches measure steady-state
    /// round trips, as the paper's do).
    pub fn seed_arp(&self, ip: Ipv4Addr, mac: MacAddr) {
        self.shared.arp.borrow_mut().learn(ip, mac, 0);
    }

    /// Adds a local IP alias (privileged): the stack accepts datagrams for
    /// `ip` as its own. Used by a redirection target to take over the
    /// forwarder's address (§5.2) while preserving end-to-end semantics.
    pub fn add_ip_alias(&self, ip: Ipv4Addr) {
        self.shared.ip_aliases.borrow_mut().insert(ip);
    }

    /// Enables promiscuous delivery on the driver glue. Only the privileged
    /// stack owner can call this (it is not in the extension domain); used
    /// by tests to show extensions *cannot* obtain it.
    pub fn set_promiscuous(&self, on: bool) {
        self.shared.promiscuous.set(on);
    }
}
