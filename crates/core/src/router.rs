//! An in-kernel IP router.
//!
//! The paper's protocol graph ends at single-homed hosts, but SPIN's
//! pitch — protocol functionality "not generally available in conventional
//! systems" loaded into the kernel (§5.2) — extends naturally to packet
//! forwarding. This module is that extension: a multi-interface IP router
//! built from the same primitives (ARP, IP, ICMP, device drivers), with
//!
//! * longest-prefix-match forwarding over a [`RouteTable`],
//! * TTL decrement with ICMP Time Exceeded generation,
//! * re-fragmentation when the egress MTU is smaller than the ingress
//!   datagram (T3 → Ethernet, say), and
//! * per-interface ARP with packet parking.
//!
//! Hosts reach other subnets by configuring a gateway
//! ([`crate::StackConfig::gateway`]).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_kernel::view::view;
use plexus_net::arp::{ArpCache, ArpPacket, Resolution};
use plexus_net::ether::{self, EtherType, EtherView, MacAddr, ETHER_HDR_LEN};
use plexus_net::icmp::IcmpMessage;
use plexus_net::ip::{self, IpHeader, IpView, RouteTable};
use plexus_net::mbuf::Mbuf;
use plexus_sim::nic::{DriverConfig, Nic};
use plexus_sim::{CpuLease, Engine, Machine};

/// One router interface.
struct RouterIf {
    nic: Rc<Nic>,
    ip: Ipv4Addr,
    mac: MacAddr,
    arp: RefCell<ArpCache>,
    /// Datagrams parked awaiting ARP resolution, keyed by next hop.
    pending: RefCell<HashMap<Ipv4Addr, Vec<Mbuf>>>,
}

/// Router statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Datagrams forwarded.
    pub forwarded: u64,
    /// Datagrams dropped: no route to the destination.
    pub no_route: u64,
    /// Datagrams dropped for TTL expiry (Time Exceeded sent).
    pub ttl_expired: u64,
    /// Datagrams re-fragmented for a smaller egress MTU.
    pub refragmented: u64,
    /// ICMP echo requests to the router itself, answered.
    pub echoes: u64,
    /// Datagrams dropped with a bad header checksum.
    pub bad_header: u64,
}

/// A multi-interface IP router on one machine.
pub struct IpRouter {
    machine: Rc<Machine>,
    interfaces: Vec<Rc<RouterIf>>,
    routes: RefCell<RouteTable>,
    stats: Cell<RouterStats>,
    ident: Cell<u16>,
}

impl IpRouter {
    /// Builds a router over `machine`'s interfaces. `interfaces` pairs each
    /// NIC with its (address, MAC); directly attached /24 routes are
    /// installed automatically.
    pub fn attach(
        machine: &Rc<Machine>,
        interfaces: &[(Rc<Nic>, Ipv4Addr, MacAddr)],
    ) -> Rc<IpRouter> {
        assert!(
            interfaces.len() >= 2,
            "a router needs at least two interfaces"
        );
        let mut routes = RouteTable::new();
        let ifs: Vec<Rc<RouterIf>> = interfaces
            .iter()
            .enumerate()
            .map(|(idx, (nic, ip_addr, mac))| {
                let net = Ipv4Addr::from(u32::from(*ip_addr) & 0xFFFF_FF00);
                routes.add(net, 24, idx, None);
                Rc::new(RouterIf {
                    nic: nic.clone(),
                    ip: *ip_addr,
                    mac: *mac,
                    arp: RefCell::new(ArpCache::new()),
                    pending: RefCell::new(HashMap::new()),
                })
            })
            .collect();
        let router = Rc::new(IpRouter {
            machine: machine.clone(),
            interfaces: ifs,
            routes: RefCell::new(routes),
            stats: Cell::new(RouterStats::default()),
            ident: Cell::new(0x4000),
        });
        for (idx, riface) in router.interfaces.iter().enumerate() {
            let r = router.clone();
            let iface = riface.clone();
            riface
                .nic
                .attach(DriverConfig::per_frame(move |engine, frame| {
                    r.rx(engine, idx, &iface, frame);
                }));
        }
        router
    }

    /// Adds a route (e.g. to a network behind another router).
    pub fn add_route(
        &self,
        prefix: Ipv4Addr,
        prefix_len: u8,
        iface: usize,
        gateway: Option<Ipv4Addr>,
    ) {
        self.routes
            .borrow_mut()
            .add(prefix, prefix_len, iface, gateway);
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats.get()
    }

    /// The address of interface `idx`.
    pub fn iface_ip(&self, idx: usize) -> Ipv4Addr {
        self.interfaces[idx].ip
    }

    fn bump<F: FnOnce(&mut RouterStats)>(&self, f: F) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn next_ident(&self) -> u16 {
        let id = self.ident.get();
        self.ident.set(id.wrapping_add(1));
        id
    }

    fn is_my_ip(&self, ip_addr: Ipv4Addr) -> bool {
        self.interfaces.iter().any(|i| i.ip == ip_addr)
    }

    fn rx(self: &Rc<Self>, engine: &mut Engine, idx: usize, iface: &Rc<RouterIf>, frame: Vec<u8>) {
        let mut lease = self.machine.cpu().begin(engine.now());
        let model = lease.model().clone();
        lease.charge(model.interrupt_entry);
        lease.charge(iface.nic.profile().rx_cpu_cost(frame.len()));
        let Some(v) = view::<EtherView>(&frame) else {
            lease.charge(model.interrupt_exit);
            return;
        };
        if v.dst() != iface.mac && !v.dst().is_broadcast() {
            lease.charge(model.interrupt_exit);
            return;
        }
        match v.ethertype() {
            EtherType::ARP => self.arp_input(engine, &mut lease, iface, &frame[ETHER_HDR_LEN..]),
            EtherType::IPV4 => {
                lease.charge(model.eth_proc);
                self.ip_input(engine, &mut lease, idx, &frame[ETHER_HDR_LEN..]);
            }
            _ => {}
        }
        lease.charge(model.interrupt_exit);
    }

    fn arp_input(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        iface: &Rc<RouterIf>,
        bytes: &[u8],
    ) {
        let Some(pkt) = ArpPacket::parse(bytes) else {
            return;
        };
        let now = lease.now().as_nanos();
        let satisfied = iface
            .arp
            .borrow_mut()
            .learn(pkt.sender_ip, pkt.sender_mac, now);
        if satisfied {
            let parked = iface.pending.borrow_mut().remove(&pkt.sender_ip);
            for dgram in parked.into_iter().flatten() {
                self.transmit(engine, lease, iface, pkt.sender_mac, dgram);
            }
        }
        if pkt.op == plexus_net::arp::ArpOp::Request && pkt.target_ip == iface.ip {
            let reply = ArpPacket::reply_to(&pkt, iface.mac, iface.ip);
            let m = Mbuf::from_payload(ETHER_HDR_LEN, &reply.to_bytes());
            self.transmit_raw(engine, lease, iface, pkt.sender_mac, EtherType::ARP, m);
        }
    }

    fn ip_input(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        in_idx: usize,
        bytes: &[u8],
    ) {
        let model = lease.model().clone();
        lease.charge(model.ip_proc);
        let Some(v) = view::<IpView>(bytes) else {
            return;
        };
        if !v.checksum_ok() || v.version() != 4 {
            self.bump(|s| s.bad_header += 1);
            return;
        }
        let (src, dst, ttl) = (v.src(), v.dst(), v.ttl());
        let hlen = v.header_len();
        let total = v.total_len().min(bytes.len());

        // Addressed to the router itself: answer pings, drop the rest.
        if self.is_my_ip(dst) {
            if v.protocol() == ip::proto::ICMP && !v.is_fragment() {
                if let Some(msg) = IcmpMessage::parse(&bytes[hlen..total]) {
                    if msg.kind == plexus_net::icmp::IcmpType::EchoRequest {
                        self.bump(|s| s.echoes += 1);
                        let reply = IcmpMessage::echo_reply(&msg);
                        let m = Mbuf::from_payload(64, &reply.to_bytes());
                        lease.charge(model.checksum(m.total_len()));
                        self.route_and_send(
                            engine,
                            lease,
                            self.iface_for_reply(src),
                            src,
                            ip::proto::ICMP,
                            &m,
                        );
                    }
                }
            }
            return;
        }

        // Forwarding path.
        if ttl <= 1 {
            self.bump(|s| s.ttl_expired += 1);
            let te = IcmpMessage {
                kind: plexus_net::icmp::IcmpType::TimeExceeded,
                code: 0,
                ident: 0,
                seq: 0,
                payload: bytes[..total.min(28)].to_vec(),
            };
            let m = Mbuf::from_payload(64, &te.to_bytes());
            lease.charge(model.checksum(m.total_len()));
            self.route_and_send(
                engine,
                lease,
                self.iface_for_reply(src),
                src,
                ip::proto::ICMP,
                &m,
            );
            return;
        }

        let Some(route) = self.routes.borrow().lookup(dst) else {
            self.bump(|s| s.no_route += 1);
            return;
        };
        let out = &self.interfaces[route.iface];
        let next_hop = route.gateway.unwrap_or(dst);
        self.bump(|s| s.forwarded += 1);
        let _ = in_idx;

        // Rebuild the datagram with TTL-1 (the header checksum is
        // recomputed by `encapsulate`; a real router would fix it
        // incrementally — the CPU cost model charges `ip_proc` either way).
        let payload_bytes = &bytes[hlen..total];
        let hdr = IpHeader {
            src,
            dst,
            protocol: v.protocol(),
            ident: v.ident(),
            ttl: ttl - 1,
            more_fragments: v.more_fragments(),
            frag_offset: v.frag_offset(),
        };
        let egress_mtu = out.nic.profile().mtu;
        if payload_bytes.len() + ip::IP_HDR_LEN > egress_mtu {
            // Re-fragment for the smaller egress link. (Fragments of
            // fragments keep the original offsets, which `fragment`
            // handles via `hdr.frag_offset`.)
            self.bump(|s| s.refragmented += 1);
            let frags = ip::fragment(&hdr, &Mbuf::from_payload(0, payload_bytes), egress_mtu);
            for frag in frags {
                self.resolve_and_send(engine, lease, route.iface, next_hop, frag);
            }
        } else {
            let dgram = ip::encapsulate(&hdr, Mbuf::from_payload(ETHER_HDR_LEN, payload_bytes));
            self.resolve_and_send(engine, lease, route.iface, next_hop, dgram);
        }
    }

    /// Picks the interface whose subnet contains `dst` (for ICMP replies).
    fn iface_for_reply(&self, dst: Ipv4Addr) -> usize {
        self.routes
            .borrow()
            .lookup(dst)
            .map(|r| r.iface)
            .unwrap_or(0)
    }

    /// Builds and sends a router-originated datagram (ICMP) out `iface`.
    fn route_and_send(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        iface_idx: usize,
        dst: Ipv4Addr,
        protocol: u8,
        payload: &Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.ip_proc);
        let src = self.interfaces[iface_idx].ip;
        let hdr = IpHeader::simple(src, dst, protocol, self.next_ident());
        let next_hop = self
            .routes
            .borrow()
            .lookup(dst)
            .and_then(|r| r.gateway)
            .unwrap_or(dst);
        let dgram = ip::encapsulate(&hdr, payload.share());
        self.resolve_and_send(engine, lease, iface_idx, next_hop, dgram);
    }

    fn resolve_and_send(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        iface_idx: usize,
        next_hop: Ipv4Addr,
        dgram: Mbuf,
    ) {
        let model = lease.model().clone();
        let iface = &self.interfaces[iface_idx];
        lease.charge(model.arp_lookup);
        let res = iface
            .arp
            .borrow_mut()
            .resolve(next_hop, lease.now().as_nanos());
        match res {
            Resolution::Known(mac) => self.transmit(engine, lease, iface, mac, dgram),
            Resolution::NeedsRequest(first) => {
                iface
                    .pending
                    .borrow_mut()
                    .entry(next_hop)
                    .or_default()
                    .push(dgram);
                if first {
                    let req = ArpPacket::request(iface.mac, iface.ip, next_hop);
                    let m = Mbuf::from_payload(ETHER_HDR_LEN, &req.to_bytes());
                    self.transmit_raw(engine, lease, iface, MacAddr::BROADCAST, EtherType::ARP, m);
                }
            }
        }
    }

    fn transmit(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        iface: &Rc<RouterIf>,
        dst: MacAddr,
        dgram: Mbuf,
    ) {
        self.transmit_raw(engine, lease, iface, dst, EtherType::IPV4, dgram);
    }

    fn transmit_raw(
        self: &Rc<Self>,
        engine: &mut Engine,
        lease: &mut CpuLease,
        iface: &Rc<RouterIf>,
        dst: MacAddr,
        ethertype: EtherType,
        packet: Mbuf,
    ) {
        let model = lease.model().clone();
        lease.charge(model.eth_proc);
        let mut frame = packet.share();
        ether::write_header(frame.prepend(ETHER_HDR_LEN), dst, iface.mac, ethertype);
        lease.charge(iface.nic.tx_cpu_charge(lease.now(), frame.total_len()));
        let ready = lease.now();
        iface.nic.transmit(engine, ready, &frame);
    }

    /// Seeds an interface's ARP cache (steady-state benchmarking).
    pub fn seed_arp(&self, iface: usize, ip_addr: Ipv4Addr, mac: MacAddr) {
        self.interfaces[iface]
            .arp
            .borrow_mut()
            .learn(ip_addr, mac, 0);
    }
}
