//! Unit tests for the shared types (kept out of `types.rs` to keep that
//! file declaration-only).

#[cfg(test)]
mod tests {
    use crate::types::{AppHandler, DispatchMode, PlexusError, SourcePolicy, UdpRecv};
    use plexus_kernel::domain::LinkError;

    #[test]
    fn app_handler_classes_report_ephemerality() {
        let i: AppHandler<UdpRecv> = AppHandler::interrupt(|_, _| {});
        let t: AppHandler<UdpRecv> = AppHandler::thread(|_, _| {});
        assert!(i.is_ephemeral());
        assert!(!t.is_ephemeral());
    }

    #[test]
    fn errors_render_usable_messages() {
        let cases: Vec<(PlexusError, &str)> = vec![
            (PlexusError::PortInUse(80), "port 80"),
            (PlexusError::SnoopDenied("x"), "snoop"),
            (PlexusError::SpoofDetected, "source field"),
            (PlexusError::Revoked, "revoked"),
            (PlexusError::NotEphemeral, "ephemeral"),
            (
                PlexusError::Link(LinkError::Unresolved(vec!["VM.Map".into()])),
                "VM.Map",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(
                text.to_lowercase().contains(&needle.to_lowercase()),
                "{text:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn defaults_are_the_paper_defaults() {
        assert_eq!(SourcePolicy::default(), SourcePolicy::Overwrite);
        assert_ne!(DispatchMode::Interrupt, DispatchMode::Thread);
    }
}
