//! # plexus-core — the Plexus protocol architecture
//!
//! "Plexus is a networking architecture that allows applications to achieve
//! high performance with customized protocols." This crate is the paper's
//! primary contribution, rebuilt on the simulated SPIN substrate:
//!
//! * [`stack`] — the protocol graph of Figure 1: driver glue, Ethernet,
//!   ARP, IP (with fragmentation/reassembly), ICMP; raw-Ethernet extension
//!   attach for things like active messages; dynamic extension linking.
//! * [`udp_manager`] / [`tcp_manager`] — the protocol managers of §3.1:
//!   they install guards and handlers *on behalf of* untrusted extensions,
//!   preventing snooping (manager-built guards) and spoofing
//!   (manager-stamped sources); they support multiple implementations of
//!   one protocol and in-kernel port redirection (§5.2).
//! * [`types`] — event argument types, [`types::AppHandler`] (interrupt vs.
//!   thread delivery, §3.3), and errors.
//!
//! ## Quick start
//!
//! Build a [`plexus_sim::World`], attach a [`stack::PlexusStack`] per
//! machine, link an extension, bind a UDP endpoint, and run the engine —
//! see `examples/quickstart.rs` at the workspace root for a complete
//! two-machine ping-pong.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod guards;
pub mod router;
pub mod stack;
pub mod tcp_manager;
pub mod types;
#[cfg(test)]
mod types_tests;
pub mod udp_manager;

pub use router::{IpRouter, RouterStats};
pub use stack::{PlexusStack, StackConfig, StackStats};
pub use tcp_manager::{TcpCallbacks, TcpConn, TcpManager};
pub use types::{
    AppHandler, DispatchMode, EthRecv, EthSendReq, IpRecv, IpSendReq, PlexusError, SourcePolicy,
    TcpRecv, UdpRecv,
};
pub use udp_manager::{UdpEndpoint, UdpManager};
