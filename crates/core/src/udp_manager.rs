//! The UDP protocol manager (§3.1).
//!
//! The manager is the only party that installs handlers on the UDP events;
//! applications hand it a binding and a handler, and it builds the guard —
//! so an extension can only ever receive datagrams addressed to its own
//! port (anti-snooping) and every datagram it sends leaves with its own
//! source address stamped by the manager (anti-spoofing, "overwrite the
//! source field ... provides the best performance").
//!
//! Two extension mechanisms from the paper live here:
//!
//! * **Multiple implementations of one protocol** — a [`UdpConfig`] with
//!   the checksum disabled makes the binding a *special implementation*:
//!   the manager installs it as its own node on `Ip.PacketRecv` and
//!   excludes its port from the standard UDP node's guard, exactly like
//!   the paper's TCP-standard/TCP-special example.
//! * **Protocol redirection** (§5.2) — [`UdpManager::redirect`] installs a
//!   node that rewrites the destination of every datagram for a port and
//!   re-emits it below the transport layer, fixing the checksum
//!   incrementally.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_filter::{conjunction, EventKind, Field, FieldKey, Operand, Policy, PortSet, Test};
use plexus_kernel::dispatcher::{HandlerId, RaiseCtx};
use plexus_kernel::domain::LinkedExtension;
use plexus_net::checksum::incremental_update;
use plexus_net::ip::proto;
use plexus_net::mbuf::Mbuf;
use plexus_net::udp::{self, UdpConfig, UDP_HDR_LEN};
use plexus_sim::Engine;

use crate::guards;
use crate::stack::StackShared;
use crate::types::{AppHandler, IpRecv, IpSendReq, PlexusError, SourcePolicy, UdpRecv};

/// How a port is occupied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortUse {
    Standard,
    Special,
    Redirect,
}

/// The UDP protocol manager for one stack.
pub struct UdpManager {
    shared: Rc<StackShared>,
    ports: RefCell<HashMap<u16, PortUse>>,
    /// Ports claimed by special implementations or redirects; the standard
    /// UDP node's guard excludes them. The set is shared with the installed
    /// guard *program* (via `JInSet`), so claims take effect without
    /// reinstalling the node.
    special_ports: PortSet,
    delivered: Cell<u64>,
    spoofs_blocked: Cell<u64>,
    unreachable: Cell<u64>,
}

impl UdpManager {
    /// Installs the standard UDP implementation node and returns the
    /// manager.
    pub(crate) fn install(shared: &Rc<StackShared>) -> Rc<UdpManager> {
        let special_ports = PortSet::new();
        let mgr = Rc::new(UdpManager {
            shared: shared.clone(),
            ports: RefCell::new(HashMap::new()),
            special_ports: special_ports.clone(),
            delivered: Cell::new(0),
            spoofs_blocked: Cell::new(0),
            unreachable: Cell::new(0),
        });

        // Standard UDP node: IP payloads whose protocol is UDP and whose
        // destination port is not claimed by a special implementation.
        let guard = guards::build_bounded(
            guards::transport_over_ip(
                proto::UDP,
                None,
                Some(Test::NotInSet {
                    op: guards::TRANSPORT_DST_PORT,
                    set: 0,
                }),
                vec![special_ports],
            ),
            &Policy::new(),
            guards::TRANSPORT_GUARD_CYCLES,
        );
        let s = shared.clone();
        let m = mgr.clone();
        shared.install_layer(
            shared.events.ip_recv,
            Some(guard.guard()),
            move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                ctx.lease.charge(model.udp_proc);
                if !s.csum_offload {
                    ctx.lease.charge(model.checksum(ev.payload.total_len()));
                }
                let Some(dgram) =
                    udp::decapsulate(ev.src, ev.dst, UdpConfig::default(), &ev.payload)
                else {
                    return;
                };
                m.delivered.set(m.delivered.get() + 1);
                let arg = UdpRecv {
                    src: ev.src,
                    dst: ev.dst,
                    src_port: dgram.src_port,
                    dst_port: dgram.dst_port,
                    payload: dgram.payload,
                };
                let outcome = s.dispatcher.raise(ctx, s.events.udp_recv, &arg);
                if outcome.invoked == 0 && arg.dst != Ipv4Addr::BROADCAST {
                    // No endpoint claimed the datagram: answer with ICMP
                    // port unreachable (code 3), quoting the offending
                    // datagram's head, as a period BSD stack would.
                    m.unreachable.set(m.unreachable.get() + 1);
                    let mut quoted = ev.payload.to_vec();
                    quoted.truncate(28);
                    let msg = plexus_net::icmp::IcmpMessage::unreachable(3, &quoted);
                    let model = ctx.lease.model().clone();
                    let reply = Mbuf::from_payload(64, &msg.to_bytes());
                    ctx.lease.charge(model.checksum(reply.total_len()));
                    s.raise_ip_send(
                        ctx,
                        IpSendReq {
                            src: s.ip,
                            dst: ev.src,
                            protocol: proto::ICMP,
                            payload: reply,
                        },
                    );
                }
            },
            "udp",
        );
        mgr
    }

    /// Datagrams the standard node delivered upward.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Sends rejected for carrying a forged source (Verify policy).
    pub fn spoofs_blocked(&self) -> u64 {
        self.spoofs_blocked.get()
    }

    /// Datagrams answered with ICMP port unreachable (no endpoint bound).
    pub fn unreachable_sent(&self) -> u64 {
        self.unreachable.get()
    }

    fn claim_port(&self, port: u16, kind: PortUse) -> Result<(), PlexusError> {
        let mut ports = self.ports.borrow_mut();
        if ports.contains_key(&port) {
            return Err(PlexusError::PortInUse(port));
        }
        ports.insert(port, kind);
        Ok(())
    }

    /// Binds `port` for an application extension.
    ///
    /// The *manager* builds the guard (destination port and address match),
    /// so the handler can only see the endpoint's own traffic. A non-default
    /// `config` (checksum disabled) installs the binding as a special UDP
    /// implementation below the standard node.
    pub fn bind(
        self: &Rc<Self>,
        ext: &LinkedExtension,
        port: u16,
        config: UdpConfig,
        handler: AppHandler<UdpRecv>,
    ) -> Result<Rc<UdpEndpoint>, PlexusError> {
        let standard = config == UdpConfig::default();
        self.claim_port(
            port,
            if standard {
                PortUse::Standard
            } else {
                PortUse::Special
            },
        )?;

        let my_ip = self.shared.ip;
        let handler_id = if standard {
            // Endpoint node on Udp.PacketRecv. The policy makes the §3.1
            // anti-snooping argument a machine-checked theorem: the program
            // provably accepts only this binding's port at this host.
            let policy = Policy::new()
                .require_eq(FieldKey::Field(Field::UdpDstPort), u64::from(port))
                .require_in(
                    FieldKey::Field(Field::UdpDstAddr),
                    guards::local_dst_values(my_ip),
                );
            let guard = guards::build_bounded(
                conjunction(
                    EventKind::UdpRecv,
                    &[
                        Test::eq(Operand::Field(Field::UdpDstPort), u64::from(port)),
                        Test::one_of(
                            Operand::Field(Field::UdpDstAddr),
                            guards::local_dst_values(my_ip),
                        ),
                    ],
                    vec![],
                ),
                &policy,
                guards::TRANSPORT_GUARD_CYCLES,
            );
            self.shared.install_app(
                self.shared.events.udp_recv,
                Some(guard.guard()),
                handler,
                ext.name(),
            )
        } else {
            // Special implementation: its own node on Ip.PacketRecv, doing
            // its own (cheaper) datagram processing. Its guard reads the
            // port straight out of the raw UDP header, and the policy pins
            // that load to the claimed port.
            self.special_ports.insert(port);
            let policy = Policy::new()
                .require_eq(FieldKey::Field(Field::IpProto), u64::from(proto::UDP))
                .require_eq(guards::TRANSPORT_DST_PORT_KEY, u64::from(port))
                .require_in(
                    FieldKey::Field(Field::IpDst),
                    guards::local_dst_values(my_ip),
                );
            let guard = guards::build_bounded(
                guards::transport_over_ip(
                    proto::UDP,
                    Some(my_ip),
                    Some(Test::eq(guards::TRANSPORT_DST_PORT, u64::from(port))),
                    vec![],
                ),
                &policy,
                guards::TRANSPORT_GUARD_CYCLES,
            );
            let wrapped = wrap_special_udp(config, self.shared.csum_offload, handler);
            self.shared.install_app(
                self.shared.events.ip_recv,
                Some(guard.guard()),
                wrapped,
                ext.name(),
            )
        };

        let endpoint = Rc::new(UdpEndpoint {
            manager: self.clone(),
            port,
            config,
            handler_id,
            standard,
            closed: Cell::new(false),
        });
        // Unloading the owning extension closes the endpoint. The registry
        // holds a strong reference: the installation outlives the app's
        // handle (the dispatcher side is what actually receives), and
        // `close` is idempotent if the app already closed it.
        let ep = endpoint.clone();
        self.shared.register_cleanup(ext, move || ep.close());
        Ok(endpoint)
    }

    /// Installs a port redirector (the §5.2 forwarding protocol): every
    /// datagram arriving for `port` is re-emitted to `new_dst` *below* the
    /// transport layer, preserving the original source so the protocol's
    /// end-to-end fields survive. The UDP checksum is fixed incrementally.
    pub fn redirect(
        self: &Rc<Self>,
        ext: &LinkedExtension,
        port: u16,
        new_dst: Ipv4Addr,
    ) -> Result<HandlerId, PlexusError> {
        self.claim_port(port, PortUse::Redirect)?;
        self.special_ports.insert(port);
        let shared = self.shared.clone();
        let policy = Policy::new()
            .require_eq(FieldKey::Field(Field::IpProto), u64::from(proto::UDP))
            .require_eq(guards::TRANSPORT_DST_PORT_KEY, u64::from(port));
        let guard = guards::build_bounded(
            guards::transport_over_ip(
                proto::UDP,
                None,
                Some(Test::eq(guards::TRANSPORT_DST_PORT, u64::from(port))),
                vec![],
            ),
            &policy,
            guards::TRANSPORT_GUARD_CYCLES,
        );
        let old_dst = self.shared.ip;
        Ok(self.shared.install_layer(
            self.shared.events.ip_recv,
            Some(guard.guard()),
            move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                // Header rewrite + incremental checksum fix: a handful of
                // loads/stores, modeled as one procedure call.
                ctx.lease.charge(model.proc_call);
                let mut fixed = ev.payload.share();
                fix_udp_checksum_for_dst(&mut fixed, old_dst, new_dst);
                shared.raise_ip_send(
                    ctx,
                    IpSendReq {
                        src: ev.src, // Preserved: end-to-end semantics hold.
                        dst: new_dst,
                        protocol: proto::UDP,
                        payload: fixed,
                    },
                );
            },
            ext.name(),
        ))
    }

    fn release(&self, port: u16) {
        self.ports.borrow_mut().remove(&port);
        self.special_ports.remove(port);
    }
}

/// Rewrites the UDP checksum for a destination-address change using the
/// RFC 1624 incremental update (no payload rescan).
fn fix_udp_checksum_for_dst(m: &mut Mbuf, old_dst: Ipv4Addr, new_dst: Ipv4Addr) {
    let mut field = [0u8; 2];
    if !m.read_at(6, &mut field) {
        return;
    }
    let mut check = u16::from_be_bytes(field);
    if check == 0 {
        return; // Checksum disabled.
    }
    let old = old_dst.octets();
    let new = new_dst.octets();
    for i in [0usize, 2] {
        check = incremental_update(
            check,
            u16::from_be_bytes([old[i], old[i + 1]]),
            u16::from_be_bytes([new[i], new[i + 1]]),
        );
    }
    m.write_at(6, &check.to_be_bytes());
}

/// Adapts an application's `UdpRecv` handler to run as a special UDP
/// implementation directly on `Ip.PacketRecv`, preserving its
/// interrupt/thread class (the certification carries through the adapter —
/// an ephemeral wrapper around an ephemeral body).
fn wrap_special_udp(
    config: UdpConfig,
    csum_offload: bool,
    handler: AppHandler<UdpRecv>,
) -> AppHandler<IpRecv> {
    let adapt =
        move |ctx: &mut RaiseCtx<'_>, ev: &IpRecv, inner: &dyn Fn(&mut RaiseCtx<'_>, &UdpRecv)| {
            let model = ctx.lease.model().clone();
            ctx.lease.charge(model.udp_proc);
            if config.checksum && !csum_offload {
                ctx.lease.charge(model.checksum(ev.payload.total_len()));
            }
            let Some(dgram) = udp::decapsulate(ev.src, ev.dst, config, &ev.payload) else {
                return;
            };
            let arg = UdpRecv {
                src: ev.src,
                dst: ev.dst,
                src_port: dgram.src_port,
                dst_port: dgram.dst_port,
                payload: dgram.payload,
            };
            inner(ctx, &arg);
        };
    match handler {
        AppHandler::Interrupt(eph) => {
            let f = eph.into_inner();
            AppHandler::interrupt(move |ctx: &mut RaiseCtx<'_>, ev: &IpRecv| {
                adapt(ctx, ev, &*f);
            })
        }
        AppHandler::Thread(f) => AppHandler::thread(move |ctx: &mut RaiseCtx<'_>, ev: &IpRecv| {
            adapt(ctx, ev, &*f);
        }),
    }
}

/// A legitimate UDP sending/receiving endpoint (§3.1): the object whose
/// possession is the right to raise the sends for its port.
pub struct UdpEndpoint {
    manager: Rc<UdpManager>,
    port: u16,
    config: UdpConfig,
    handler_id: HandlerId,
    standard: bool,
    closed: Cell<bool>,
}

impl UdpEndpoint {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Sends `payload` from this endpoint. The source address/port are the
    /// endpoint's own — the manager stamps them, so spoofing is
    /// structurally impossible. Use inside an event handler.
    pub fn send_in(
        &self,
        ctx: &mut RaiseCtx<'_>,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) -> Result<(), PlexusError> {
        self.send_mbuf_in(ctx, dst, dst_port, Mbuf::from_payload(64, payload))
    }

    /// [`UdpEndpoint::send_in`] taking an existing mbuf (zero-copy path,
    /// used by the video server to send disk blocks directly).
    pub fn send_mbuf_in(
        &self,
        ctx: &mut RaiseCtx<'_>,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Mbuf,
    ) -> Result<(), PlexusError> {
        if self.closed.get() {
            return Err(PlexusError::Revoked);
        }
        let shared = &self.manager.shared;
        let model = ctx.lease.model().clone();
        ctx.lease.charge(model.udp_proc);
        let dgram = if self.config.checksum && shared.csum_offload {
            // The NIC fills the checksum during the DMA gather: stamp the
            // deferred-checksum descriptor and skip the software pass.
            udp::encapsulate_offload(shared.ip, dst, self.port, dst_port, payload)
        } else {
            if self.config.checksum {
                ctx.lease
                    .charge(model.checksum(payload.total_len() + UDP_HDR_LEN));
            }
            udp::encapsulate(shared.ip, dst, self.port, dst_port, self.config, payload)
        };
        shared.raise_ip_send(
            ctx,
            IpSendReq {
                src: shared.ip, // Manager-stamped source (Overwrite policy).
                dst,
                protocol: proto::UDP,
                payload: dgram,
            },
        );
        Ok(())
    }

    /// Top-level send (opens its own CPU lease): for code running outside
    /// any event handler, e.g. a benchmark driver kicking off a ping.
    pub fn send(
        &self,
        engine: &mut Engine,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) -> Result<(), PlexusError> {
        let cpu = self.manager.shared.cpu.clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        self.send_in(&mut ctx, dst, dst_port, payload)
    }

    /// Debugging variant with [`SourcePolicy::Verify`] (§3.1): the caller
    /// *claims* a source address; the manager checks it against the
    /// endpoint's legitimate address and rejects mismatches.
    pub fn send_verified(
        &self,
        engine: &mut Engine,
        claimed_src: Ipv4Addr,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
        policy: SourcePolicy,
    ) -> Result<(), PlexusError> {
        if policy == SourcePolicy::Verify && claimed_src != self.manager.shared.ip {
            self.manager
                .spoofs_blocked
                .set(self.manager.spoofs_blocked.get() + 1);
            return Err(PlexusError::SpoofDetected);
        }
        self.send(engine, dst, dst_port, payload)
    }

    /// Unbinds the endpoint: uninstalls the handler and frees the port
    /// (runtime adaptation). Idempotent.
    pub fn close(&self) {
        if self.closed.replace(true) {
            return;
        }
        let shared = &self.manager.shared;
        if self.standard {
            shared
                .dispatcher
                .uninstall(shared.events.udp_recv, self.handler_id);
        } else {
            shared
                .dispatcher
                .uninstall(shared.events.ip_recv, self.handler_id);
        }
        self.manager.release(self.port);
    }
}

impl std::fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("port", &self.port)
            .field("checksum", &self.config.checksum)
            .field("closed", &self.closed.get())
            .finish()
    }
}
