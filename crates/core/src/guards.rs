//! Manager-side guard construction.
//!
//! Every guard the stack and its protocol managers install is compiled to
//! the declarative filter IR and **statically verified** before it reaches
//! the dispatcher — the paper's "guards are packet filters" (§3.1) made
//! checkable. The helpers here capture the two shapes the managers share:
//! an EtherType demultiplexer on `Ethernet.PacketRecv` and a transport
//! node on `Ip.PacketRecv` (protocol number + optional local-destination
//! check + a destination-port test), which is the common skeleton of the
//! standard UDP node, special UDP bindings, UDP/TCP redirectors, and
//! special TCP claims.

use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_filter::{
    conjunction, verify_with_policy, EventKind, Field, FilterProgram, Operand, Packet, Policy,
    PortSet, Test, Width,
};
use plexus_kernel::dispatcher::Guard;
use plexus_net::ether::{EtherType, MacAddr};

use crate::types::mac_to_u64;

/// The destination port of a transport header at the head of an IP
/// payload: bytes 2..4 of both the UDP and the TCP header.
pub(crate) const TRANSPORT_DST_PORT: Operand = Operand::Pay {
    off: 2,
    width: Width::W16,
};

/// The [`plexus_filter::FieldKey`] for [`TRANSPORT_DST_PORT`], used when a
/// policy must pin the port a transport guard may accept.
pub(crate) const TRANSPORT_DST_PORT_KEY: plexus_filter::FieldKey =
    plexus_filter::FieldKey::Pay(2, Width::W16);

/// `IpDst ∈ {my_ip, broadcast}` — the locality test transport bindings use.
pub(crate) fn local_dst_test(my_ip: Ipv4Addr) -> Test {
    Test::one_of(Operand::Field(Field::IpDst), local_dst_values(my_ip))
}

/// The value set `{my_ip, broadcast}` (for building the matching policy).
pub(crate) fn local_dst_values(my_ip: Ipv4Addr) -> [u64; 2] {
    [
        u64::from(u32::from(my_ip)),
        u64::from(u32::from(Ipv4Addr::BROADCAST)),
    ]
}

/// The guard shape shared by every transport node on `Ip.PacketRecv`:
/// `IpProto == proto`, optionally `IpDst ∈ {my_ip, broadcast}`, then the
/// caller's destination-port test (if any).
pub(crate) fn transport_over_ip(
    proto: u8,
    local_dst: Option<Ipv4Addr>,
    port_test: Option<Test>,
    sets: Vec<PortSet>,
) -> FilterProgram {
    let mut tests = vec![Test::eq(Operand::Field(Field::IpProto), u64::from(proto))];
    if let Some(ip) = local_dst {
        tests.push(local_dst_test(ip));
    }
    tests.extend(port_test);
    conjunction(EventKind::IpRecv, &tests, sets)
}

/// An EtherType demultiplexer on `Ethernet.PacketRecv`, optionally
/// restricted to frames addressed to `local_dst` (or broadcast).
pub(crate) fn ether_type_program(
    ethertype: EtherType,
    local_dst: Option<MacAddr>,
) -> FilterProgram {
    let mut tests = vec![Test::eq(
        Operand::Field(Field::EthType),
        u64::from(ethertype.0),
    )];
    if let Some(mac) = local_dst {
        tests.push(Test::one_of(
            Operand::Field(Field::EthDst),
            [mac_to_u64(mac), mac_to_u64(MacAddr::BROADCAST)],
        ));
    }
    conjunction(EventKind::EthRecv, &tests, vec![])
}

/// Verifies a manager-built program against `policy` and wraps it as a
/// dispatcher guard. The managers are trusted code building guards from
/// their own bindings, so a verification failure here is a manager bug,
/// not a packet-time condition — it panics with the full report.
pub(crate) fn verified<T: Packet + 'static>(program: FilterProgram, policy: &Policy) -> Guard<T> {
    match verify_with_policy(&program, policy) {
        Ok(vp) => Guard::verified(Rc::new(vp)),
        Err(report) => panic!("manager-built guard failed verification:\n{report}"),
    }
}
