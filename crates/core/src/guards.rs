//! Manager-side guard construction.
//!
//! Every guard the stack and its protocol managers install is compiled to
//! the declarative filter IR and **statically verified** before it reaches
//! the dispatcher — the paper's "guards are packet filters" (§3.1) made
//! checkable. The helpers here capture the two shapes the managers share:
//! an EtherType demultiplexer on `Ethernet.PacketRecv` and a transport
//! node on `Ip.PacketRecv` (protocol number + optional local-destination
//! check + a destination-port test), which is the common skeleton of the
//! standard UDP node, special UDP bindings, UDP/TCP redirectors, and
//! special TCP claims.

use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_filter::{
    conjunction, verify_with_policy, DemuxKey, EventKind, Field, FilterProgram, KeySpec, Operand,
    Packet, Policy, PortSet, Test, VerifiedProgram, Width,
};
use plexus_kernel::dispatcher::Guard;
use plexus_net::ether::{EtherType, MacAddr};

use crate::types::mac_to_u64;

/// Declared worst-case cycle ceiling for EtherType demux guards (an
/// EthType test plus at most a two-address destination check).
pub(crate) const ETHER_GUARD_CYCLES: u32 = 8;

/// Declared ceiling for transport-node guards: protocol number, optional
/// locality test, and a single pinned-port (or NotInSet carve-out) test.
pub(crate) const TRANSPORT_GUARD_CYCLES: u32 = 16;

/// Declared ceiling for transport guards enumerating a claimed port list
/// (`Test::one_of`); covers a few dozen ports.
pub(crate) const MULTIPORT_GUARD_CYCLES: u32 = 32;

/// The destination port of a transport header at the head of an IP
/// payload: bytes 2..4 of both the UDP and the TCP header.
pub(crate) const TRANSPORT_DST_PORT: Operand = Operand::Pay {
    off: 2,
    width: Width::W16,
};

/// The [`plexus_filter::FieldKey`] for [`TRANSPORT_DST_PORT`], used when a
/// policy must pin the port a transport guard may accept.
pub(crate) const TRANSPORT_DST_PORT_KEY: plexus_filter::FieldKey =
    plexus_filter::FieldKey::Pay(2, Width::W16);

/// `IpDst ∈ {my_ip, broadcast}` — the locality test transport bindings use.
pub(crate) fn local_dst_test(my_ip: Ipv4Addr) -> Test {
    Test::one_of(Operand::Field(Field::IpDst), local_dst_values(my_ip))
}

/// The value set `{my_ip, broadcast}` (for building the matching policy).
pub(crate) fn local_dst_values(my_ip: Ipv4Addr) -> [u64; 2] {
    [
        u64::from(u32::from(my_ip)),
        u64::from(u32::from(Ipv4Addr::BROADCAST)),
    ]
}

/// The guard shape shared by every transport node on `Ip.PacketRecv`:
/// `IpProto == proto`, optionally `IpDst ∈ {my_ip, broadcast}`, then the
/// caller's destination-port test (if any).
pub(crate) fn transport_over_ip(
    proto: u8,
    local_dst: Option<Ipv4Addr>,
    port_test: Option<Test>,
    sets: Vec<PortSet>,
) -> FilterProgram {
    let mut tests = vec![Test::eq(Operand::Field(Field::IpProto), u64::from(proto))];
    if let Some(ip) = local_dst {
        tests.push(local_dst_test(ip));
    }
    tests.extend(port_test);
    conjunction(EventKind::IpRecv, &tests, sets)
}

/// An EtherType demultiplexer on `Ethernet.PacketRecv`, optionally
/// restricted to frames addressed to `local_dst` (or broadcast).
pub(crate) fn ether_type_program(
    ethertype: EtherType,
    local_dst: Option<MacAddr>,
) -> FilterProgram {
    let mut tests = vec![Test::eq(
        Operand::Field(Field::EthType),
        u64::from(ethertype.0),
    )];
    if let Some(mac) = local_dst {
        tests.push(Test::one_of(
            Operand::Field(Field::EthDst),
            [mac_to_u64(mac), mac_to_u64(MacAddr::BROADCAST)],
        ));
    }
    conjunction(EventKind::EthRecv, &tests, vec![])
}

/// A verified guard plus everything the dispatcher learned about it
/// statically: the one product every manager-built guard comes in.
///
/// Managers used to hand the dispatcher a bare [`Guard`] and had no view
/// of whether their filter was demux-indexable; now verification and key
/// extraction happen in one place, and the manager never matches on guard
/// kind — it calls [`GuardSpec::guard`] and installs.
pub(crate) struct GuardSpec {
    program: Rc<VerifiedProgram>,
    key: Option<KeySpec>,
}

impl GuardSpec {
    /// The verified program.
    #[allow(dead_code)]
    pub(crate) fn program(&self) -> &Rc<VerifiedProgram> {
        &self.program
    }

    /// The demux key the dispatcher will index this guard under, if its
    /// accept condition is an extractable field conjunction. Exercised by
    /// the indexability tests; production code lets the dispatcher do its
    /// own extraction at install time.
    #[allow(dead_code)]
    pub(crate) fn key(&self) -> Option<&KeySpec> {
        self.key.as_ref()
    }

    /// Wraps the program as a dispatcher guard for event argument `T`.
    pub(crate) fn guard<T: Packet + 'static>(&self) -> Guard<T> {
        Guard::verified(self.program.clone())
    }
}

/// Verifies a manager-built program against `policy` and packages it with
/// its demux key. The managers are trusted code building guards from
/// their own bindings, so a verification failure here is a manager bug,
/// not a packet-time condition — it panics with the full report.
pub(crate) fn build(program: FilterProgram, policy: &Policy) -> GuardSpec {
    match verify_with_policy(&program, policy) {
        Ok(vp) => {
            let vp = Rc::new(vp);
            let key = DemuxKey::extract(&vp);
            GuardSpec { program: vp, key }
        }
        Err(report) => panic!("manager-built guard failed verification:\n{report}"),
    }
}

/// [`build`] plus a declared worst-case cycle ceiling: the manager states
/// up front how expensive its guard shape may get, and the verifier's
/// static bound must prove it. A violation is a manager bug (the guard
/// shape grew past what its site declared), caught at build time rather
/// than at interrupt-admission time — every declared ceiling is itself
/// within [`plexus_kernel::DEFAULT_INTERRUPT_CYCLE_BUDGET`], so a guard
/// passing this check always admits at interrupt level.
pub(crate) fn build_bounded(
    program: FilterProgram,
    policy: &Policy,
    declared_max_cycles: u32,
) -> GuardSpec {
    let spec = build(program, policy);
    let bound = spec.program.static_bound();
    assert!(
        bound <= declared_max_cycles,
        "manager-built guard's static worst-case bound is {bound} cycles, \
         over its site's declared ceiling of {declared_max_cycles}"
    );
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite claim behind the demux index: every guard shape the
    /// managers build — EtherType demux, transport node with a NotInSet
    /// port carve-out, and pinned-port bindings — extracts a demux key, so
    /// all manager installs land on the hash path without any manager
    /// knowing the index exists.
    #[test]
    fn manager_guard_shapes_are_demux_indexable() {
        let ether = build(ether_type_program(EtherType::IPV4, None), &Policy::new());
        assert!(ether.key().is_some(), "EtherType demux guard must index");
        assert_eq!(ether.program().program().kind, EventKind::EthRecv);

        let udp_standard = build(
            transport_over_ip(
                17,
                None,
                Some(Test::NotInSet {
                    op: TRANSPORT_DST_PORT,
                    set: 0,
                }),
                vec![PortSet::new()],
            ),
            &Policy::new(),
        );
        assert!(
            udp_standard.key().is_some(),
            "UDP standard node (proto + NotInSet) must index"
        );

        let my_ip = Ipv4Addr::new(10, 0, 0, 1);
        let special_bind = build(
            transport_over_ip(
                17,
                Some(my_ip),
                Some(Test::eq(TRANSPORT_DST_PORT, 53)),
                vec![],
            ),
            &Policy::new(),
        );
        assert!(
            special_bind.key().is_some(),
            "special binding (proto + local dst + pinned port) must index"
        );
    }

    /// The admission-control acceptance claim: every guard shape the
    /// managers install fits its site's declared cycle ceiling (checked
    /// by `build_bounded`, which panics otherwise), and every ceiling is
    /// within the dispatcher's default interrupt budget — so all thirteen
    /// manager sites admit at interrupt level.
    #[test]
    fn manager_guard_shapes_fit_their_declared_ceilings() {
        const {
            assert!(ETHER_GUARD_CYCLES <= plexus_kernel::DEFAULT_INTERRUPT_CYCLE_BUDGET);
            assert!(TRANSPORT_GUARD_CYCLES <= plexus_kernel::DEFAULT_INTERRUPT_CYCLE_BUDGET);
            assert!(MULTIPORT_GUARD_CYCLES <= plexus_kernel::DEFAULT_INTERRUPT_CYCLE_BUDGET);
        }

        let mac = MacAddr([2, 0, 0, 0, 0, 7]);
        build_bounded(
            ether_type_program(EtherType::ARP, None),
            &Policy::new(),
            ETHER_GUARD_CYCLES,
        );
        build_bounded(
            ether_type_program(EtherType::IPV4, Some(mac)),
            &Policy::new(),
            ETHER_GUARD_CYCLES,
        );
        build_bounded(
            transport_over_ip(1, None, None, vec![]),
            &Policy::new(),
            TRANSPORT_GUARD_CYCLES,
        );
        build_bounded(
            transport_over_ip(
                17,
                None,
                Some(Test::NotInSet {
                    op: TRANSPORT_DST_PORT,
                    set: 0,
                }),
                vec![PortSet::new()],
            ),
            &Policy::new(),
            TRANSPORT_GUARD_CYCLES,
        );
        build_bounded(
            transport_over_ip(
                6,
                Some(Ipv4Addr::new(10, 0, 0, 1)),
                Some(Test::eq(TRANSPORT_DST_PORT, 53)),
                vec![],
            ),
            &Policy::new(),
            TRANSPORT_GUARD_CYCLES,
        );
        // A claimed-port list at the multi-port ceiling's working size.
        build_bounded(
            transport_over_ip(
                6,
                None,
                Some(Test::one_of(
                    TRANSPORT_DST_PORT,
                    (1u64..=20).collect::<Vec<_>>(),
                )),
                vec![],
            ),
            &Policy::new(),
            MULTIPORT_GUARD_CYCLES,
        );
        // The per-connection 4-tuple shape.
        build_bounded(
            conjunction(
                EventKind::TcpRecv,
                &[
                    Test::eq(Operand::Field(Field::TcpDstPort), 80),
                    Test::eq(Operand::Field(Field::TcpDstAddr), 1),
                    Test::eq(Operand::Field(Field::TcpSrcAddr), 2),
                    Test::eq(Operand::Field(Field::TcpSrcPort), 4242),
                ],
                vec![],
            ),
            &Policy::new(),
            TRANSPORT_GUARD_CYCLES,
        );
    }
}
