//! Event argument types, handler classes, and errors for the Plexus graph.

use std::fmt;
use std::net::Ipv4Addr;

use plexus_filter::{EventKind, Field, Packet};
use plexus_kernel::dispatcher::RaiseCtx;
use plexus_kernel::domain::LinkError;
use plexus_kernel::ephemeral::Ephemeral;
use plexus_kernel::view::view;
use plexus_net::ether::{EtherType, EtherView, MacAddr};
use plexus_net::mbuf::Mbuf;

/// Argument of `Ethernet.PacketRecv`: a whole received frame. Guards use
/// `VIEW` on [`Mbuf::head`] (the driver pulls the link header up front),
/// exactly like Figure 2's active-message guard.
#[derive(Debug)]
pub struct EthRecv {
    /// The frame, link header first.
    pub mbuf: Mbuf,
}

/// Argument of `Ethernet.PacketSend`: a network-layer packet plus the link
/// addressing the sender resolved.
#[derive(Debug)]
pub struct EthSendReq {
    /// Destination MAC.
    pub dst: MacAddr,
    /// EtherType for the payload.
    pub ethertype: EtherType,
    /// The network-layer packet (header space available for prepend).
    pub packet: Mbuf,
}

/// Argument of `Ip.PacketRecv`: a validated (and, if needed, reassembled)
/// IP payload.
#[derive(Debug)]
pub struct IpRecv {
    /// Source address from the IP header.
    pub src: Ipv4Addr,
    /// Destination address from the IP header.
    pub dst: Ipv4Addr,
    /// Payload protocol number.
    pub protocol: u8,
    /// The transport-layer bytes (IP header already consumed). Transport
    /// guards `VIEW` their headers at offset 0 of this buffer.
    pub payload: Mbuf,
}

/// Argument of `Ip.PacketSend`: a transport packet awaiting an IP header.
#[derive(Debug)]
pub struct IpSendReq {
    /// Source address. Protocol managers *overwrite* this with the sending
    /// endpoint's legitimate address before raising (§3.1's anti-spoofing).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol number.
    pub protocol: u8,
    /// Transport-layer packet.
    pub payload: Mbuf,
}

/// Argument of `Udp.PacketRecv`: a validated datagram. Per-endpoint guards
/// match on the port/address fields.
#[derive(Debug)]
pub struct UdpRecv {
    /// Source IP.
    pub src: Ipv4Addr,
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Mbuf,
}

/// Argument of `Tcp.PacketRecv`: a verified TCP segment with its
/// addressing. Connection guards match the 4-tuple.
#[derive(Debug)]
pub struct TcpRecv {
    /// Source IP.
    pub src: Ipv4Addr,
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// The parsed segment.
    pub segment: plexus_net::tcp::TcpSegment,
}

/// A MAC address as the 48-bit integer the guard IR compares (big-endian
/// byte order, matching [`Field::EthDst`]/[`Field::EthSrc`]).
pub(crate) fn mac_to_u64(mac: MacAddr) -> u64 {
    mac.0.iter().fold(0u64, |acc, b| (acc << 8) | u64::from(*b))
}

// How each event exposes itself to verified guard programs: the typed
// fields mirror exactly what the old closure guards could observe, and
// `head()` is the same contiguous byte window the closures reached through
// `view`. A field of the wrong kind answers `None`, which the checked
// interpreter turns into a rejection.

impl Packet for EthRecv {
    fn kind(&self) -> EventKind {
        EventKind::EthRecv
    }

    fn field(&self, field: Field) -> Option<u64> {
        let v = view::<EtherView>(self.mbuf.head());
        match field {
            Field::EthDst => v.map(|v| mac_to_u64(v.dst())),
            Field::EthSrc => v.map(|v| mac_to_u64(v.src())),
            Field::EthType => v.map(|v| u64::from(v.ethertype().0)),
            Field::FrameLen => Some(self.mbuf.total_len() as u64),
            _ => None,
        }
    }

    fn head(&self) -> &[u8] {
        self.mbuf.head()
    }
}

impl Packet for IpRecv {
    fn kind(&self) -> EventKind {
        EventKind::IpRecv
    }

    fn field(&self, field: Field) -> Option<u64> {
        match field {
            Field::IpSrc => Some(u64::from(u32::from(self.src))),
            Field::IpDst => Some(u64::from(u32::from(self.dst))),
            Field::IpProto => Some(u64::from(self.protocol)),
            Field::IpPayloadLen => Some(self.payload.total_len() as u64),
            _ => None,
        }
    }

    fn head(&self) -> &[u8] {
        self.payload.head()
    }
}

impl Packet for UdpRecv {
    fn kind(&self) -> EventKind {
        EventKind::UdpRecv
    }

    fn field(&self, field: Field) -> Option<u64> {
        match field {
            Field::UdpSrcAddr => Some(u64::from(u32::from(self.src))),
            Field::UdpDstAddr => Some(u64::from(u32::from(self.dst))),
            Field::UdpSrcPort => Some(u64::from(self.src_port)),
            Field::UdpDstPort => Some(u64::from(self.dst_port)),
            Field::UdpPayloadLen => Some(self.payload.total_len() as u64),
            _ => None,
        }
    }

    fn head(&self) -> &[u8] {
        self.payload.head()
    }
}

impl Packet for TcpRecv {
    fn kind(&self) -> EventKind {
        EventKind::TcpRecv
    }

    fn field(&self, field: Field) -> Option<u64> {
        match field {
            Field::TcpSrcAddr => Some(u64::from(u32::from(self.src))),
            Field::TcpDstAddr => Some(u64::from(u32::from(self.dst))),
            Field::TcpSrcPort => Some(u64::from(self.segment.src_port)),
            Field::TcpDstPort => Some(u64::from(self.segment.dst_port)),
            Field::TcpFlagSyn => Some(u64::from(self.segment.flags.syn)),
            Field::TcpFlagAck => Some(u64::from(self.segment.flags.ack)),
            Field::TcpPayloadLen => Some(self.segment.payload.len() as u64),
            _ => None,
        }
    }

    fn head(&self) -> &[u8] {
        &self.segment.payload
    }
}

/// How an application wants its handler delivered (§3.3).
///
/// Protocol managers *verify* ephemerality before installing at interrupt
/// level: only a certified [`Ephemeral`] handler can ask for
/// interrupt-level delivery, so the type system plays the role of the
/// Modula-3 compiler's `EPHEMERAL` check.
pub enum AppHandler<T> {
    /// Run directly in the network interrupt; must be certified ephemeral.
    Interrupt(Ephemeral<BoxedHandler<T>>),
    /// Run in a freshly spawned kernel thread per event.
    Thread(BoxedHandler<T>),
}

/// A boxed application event handler.
pub type BoxedHandler<T> = Box<dyn Fn(&mut RaiseCtx<'_>, &T)>;

impl<T> AppHandler<T> {
    /// Convenience: certify `f` and request interrupt-level delivery.
    pub fn interrupt<F>(f: F) -> AppHandler<T>
    where
        F: Fn(&mut RaiseCtx<'_>, &T) + 'static,
    {
        AppHandler::Interrupt(Ephemeral::certify(Box::new(f)))
    }

    /// Convenience: request thread delivery for `f`.
    pub fn thread<F>(f: F) -> AppHandler<T>
    where
        F: Fn(&mut RaiseCtx<'_>, &T) + 'static,
    {
        AppHandler::Thread(Box::new(f))
    }

    /// True for interrupt-level (certified ephemeral) handlers.
    pub fn is_ephemeral(&self) -> bool {
        matches!(self, AppHandler::Interrupt(_))
    }
}

/// How the stack's *protocol-layer* handlers are delivered — Figure 5's
/// two Plexus configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// Protocol handlers run at interrupt level as ephemeral procedures.
    Interrupt,
    /// Each event raise spawns a kernel thread (paper: "each event raise
    /// creating a new thread").
    Thread,
}

/// Errors surfaced by the Plexus managers.
#[derive(Debug, PartialEq, Eq)]
pub enum PlexusError {
    /// Dynamic linking failed; the extension was rejected (§2).
    Link(LinkError),
    /// The requested port already has an implementation bound.
    PortInUse(u16),
    /// The requested binding would let the extension receive traffic that
    /// is not legitimately its own (§3.1's anti-snooping policy).
    SnoopDenied(&'static str),
    /// An outgoing packet's source field did not match the sending
    /// endpoint (§3.1; only possible with [`SourcePolicy::Verify`]).
    SpoofDetected,
    /// A capability used after revocation (the owning extension unloaded).
    Revoked,
    /// Interrupt-level delivery requested for a handler the manager could
    /// not verify as ephemeral.
    NotEphemeral,
}

impl fmt::Display for PlexusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlexusError::Link(e) => write!(f, "extension rejected by linker: {e}"),
            PlexusError::PortInUse(p) => write!(f, "port {p} already bound"),
            PlexusError::SnoopDenied(why) => write!(f, "binding denied (would snoop): {why}"),
            PlexusError::SpoofDetected => write!(f, "outgoing source field is not the endpoint's"),
            PlexusError::Revoked => write!(f, "capability revoked"),
            PlexusError::NotEphemeral => {
                write!(f, "interrupt-level delivery requires an ephemeral handler")
            }
        }
    }
}

impl std::error::Error for PlexusError {}

impl From<LinkError> for PlexusError {
    fn from(e: LinkError) -> Self {
        PlexusError::Link(e)
    }
}

/// What a send-side protocol manager does about the packet's source field
/// (§3.1): overwriting "provides the best performance", verifying "is
/// useful for debugging protocols".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SourcePolicy {
    /// Overwrite the source field with the endpoint's legitimate address.
    #[default]
    Overwrite,
    /// Check the source field; reject the packet if it does not match.
    Verify,
}
