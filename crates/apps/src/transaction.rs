//! "TCP-special": an application-specific transaction transport (§1.1,
//! §3.1).
//!
//! §1.1: "a connection-oriented protocol that is used for many small
//! transactions is best served by an implementation that minimizes
//! connection lifetime." §3.1 describes the mechanism: a second TCP
//! implementation that claims particular ports, its guard carving those
//! ports out of TCP-standard's.
//!
//! This module is that second implementation. It speaks *TCP segment
//! format on the wire* (so the standard node's checksum rules hold and the
//! port space is shared), but with transaction semantics in the spirit of
//! T/TCP: a request rides in a single SYN-flagged segment, the response
//! rides in the SYN+ACK-flagged reply, and there is no connection state to
//! establish or tear down — one round trip replaces TCP-standard's
//! three-way handshake + transfer + four-segment close. Both endpoints
//! must install the extension (an "agreed upon by the communicating
//! applications" protocol change, exactly as §1.1 prescribes), while
//! TCP-standard keeps serving every other port on the same machines.
//!
//! Retransmission: the client retries an unanswered request with its
//! sequence number; servers answer idempotently (the handler is re-run, so
//! handlers should be idempotent — the application knows whether that is
//! acceptable, which is the whole point of application-specific protocols).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_core::{IpRecv, PlexusError, PlexusStack};
use plexus_kernel::domain::{ExtensionSpec, LinkedExtension};
use plexus_kernel::RaiseCtx;
use plexus_net::ip::proto;
use plexus_net::mbuf::Mbuf;
use plexus_net::tcp::{TcpFlags, TcpSegment};
use plexus_sim::engine::TimerHandle;
use plexus_sim::time::SimDuration;
use plexus_sim::Engine;

/// Extension spec for transaction endpoints.
pub fn transaction_extension_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["TCP.Redirect", "Mbuf.Alloc"]).with_exports(&[])
}

/// A request handler: maps the request bytes to the response bytes. Runs
/// at interrupt level; must be quick, non-blocking, and idempotent.
pub type TransactionHandler = Rc<dyn Fn(&[u8]) -> Vec<u8>>;

/// The server side: one handler per claimed port.
pub struct TransactionServer {
    served: Rc<Cell<u64>>,
}

impl TransactionServer {
    /// Claims `port` as a special TCP implementation and serves
    /// transactions with `handler`.
    pub fn install<F>(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        port: u16,
        handler: F,
    ) -> Result<TransactionServer, PlexusError>
    where
        F: Fn(&[u8]) -> Vec<u8> + 'static,
    {
        let served = Rc::new(Cell::new(0u64));
        let s = stack.clone();
        let served2 = served.clone();
        let handler: TransactionHandler = Rc::new(handler);
        // Parse scratch reused across segments: single-segment chains (the
        // common case) are peeked in place; only spilled chains copy, and
        // into this one retained buffer rather than a fresh Vec per packet.
        let scratch = RefCell::new(Vec::new());
        stack
            .tcp()
            .claim_special(ext, &[port], move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                // One segment in, one out: half of tcp_proc captures the
                // slimmer per-packet work of the transaction discipline.
                ctx.lease.charge(model.tcp_proc / 2);
                ctx.lease.charge(model.checksum(ev.payload.total_len()));
                let total = ev.payload.total_len();
                let mut scratch = scratch.borrow_mut();
                let bytes: &[u8] = if ev.payload.head().len() == total {
                    ev.payload.head()
                } else {
                    scratch.clear();
                    ev.payload.copy_into(0, total, &mut scratch);
                    &scratch
                };
                let Some(seg) = TcpSegment::parse(ev.src, ev.dst, bytes) else {
                    return;
                };
                // Requests are SYN-without-ACK segments carrying data.
                if !seg.flags.syn || seg.flags.ack {
                    return;
                }
                served2.set(served2.get() + 1);
                let response = handler(&seg.payload);
                let reply = TcpSegment {
                    src_port: seg.dst_port,
                    dst_port: seg.src_port,
                    seq: 0,
                    ack: seg.seq, // Echoed transaction id.
                    flags: TcpFlags::SYN_ACK,
                    window: 0,
                    mss: None,
                    payload: response,
                };
                ctx.lease.charge(model.tcp_proc / 2);
                ctx.lease
                    .charge(model.checksum(reply.payload.len() + plexus_net::tcp::TCP_HDR_LEN));
                let wire = reply.to_bytes(ev.dst, ev.src);
                s.send_raw_ip(ctx, ev.src, proto::TCP, Mbuf::from_payload(64, &wire));
            })?;
        Ok(TransactionServer { served })
    }

    /// Transactions answered.
    pub fn served(&self) -> u64 {
        self.served.get()
    }
}

struct Pending {
    request: Vec<u8>,
    timer: Option<TimerHandle>,
    tries: u32,
    completed: Rc<RefCell<Option<Vec<u8>>>>,
    completed_at: Rc<Cell<Option<u64>>>,
}

struct ClientInner {
    stack: Rc<PlexusStack>,
    local_port: u16,
    server: (Ipv4Addr, u16),
    next_id: Cell<u32>,
    pending: RefCell<HashMap<u32, Pending>>,
    retry_timeout: SimDuration,
    max_tries: u32,
    retries: Cell<u64>,
}

/// The client side: issues single-round-trip transactions.
pub struct TransactionClient {
    inner: Rc<ClientInner>,
}

/// A transaction in flight; poll [`TransactionCall::response`] after
/// running the engine.
pub struct TransactionCall {
    completed: Rc<RefCell<Option<Vec<u8>>>>,
    completed_at: Rc<Cell<Option<u64>>>,
}

impl TransactionCall {
    /// The response, once it has arrived.
    pub fn response(&self) -> Option<Vec<u8>> {
        self.completed.borrow().clone()
    }

    /// Simulated instant (ns) the response arrived.
    pub fn completed_at_ns(&self) -> Option<u64> {
        self.completed_at.get()
    }
}

impl TransactionClient {
    /// Claims `local_port` for the client side of the protocol, talking to
    /// `server`.
    pub fn install(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        local_port: u16,
        server: (Ipv4Addr, u16),
    ) -> Result<TransactionClient, PlexusError> {
        let inner = Rc::new(ClientInner {
            stack: stack.clone(),
            local_port,
            server,
            next_id: Cell::new(1),
            pending: RefCell::new(HashMap::new()),
            retry_timeout: SimDuration::from_millis(3),
            max_tries: 8,
            retries: Cell::new(0),
        });
        let me = inner.clone();
        let scratch = RefCell::new(Vec::new());
        stack
            .tcp()
            .claim_special(ext, &[local_port], move |ctx, ev: &IpRecv| {
                let model = ctx.lease.model().clone();
                ctx.lease.charge(model.tcp_proc / 2);
                ctx.lease.charge(model.checksum(ev.payload.total_len()));
                let total = ev.payload.total_len();
                let mut scratch = scratch.borrow_mut();
                let bytes: &[u8] = if ev.payload.head().len() == total {
                    ev.payload.head()
                } else {
                    scratch.clear();
                    ev.payload.copy_into(0, total, &mut scratch);
                    &scratch
                };
                let Some(seg) = TcpSegment::parse(ev.src, ev.dst, bytes) else {
                    return;
                };
                // Responses are SYN+ACK segments echoing the id in `ack`.
                if !(seg.flags.syn && seg.flags.ack) {
                    return;
                }
                let id = seg.ack;
                if let Some(p) = me.pending.borrow_mut().remove(&id) {
                    if let Some(t) = p.timer {
                        t.cancel();
                    }
                    *p.completed.borrow_mut() = Some(seg.payload.clone());
                    p.completed_at.set(Some(ctx.lease.now().as_nanos()));
                }
            })?;
        Ok(TransactionClient { inner })
    }

    /// Issues a transaction: one segment out, one back.
    pub fn call(&self, engine: &mut Engine, request: &[u8]) -> TransactionCall {
        let id = self.inner.next_id.get();
        self.inner.next_id.set(id.wrapping_add(1));
        let completed: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
        let completed_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        self.inner.pending.borrow_mut().insert(
            id,
            Pending {
                request: request.to_vec(),
                timer: None,
                tries: 0,
                completed: completed.clone(),
                completed_at: completed_at.clone(),
            },
        );
        ClientInner::transmit(&self.inner, engine, id);
        TransactionCall {
            completed,
            completed_at,
        }
    }

    /// Requests retransmitted after a timeout.
    pub fn retries(&self) -> u64 {
        self.inner.retries.get()
    }
}

impl ClientInner {
    fn transmit(me: &Rc<ClientInner>, engine: &mut Engine, id: u32) {
        let (give_up, request) = {
            let mut pending = me.pending.borrow_mut();
            let Some(p) = pending.get_mut(&id) else {
                return; // Answered already.
            };
            p.tries += 1;
            if p.tries > me.max_tries {
                pending.remove(&id);
                (true, Vec::new())
            } else {
                if p.tries > 1 {
                    me.retries.set(me.retries.get() + 1);
                }
                (false, p.request.clone())
            }
        };
        if give_up {
            return;
        }
        let seg = TcpSegment {
            src_port: me.local_port,
            dst_port: me.server.1,
            seq: id, // The transaction id rides in `seq`.
            ack: 0,
            flags: TcpFlags::SYN,
            window: 0,
            mss: None,
            payload: request,
        };
        let cpu = me.stack.machine().cpu().clone();
        let mut lease = cpu.begin(engine.now());
        let model = lease.model().clone();
        lease.charge(model.tcp_proc / 2);
        lease.charge(model.checksum(seg.payload.len() + plexus_net::tcp::TCP_HDR_LEN));
        let wire = seg.to_bytes(me.stack.ip(), me.server.0);
        {
            let mut ctx = RaiseCtx {
                engine,
                lease: &mut lease,
            };
            let stack = me.stack.clone();
            stack.send_raw_ip(
                &mut ctx,
                me.server.0,
                proto::TCP,
                Mbuf::from_payload(64, &wire),
            );
        }
        // Arm the retry timer.
        let me2 = me.clone();
        let handle = engine.schedule_cancelable(me.retry_timeout, move |eng| {
            ClientInner::transmit(&me2, eng, id);
        });
        if let Some(p) = me.pending.borrow_mut().get_mut(&id) {
            p.timer = Some(handle);
        }
    }
}
