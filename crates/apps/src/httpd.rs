//! An HTTP server as a Plexus extension (§7's demonstration: "the protocol
//! stack as it services HTTP requests").
//!
//! The server is an in-kernel TCP extension: requests are parsed as bytes
//! arrive (no user/kernel crossing), responses are served from an
//! in-memory document store, and each HTTP/1.0 connection closes after its
//! response — driving the full TCP teardown path.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_core::{PlexusError, PlexusStack, TcpCallbacks};
use plexus_kernel::domain::{ExtensionSpec, LinkedExtension};
use plexus_net::http::{self, ParseOutcome};
use plexus_sim::Engine;

/// The linker spec an HTTP server extension uses.
pub fn httpd_extension_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["TCP.Listen", "TCP.Send", "TCP.Close", "Mbuf.Alloc"])
}

/// Server statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HttpdStats {
    /// Requests served with 200.
    pub ok: u64,
    /// Requests answered 404.
    pub not_found: u64,
    /// Malformed requests answered 400.
    pub bad_request: u64,
}

/// An in-kernel HTTP/1.0 server extension.
pub struct Httpd {
    stats: Rc<Cell<HttpdStats>>,
}

impl Httpd {
    /// Serves `documents` (path → body) on `port`.
    pub fn serve(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        port: u16,
        documents: HashMap<String, Vec<u8>>,
    ) -> Result<Httpd, PlexusError> {
        let stats = Rc::new(Cell::new(HttpdStats::default()));
        let docs = Rc::new(documents);
        let st = stats.clone();
        stack.tcp().listen(ext, port, move |_, conn| {
            let buffer: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
            let docs = docs.clone();
            let st = st.clone();
            conn.set_callbacks(TcpCallbacks {
                on_data: Some(Rc::new(move |ctx, conn, data| {
                    buffer.borrow_mut().extend_from_slice(data);
                    let outcome = http::parse_request(&buffer.borrow());
                    match outcome {
                        ParseOutcome::Incomplete => {}
                        ParseOutcome::Malformed => {
                            let mut s = st.get();
                            s.bad_request += 1;
                            st.set(s);
                            let resp =
                                http::build_response(400, "Bad Request", "text/plain", b"bad");
                            conn.send_in(ctx, &resp);
                            conn.close_in(ctx);
                        }
                        ParseOutcome::Complete { request, .. } => {
                            let mut s = st.get();
                            let resp = match docs.get(&request.path) {
                                Some(body) => {
                                    s.ok += 1;
                                    http::build_response(200, "OK", "text/html", body)
                                }
                                None => {
                                    s.not_found += 1;
                                    http::build_response(
                                        404,
                                        "Not Found",
                                        "text/plain",
                                        b"no such document",
                                    )
                                }
                            };
                            st.set(s);
                            if let Some(rec) = ctx.lease.recorder() {
                                let lbl = rec.intern("httpd");
                                rec.count(plexus_trace::Scope::App, lbl, "requests", 1);
                            }
                            conn.send_in(ctx, &resp);
                            // HTTP/1.0: close after the response.
                            conn.close_in(ctx);
                        }
                    }
                })),
                on_peer_close: Some(Rc::new(|ctx, conn| conn.close_in(ctx))),
                ..Default::default()
            });
        })?;
        Ok(Httpd { stats })
    }

    /// Server statistics.
    pub fn stats(&self) -> HttpdStats {
        self.stats.get()
    }
}

/// A simple HTTP client over a Plexus TCP connection (for examples/tests):
/// issues one GET and resolves with `(status, body)`.
/// Shared slot the response lands in.
type ResponseSlot = Rc<RefCell<Option<(u16, Vec<u8>)>>>;

/// A simple HTTP client over a Plexus TCP connection (for examples and
/// tests): issues one GET and resolves with `(status, body)`.
pub struct HttpGet {
    result: ResponseSlot,
    completed_at: Rc<Cell<Option<u64>>>,
}

impl HttpGet {
    /// Starts the request; inspect [`HttpGet::result`] after running the
    /// engine.
    pub fn start(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        engine: &mut Engine,
        server: (Ipv4Addr, u16),
        path: &str,
    ) -> Result<HttpGet, PlexusError> {
        let conn = stack.tcp().connect(ext, engine, server)?;
        let result: ResponseSlot = Rc::new(RefCell::new(None));
        let completed_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        let buffer: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let request = format!("GET {path} HTTP/1.0\r\nHost: plexus\r\n\r\n").into_bytes();
        let res = result.clone();
        let done_at = completed_at.clone();
        conn.set_callbacks(TcpCallbacks {
            on_connected: Some(Rc::new(move |ctx, conn| {
                conn.send_in(ctx, &request);
            })),
            on_data: Some(Rc::new({
                let buffer = buffer.clone();
                move |_, _, data| {
                    buffer.borrow_mut().extend_from_slice(data);
                }
            })),
            on_peer_close: Some(Rc::new(move |ctx, conn| {
                // Response complete (HTTP/1.0 framing by close).
                *res.borrow_mut() = http::parse_response(&buffer.borrow());
                done_at.set(Some(ctx.lease.now().as_nanos()));
                conn.close_in(ctx);
            })),
            ..Default::default()
        });
        Ok(HttpGet {
            result,
            completed_at,
        })
    }

    /// Simulated instant (ns) the full response was in hand, for latency
    /// measurements.
    pub fn completed_at_ns(&self) -> Option<u64> {
        self.completed_at.get()
    }

    /// The `(status, body)` once the response has arrived.
    pub fn result(&self) -> Option<(u16, Vec<u8>)> {
        self.result.borrow().clone()
    }
}

/// The same HTTP service as a DIGITAL UNIX user process (for the §7
/// comparison): every request crosses the user/kernel boundary at least
/// four times (accept wakeup, read copyout, write copyin, close).
pub struct DunixHttpd {
    stats: Rc<Cell<HttpdStats>>,
}

impl DunixHttpd {
    /// Serves `documents` on `stack`:`port` from a user process.
    pub fn serve(
        stack: &Rc<plexus_baseline::MonolithicStack>,
        port: u16,
        documents: HashMap<String, Vec<u8>>,
    ) -> DunixHttpd {
        use plexus_baseline::SocketCallbacks;
        let process = plexus_kernel::vm::AddressSpace::new("httpd");
        let stats = Rc::new(Cell::new(HttpdStats::default()));
        let docs = Rc::new(documents);
        let st = stats.clone();
        stack
            .tcp()
            .listen(&process, port, move |_eng, _user, sock| {
                let buffer: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
                let docs = docs.clone();
                let st = st.clone();
                sock.set_callbacks(SocketCallbacks {
                    on_data: Some(Rc::new(move |eng, user, sock, data| {
                        buffer.borrow_mut().extend_from_slice(data);
                        match http::parse_request(&buffer.borrow()) {
                            ParseOutcome::Incomplete => {}
                            ParseOutcome::Malformed => {
                                let mut s = st.get();
                                s.bad_request += 1;
                                st.set(s);
                                let resp =
                                    http::build_response(400, "Bad Request", "text/plain", b"bad");
                                sock.send_in(eng, user, &resp);
                                sock.close_in(eng, user);
                            }
                            ParseOutcome::Complete { request, .. } => {
                                let mut s = st.get();
                                let resp = match docs.get(&request.path) {
                                    Some(body) => {
                                        s.ok += 1;
                                        http::build_response(200, "OK", "text/html", body)
                                    }
                                    None => {
                                        s.not_found += 1;
                                        http::build_response(
                                            404,
                                            "Not Found",
                                            "text/plain",
                                            b"no such document",
                                        )
                                    }
                                };
                                st.set(s);
                                sock.send_in(eng, user, &resp);
                                sock.close_in(eng, user);
                            }
                        }
                    })),
                    on_peer_close: Some(Rc::new(|eng, user, sock| sock.close_in(eng, user))),
                    ..Default::default()
                });
            });
        DunixHttpd { stats }
    }

    /// Server statistics.
    pub fn stats(&self) -> HttpdStats {
        self.stats.get()
    }
}
