//! The protocol forwarding application (§5.2).
//!
//! Thin convenience wrappers that set up both comparison systems:
//!
//! * [`InKernelForwarder`] — the Plexus extension: TCP and/or UDP
//!   redirection nodes installed in the forwarder's protocol graph, below
//!   the transport layer, preserving end-to-end semantics.
//! * The DIGITAL UNIX side is [`plexus_baseline::UserSplice`], re-exported
//!   here for symmetry.

use std::net::Ipv4Addr;
use std::rc::Rc;

pub use plexus_baseline::UserSplice;
use plexus_core::{PlexusError, PlexusStack};
use plexus_kernel::domain::{ExtensionSpec, LinkedExtension};

/// The linker spec a forwarding extension uses.
pub fn forwarder_extension_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["TCP.Redirect", "UDP.Redirect", "Mbuf.Alloc"])
}

/// An in-kernel port forwarder on a Plexus stack.
pub struct InKernelForwarder;

impl InKernelForwarder {
    /// Redirects TCP `port` on `stack` to `backend`. The backend must call
    /// [`PlexusStack::add_ip_alias`] with the forwarder's address so it
    /// answers clients directly (direct-server-return load balancing).
    pub fn tcp(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        port: u16,
        backend: Ipv4Addr,
    ) -> Result<(), PlexusError> {
        stack.tcp().redirect(ext, port, backend)?;
        Ok(())
    }

    /// Redirects UDP `port` on `stack` to `backend` (destination rewrite
    /// with incremental checksum fix; replies come from the backend's own
    /// address).
    pub fn udp(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        port: u16,
        backend: Ipv4Addr,
    ) -> Result<(), PlexusError> {
        stack.udp().redirect(ext, port, backend)?;
        Ok(())
    }
}
