//! An application-specific reliable datagram protocol (§1.1's thesis,
//! taken one step further).
//!
//! The paper's motivating example disables the UDP checksum for media
//! traffic; this module goes the other way for applications that need
//! *more* than UDP: a stop-and-wait ARQ protocol — sequence numbers,
//! application-level integrity, acknowledgements, retransmission — built
//! entirely as a Plexus extension on top of checksum-free UDP. The
//! transport below stays dumb; the reliability policy lives with the
//! application, tuned to its needs (bounded retries, its own timeout),
//! which is exactly the "application-specific protocols" the architecture
//! exists to enable. Works over lossy links (see the fault-injection
//! tests).
//!
//! Wire format inside the UDP payload:
//!
//! ```text
//! 0      2     3        7          9
//! | magic| kind|  seq    | checksum |  data...
//! ```
//!
//! `kind` is DATA (1) or ACK (2); `checksum` is the Internet checksum of
//! the data (the application's own integrity pass, since UDP's is off).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_core::{AppHandler, PlexusError, PlexusStack, UdpRecv};
use plexus_kernel::domain::{ExtensionSpec, LinkedExtension};
use plexus_kernel::view::{be16, be32, put_be16, put_be32};
use plexus_kernel::RaiseCtx;
use plexus_net::checksum::checksum;
use plexus_net::udp::UdpConfig;
use plexus_sim::engine::TimerHandle;
use plexus_sim::time::SimDuration;
use plexus_sim::Engine;

const MAGIC: u16 = 0x5D47; // "reliable datagram".
const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const HDR: usize = 9;

/// Protocol parameters — the application's own reliability policy.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Retransmission timeout.
    pub retry_timeout: SimDuration,
    /// Attempts per datagram before giving up.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retry_timeout: SimDuration::from_millis(5),
            max_retries: 16,
        }
    }
}

/// Extension spec for the reliable-datagram modules.
pub fn reliable_extension_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["UDP.Bind", "UDP.Send", "Mbuf.Alloc"])
}

fn encode(kind: u8, seq: u32, data: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; HDR + data.len()];
    put_be16(&mut out, 0, MAGIC);
    out[2] = kind;
    put_be32(&mut out, 3, seq);
    put_be16(&mut out, 7, checksum(data));
    out[HDR..].copy_from_slice(data);
    out
}

struct Decoded<'a> {
    kind: u8,
    seq: u32,
    data: &'a [u8],
}

fn decode(bytes: &[u8]) -> Option<Decoded<'_>> {
    if bytes.len() < HDR || be16(bytes, 0) != MAGIC {
        return None;
    }
    let data = &bytes[HDR..];
    if checksum(data) != be16(bytes, 7) {
        return None; // Application-level integrity failed.
    }
    Some(Decoded {
        kind: bytes[2],
        seq: be32(bytes, 3),
        data,
    })
}

struct SenderInner {
    stack: Rc<PlexusStack>,
    ep: Rc<plexus_core::UdpEndpoint>,
    peer: (Ipv4Addr, u16),
    config: ReliableConfig,
    next_seq: Cell<u32>,
    inflight: RefCell<Option<(u32, Vec<u8>, u32)>>, // (seq, frame, tries)
    queue: RefCell<VecDeque<Vec<u8>>>,
    timer: RefCell<Option<TimerHandle>>,
    delivered: Cell<u64>,
    retransmits: Cell<u64>,
    failed: Cell<u64>,
}

/// The sending side of the reliable protocol.
pub struct ReliableSender {
    inner: Rc<SenderInner>,
}

impl ReliableSender {
    /// Creates a sender on `stack` targeting `peer`, bound to `local_port`
    /// (where the ACKs come back).
    pub fn new(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        local_port: u16,
        peer: (Ipv4Addr, u16),
        config: ReliableConfig,
    ) -> Result<ReliableSender, PlexusError> {
        let inner_slot: Rc<RefCell<Option<Rc<SenderInner>>>> = Rc::new(RefCell::new(None));
        let slot = inner_slot.clone();
        // The ACK handler runs at interrupt level: it only pops state and
        // fires the next frame — EPHEMERAL by design.
        let ep = stack.udp().bind(
            ext,
            local_port,
            UdpConfig { checksum: false },
            AppHandler::interrupt(move |ctx, ev: &UdpRecv| {
                let Some(inner) = slot.borrow().clone() else {
                    return;
                };
                let bytes = ev.payload.to_vec();
                let Some(d) = decode(&bytes) else {
                    return;
                };
                if d.kind == KIND_ACK {
                    inner.on_ack(ctx, d.seq);
                }
            }),
        )?;
        let inner = Rc::new(SenderInner {
            stack: stack.clone(),
            ep,
            peer,
            config,
            next_seq: Cell::new(0),
            inflight: RefCell::new(None),
            queue: RefCell::new(VecDeque::new()),
            timer: RefCell::new(None),
            delivered: Cell::new(0),
            retransmits: Cell::new(0),
            failed: Cell::new(0),
        });
        *inner_slot.borrow_mut() = Some(inner.clone());
        Ok(ReliableSender { inner })
    }

    /// Queues `data` for reliable delivery.
    pub fn send(&self, engine: &mut Engine, data: &[u8]) {
        self.inner.queue.borrow_mut().push_back(data.to_vec());
        let cpu = self.inner.stack.machine().cpu().clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        self.inner.pump(&mut ctx);
    }

    /// Datagrams acknowledged by the peer.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.get()
    }

    /// Retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.inner.retransmits.get()
    }

    /// Datagrams abandoned after `max_retries`.
    pub fn failed(&self) -> u64 {
        self.inner.failed.get()
    }

    /// True if everything queued has been acknowledged.
    pub fn idle(&self) -> bool {
        self.inner.inflight.borrow().is_none() && self.inner.queue.borrow().is_empty()
    }
}

impl SenderInner {
    /// Starts the next transfer if the channel is idle.
    fn pump(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>) {
        if self.inflight.borrow().is_some() {
            return;
        }
        let Some(data) = self.queue.borrow_mut().pop_front() else {
            return;
        };
        let seq = self.next_seq.get();
        self.next_seq.set(seq.wrapping_add(1));
        let frame = encode(KIND_DATA, seq, &data);
        *self.inflight.borrow_mut() = Some((seq, frame.clone(), 1));
        let _ = self.ep.send_in(ctx, self.peer.0, self.peer.1, &frame);
        self.arm_timer(ctx.engine);
    }

    fn arm_timer(self: &Rc<Self>, engine: &mut Engine) {
        if let Some(t) = self.timer.borrow_mut().take() {
            t.cancel();
        }
        let me = self.clone();
        let handle = engine.schedule_cancelable(self.config.retry_timeout, move |eng| {
            me.on_timeout(eng);
        });
        *self.timer.borrow_mut() = Some(handle);
    }

    fn on_timeout(self: &Rc<Self>, engine: &mut Engine) {
        let retransmit = {
            let mut inflight = self.inflight.borrow_mut();
            match inflight.as_mut() {
                None => return,
                Some((_, _, tries)) if *tries >= self.config.max_retries => {
                    // Give up on this datagram; the application's policy
                    // says bounded effort.
                    *inflight = None;
                    self.failed.set(self.failed.get() + 1);
                    None
                }
                Some((_, frame, tries)) => {
                    *tries += 1;
                    Some(frame.clone())
                }
            }
        };
        let cpu = self.stack.machine().cpu().clone();
        let mut lease = cpu.begin(engine.now());
        let mut ctx = RaiseCtx {
            engine,
            lease: &mut lease,
        };
        match retransmit {
            Some(frame) => {
                self.retransmits.set(self.retransmits.get() + 1);
                let _ = self.ep.send_in(&mut ctx, self.peer.0, self.peer.1, &frame);
                self.arm_timer(ctx.engine);
            }
            None => self.pump(&mut ctx), // Move on to the next datagram.
        }
    }

    fn on_ack(self: &Rc<Self>, ctx: &mut RaiseCtx<'_>, seq: u32) {
        let matched = {
            let mut inflight = self.inflight.borrow_mut();
            match inflight.as_ref() {
                Some((s, _, _)) if *s == seq => {
                    *inflight = None;
                    true
                }
                _ => false,
            }
        };
        if matched {
            self.delivered.set(self.delivered.get() + 1);
            if let Some(t) = self.timer.borrow_mut().take() {
                t.cancel();
            }
            self.pump(ctx);
        }
    }
}

/// The receiving side: delivers each datagram exactly once, in order, and
/// acknowledges everything (including retransmitted duplicates).
pub struct ReliableReceiver {
    received: Rc<RefCell<Vec<Vec<u8>>>>,
    duplicates: Rc<Cell<u64>>,
}

impl ReliableReceiver {
    /// Binds the receiver on `port`.
    pub fn new(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        port: u16,
    ) -> Result<ReliableReceiver, PlexusError> {
        let received: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
        let duplicates = Rc::new(Cell::new(0u64));
        let expected = Rc::new(Cell::new(0u32));
        let (r, dup, exp) = (received.clone(), duplicates.clone(), expected.clone());
        let ep_slot: Rc<RefCell<Option<Rc<plexus_core::UdpEndpoint>>>> =
            Rc::new(RefCell::new(None));
        let es = ep_slot.clone();
        let ep = stack.udp().bind(
            ext,
            port,
            UdpConfig { checksum: false },
            AppHandler::interrupt(move |ctx, ev: &UdpRecv| {
                let bytes = ev.payload.to_vec();
                let Some(d) = decode(&bytes) else {
                    return; // Corrupt or foreign: drop silently (no ACK).
                };
                if d.kind != KIND_DATA {
                    return;
                }
                if d.seq == exp.get() {
                    exp.set(exp.get().wrapping_add(1));
                    r.borrow_mut().push(d.data.to_vec());
                } else {
                    dup.set(dup.get() + 1);
                }
                // ACK whatever arrived so the sender makes progress.
                let ack = encode(KIND_ACK, d.seq, &[]);
                let ep = es.borrow().clone().expect("endpoint installed");
                let _ = ep.send_in(ctx, ev.src, ev.src_port, &ack);
            }),
        )?;
        *ep_slot.borrow_mut() = Some(ep);
        Ok(ReliableReceiver {
            received,
            duplicates,
        })
    }

    /// Datagrams delivered, in order.
    pub fn received(&self) -> Vec<Vec<u8>> {
        self.received.borrow().clone()
    }

    /// Retransmitted duplicates that were re-acknowledged but not
    /// re-delivered.
    pub fn duplicates(&self) -> u64 {
        self.duplicates.get()
    }
}
