//! # plexus-apps — the paper's application-specific protocols
//!
//! The applications of §5 and §3.3, each built twice where the paper
//! compares systems:
//!
//! * [`video`] — the network video system (§5.1): in-kernel multicast UDP
//!   server vs. user-level socket server; display-bound clients.
//! * [`forward`] — protocol forwarding (§5.2): in-kernel redirection vs.
//!   the user-level socket splice.
//! * [`active_messages`] — active messages over Ethernet at interrupt
//!   level (§3.3, Figure 2).
//! * [`httpd`] — HTTP service as a Plexus TCP extension (§7).
//! * [`reliable`] — a stop-and-wait reliable datagram protocol as an
//!   application extension over checksum-free UDP (§1.1 taken further).
//! * [`transaction`] — "TCP-special" (§3.1): a transaction transport that
//!   minimizes connection lifetime (§1.1), claiming ports away from
//!   TCP-standard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active_messages;
pub mod forward;
pub mod httpd;
pub mod reliable;
pub mod transaction;
pub mod video;

pub use active_messages::{ActiveMessage, ActiveMessages};
pub use forward::InKernelForwarder;
pub use httpd::{DunixHttpd, HttpGet, Httpd};
pub use reliable::{ReliableConfig, ReliableReceiver, ReliableSender};
pub use transaction::{TransactionCall, TransactionClient, TransactionServer};
pub use video::{
    DunixVideoClient, DunixVideoServer, PlexusVideoClient, PlexusVideoServer, VideoConfig,
};
