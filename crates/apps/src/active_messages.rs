//! Active messages over Ethernet (§3.3, Figure 2).
//!
//! An active message carries the index of a handler to run on arrival plus
//! a small payload; the protocol "does little more than reference memory
//! and reply with an acknowledgement", so it exhibits the best performance
//! running at interrupt level as an `EPHEMERAL` procedure. This module is
//! the paper's example extension: a guard that discriminates on the
//! Ethernet type field (via `VIEW`) and an ephemeral handler dispatching
//! into a user-registered handler table.
//!
//! Wire format after the Ethernet header:
//!
//! ```text
//! 0       2              10
//! | index |   argument   |  payload...
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use plexus_core::{AppHandler, EthRecv, PlexusError, PlexusStack};
use plexus_kernel::domain::{ExtensionSpec, LinkedExtension};
use plexus_kernel::view::{be16, put_be16, view_at, WireView};
use plexus_kernel::RaiseCtx;
use plexus_net::ether::{EtherType, EtherView, MacAddr, ETHER_HDR_LEN};
use plexus_sim::Engine;

/// Active-message header length (after the Ethernet header).
pub const AM_HDR_LEN: usize = 10;

/// Zero-copy view of an active-message header.
pub struct AmView<'a>(&'a [u8]);

impl<'a> WireView<'a> for AmView<'a> {
    const WIRE_SIZE: usize = AM_HDR_LEN;
    fn from_prefix(bytes: &'a [u8]) -> Self {
        AmView(bytes)
    }
}

impl AmView<'_> {
    /// Handler-table index.
    pub fn index(&self) -> u16 {
        be16(self.0, 0)
    }

    /// The 64-bit argument word.
    pub fn argument(&self) -> u64 {
        u64::from_be_bytes(self.0[2..10].try_into().expect("length checked"))
    }
}

/// A received active message, as passed to registered handlers.
#[derive(Debug)]
pub struct ActiveMessage {
    /// Sender MAC.
    pub src: MacAddr,
    /// Handler index it was dispatched on.
    pub index: u16,
    /// The argument word.
    pub argument: u64,
    /// Trailing payload bytes.
    pub payload: Vec<u8>,
}

/// An active-message handler: must be quick and non-blocking; it runs at
/// interrupt level.
pub type AmHandler = Rc<dyn Fn(&mut RaiseCtx<'_>, &ActiveMessage)>;

/// The extension spec an active-message module links with.
pub fn am_extension_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["Ethernet.Attach", "Ethernet.Send", "Mbuf.Alloc"])
}

/// An active-message endpoint on one machine.
pub struct ActiveMessages {
    stack: Rc<PlexusStack>,
    handlers: Rc<RefCell<HashMap<u16, AmHandler>>>,
    received: Rc<Cell<u64>>,
}

impl ActiveMessages {
    /// Installs the guard/handler pair of Figure 2 on
    /// `Ethernet.PacketRecv`, at interrupt level.
    pub fn install(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
    ) -> Result<ActiveMessages, PlexusError> {
        let handlers: Rc<RefCell<HashMap<u16, AmHandler>>> = Rc::new(RefCell::new(HashMap::new()));
        let received = Rc::new(Cell::new(0u64));
        let (h, r) = (handlers.clone(), received.clone());
        stack.attach_ether(
            ext,
            EtherType::ACTIVE_MESSAGE,
            AppHandler::interrupt(move |ctx, ev: &EthRecv| {
                // VIEW the Ethernet header, then the AM header behind it —
                // the Figure 2 pattern.
                let head = ev.mbuf.head();
                let Some(eth) = plexus_kernel::view::view::<EtherView>(head) else {
                    return;
                };
                let Some(am) = view_at::<AmView>(head, ETHER_HDR_LEN) else {
                    return;
                };
                // Peek the headers in place, then gather the payload from
                // wherever the chain put it — the head slice only covers
                // the first cluster, so slicing it would truncate frames
                // whose payload spills into a continuation segment.
                let hdr = ETHER_HDR_LEN + AM_HDR_LEN;
                let mut payload = Vec::new();
                ev.mbuf
                    .copy_into(hdr, ev.mbuf.total_len() - hdr, &mut payload);
                let msg = ActiveMessage {
                    src: eth.src(),
                    index: am.index(),
                    argument: am.argument(),
                    payload,
                };
                let handler = h.borrow().get(&msg.index).cloned();
                if let Some(handler) = handler {
                    r.set(r.get() + 1);
                    if let Some(rec) = ctx.lease.recorder() {
                        let lbl = rec.intern("active_messages");
                        rec.count(plexus_trace::Scope::App, lbl, "dispatched", 1);
                    }
                    handler(ctx, &msg);
                }
            }),
        )?;
        Ok(ActiveMessages {
            stack: stack.clone(),
            handlers,
            received,
        })
    }

    /// Registers `handler` at `index`, replacing any previous registration.
    pub fn register<F>(&self, index: u16, handler: F)
    where
        F: Fn(&mut RaiseCtx<'_>, &ActiveMessage) + 'static,
    {
        self.handlers.borrow_mut().insert(index, Rc::new(handler));
    }

    /// Messages dispatched to registered handlers so far.
    pub fn received(&self) -> u64 {
        self.received.get()
    }

    /// Sends an active message (top-level entry).
    pub fn send(
        &self,
        engine: &mut Engine,
        dst: MacAddr,
        index: u16,
        argument: u64,
        payload: &[u8],
    ) -> Result<(), PlexusError> {
        let frame = encode(index, argument, payload);
        self.stack
            .send_ether(engine, dst, EtherType::ACTIVE_MESSAGE, &frame)
    }

    /// Sends a reply from inside a handler (e.g. the acknowledgement the
    /// paper's request/response pattern uses).
    pub fn reply_in(
        &self,
        ctx: &mut RaiseCtx<'_>,
        dst: MacAddr,
        index: u16,
        argument: u64,
        payload: &[u8],
    ) {
        let frame = encode(index, argument, payload);
        // Manager-mediated: the EtherType is fixed to the extension's own,
        // so the system stack cannot be spoofed.
        let _ = self
            .stack
            .send_ether_in(ctx, dst, EtherType::ACTIVE_MESSAGE, &frame);
    }
}

/// Serializes an AM header + payload (without the Ethernet header).
pub fn encode(index: u16, argument: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; AM_HDR_LEN + payload.len()];
    put_be16(&mut out, 0, index);
    out[2..10].copy_from_slice(&argument.to_be_bytes());
    out[AM_HDR_LEN..].copy_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_kernel::view::view;

    #[test]
    fn header_round_trips() {
        let bytes = encode(7, 0xDEAD_BEEF_0123_4567, b"pp");
        let v: AmView = view(&bytes).expect("long enough");
        assert_eq!(v.index(), 7);
        assert_eq!(v.argument(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(&bytes[AM_HDR_LEN..], b"pp");
    }

    #[test]
    fn short_messages_not_viewable() {
        assert!(view::<AmView>(&[0u8; AM_HDR_LEN - 1]).is_none());
    }
}
