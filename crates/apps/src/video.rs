//! The network video system (§5.1).
//!
//! A server multicasts video clips to a set of clients at 30 frames/s.
//! Two implementations of the same application:
//!
//! * **Plexus** ([`PlexusVideoServer`]): an in-kernel extension reads each
//!   frame off the (simulated) disk and pushes it to every subscribed
//!   client through the UDP send path — *multicast semantics for UDP*,
//!   with no user/kernel copies, exactly the structure the paper credits
//!   for halving server CPU utilization.
//! * **DIGITAL UNIX** ([`DunixVideoServer`]): a user process `read(2)`s
//!   each frame (copyout) and issues one `sendto(2)` per client (trap +
//!   copyin each), over the same disk/NIC models.
//!
//! The video protocol itself follows §1.1's advice: UDP checksum disabled
//! (the application runs its own integrity pass on the client).
//!
//! Clients ([`PlexusVideoClient`], [`DunixVideoClient`]) do the paper's
//! two passes over each frame — checksum, then decompress — and blit the
//! decompressed image to the framebuffer, whose writes are 10× slower than
//! RAM; the experiment shows the client is display-bound either way.

use std::cell::Cell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_core::{AppHandler, PlexusError, PlexusStack, UdpRecv};
use plexus_kernel::domain::{ExtensionSpec, LinkedExtension};
use plexus_kernel::RaiseCtx;
use plexus_net::mbuf::Mbuf;
use plexus_net::udp::UdpConfig;
use plexus_sim::framebuffer::Framebuffer;
use plexus_sim::time::{SimDuration, SimTime};
use plexus_sim::{Engine, Machine};

use plexus_baseline::{MonolithicStack, UdpSocket};
use plexus_kernel::vm::AddressSpace;

/// Parameters of the video workload.
#[derive(Clone, Copy, Debug)]
pub struct VideoConfig {
    /// Frames per second per stream (the paper: 30).
    pub fps: u32,
    /// Compressed frame size in bytes. 12 500 B at 30 fps is a 3 Mb/s
    /// stream, so 15 streams saturate the 45 Mb/s T3 as in Figure 6.
    pub frame_bytes: usize,
    /// UDP port the clients listen on.
    pub port: u16,
    /// Decompression expansion factor (compressed → displayed bytes).
    pub expansion: usize,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            fps: 30,
            frame_bytes: 12_500,
            port: 6000,
            expansion: 4,
        }
    }
}

impl VideoConfig {
    /// The frame period.
    pub fn period(&self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.fps as u64)
    }

    /// UDP options for the video protocol: checksum disabled (§1.1).
    pub fn udp(&self) -> UdpConfig {
        UdpConfig { checksum: false }
    }
}

/// The linker spec a video extension uses.
pub fn video_extension_spec(name: &str) -> ExtensionSpec {
    ExtensionSpec::typesafe(name, &["UDP.Bind", "UDP.Send", "Mbuf.Alloc"])
}

/// The in-kernel Plexus video server extension.
pub struct PlexusVideoServer {
    frames_sent: Rc<Cell<u64>>,
}

impl PlexusVideoServer {
    /// Starts streaming to `clients` until `until`. The server machine
    /// must have a disk attached.
    pub fn start(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        engine: &mut Engine,
        clients: Vec<Ipv4Addr>,
        config: VideoConfig,
        until: SimTime,
    ) -> Result<PlexusVideoServer, PlexusError> {
        // A server-side endpoint to send from (port `config.port` on the
        // server side as well; it never receives).
        let ep = stack.udp().bind(
            ext,
            config.port,
            config.udp(),
            AppHandler::interrupt(|_, _: &UdpRecv| {}),
        )?;
        let frames_sent = Rc::new(Cell::new(0u64));
        let machine = stack.machine().clone();
        let counter = frames_sent.clone();
        schedule_plexus_frame(engine, machine, ep, clients, config, until, counter);
        Ok(PlexusVideoServer { frames_sent })
    }

    /// Frames pushed to the network (frame × client fan-out counted once
    /// per client).
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.get()
    }
}

fn schedule_plexus_frame(
    engine: &mut Engine,
    machine: Rc<Machine>,
    ep: Rc<plexus_core::UdpEndpoint>,
    clients: Vec<Ipv4Addr>,
    config: VideoConfig,
    until: SimTime,
    counter: Rc<Cell<u64>>,
) {
    if engine.now() >= until {
        return;
    }
    // This frame: read it off the disk (DMA: cheap in CPU, occupies the
    // spindle), then fan it out in-kernel.
    let disk = machine.disk();
    let cpu_cost = disk.cpu_cost;
    let ep2 = ep.clone();
    let clients2 = clients.clone();
    let m2 = machine.clone();
    let counter2 = counter.clone();
    disk.read(engine, engine.now(), config.frame_bytes, move |eng| {
        let mut lease = m2.cpu().begin(eng.now());
        lease.charge(cpu_cost);
        let frame = Mbuf::from_payload(64, &vec![0xA5u8; config.frame_bytes]);
        let mut ctx = RaiseCtx {
            engine: eng,
            lease: &mut lease,
        };
        for c in &clients2 {
            // Zero-copy fan-out: every client's datagram shares the
            // frame's clusters.
            let _ = ep2.send_mbuf_in(&mut ctx, *c, config.port, frame.share());
            counter2.set(counter2.get() + 1);
        }
    });
    // The next frame tick.
    let next = engine.now() + config.period();
    if next < until {
        engine.schedule_at(next, move |eng| {
            schedule_plexus_frame(eng, machine, ep, clients, config, until, counter);
        });
    }
}

/// The DIGITAL UNIX video server: a user process over sockets.
pub struct DunixVideoServer {
    frames_sent: Rc<Cell<u64>>,
}

impl DunixVideoServer {
    /// Starts streaming to `clients` until `until`.
    pub fn start(
        stack: &Rc<MonolithicStack>,
        engine: &mut Engine,
        clients: Vec<Ipv4Addr>,
        config: VideoConfig,
        until: SimTime,
    ) -> Option<DunixVideoServer> {
        let process = AddressSpace::new("video-server");
        let sock = Rc::new(stack.udp_socket(&process, config.port, false)?);
        let frames_sent = Rc::new(Cell::new(0u64));
        let machine = stack.machine().clone();
        schedule_dunix_frame(
            engine,
            machine,
            process,
            sock,
            clients,
            config,
            until,
            frames_sent.clone(),
        );
        Some(DunixVideoServer { frames_sent })
    }

    /// Frames pushed to the network.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.get()
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule_dunix_frame(
    engine: &mut Engine,
    machine: Rc<Machine>,
    process: Rc<AddressSpace>,
    sock: Rc<UdpSocket>,
    clients: Vec<Ipv4Addr>,
    config: VideoConfig,
    until: SimTime,
    counter: Rc<Cell<u64>>,
) {
    if engine.now() >= until {
        return;
    }
    let disk = machine.disk();
    let cpu_cost = disk.cpu_cost;
    let m2 = machine.clone();
    let p2 = process.clone();
    let s2 = sock.clone();
    let clients2 = clients.clone();
    let counter2 = counter.clone();
    disk.read(engine, engine.now(), config.frame_bytes, move |eng| {
        let mut lease = m2.cpu().begin(eng.now());
        lease.charge(cpu_cost);
        // The user process returns from read(2): trap + copyout.
        p2.trap(&mut lease);
        p2.copyout(&mut lease, config.frame_bytes);
        let frame = vec![0xA5u8; config.frame_bytes];
        for c in &clients2 {
            // One sendto(2) per client: trap + copyin each.
            s2.sendto_in(eng, &mut lease, *c, config.port, &frame);
            counter2.set(counter2.get() + 1);
        }
    });
    let next = engine.now() + config.period();
    if next < until {
        engine.schedule_at(next, move |eng| {
            schedule_dunix_frame(eng, machine, process, sock, clients, config, until, counter);
        });
    }
}

/// Per-client receive-side statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Frames received and displayed.
    pub frames: u64,
    /// Bytes received.
    pub bytes: u64,
}

/// The Plexus video client extension: checksum pass + decompress pass +
/// framebuffer blit, all in-kernel.
pub struct PlexusVideoClient {
    stats: Rc<Cell<ClientStats>>,
}

impl PlexusVideoClient {
    /// Subscribes on the client stack. The machine must have a framebuffer.
    pub fn start(
        stack: &Rc<PlexusStack>,
        ext: &LinkedExtension,
        config: VideoConfig,
    ) -> Result<PlexusVideoClient, PlexusError> {
        let stats = Rc::new(Cell::new(ClientStats::default()));
        let st = stats.clone();
        let fb: Rc<Framebuffer> = stack.machine().framebuffer();
        stack.udp().bind(
            ext,
            config.port,
            config.udp(),
            AppHandler::interrupt(move |ctx, ev: &UdpRecv| {
                display_frame(ctx.lease, &fb, ev.payload.total_len(), config.expansion);
                let mut s = st.get();
                s.frames += 1;
                s.bytes += ev.payload.total_len() as u64;
                st.set(s);
            }),
        )?;
        Ok(PlexusVideoClient { stats })
    }

    /// Receive statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats.get()
    }
}

/// The two §5.1 passes plus the blit, charged to the caller's lease.
fn display_frame(lease: &mut plexus_sim::CpuLease, fb: &Framebuffer, len: usize, expansion: usize) {
    let model = lease.model().clone();
    // Pass 1: application-level checksum over the compressed frame.
    lease.charge(model.checksum(len));
    // Pass 2: decompress (reads compressed, writes expanded to RAM).
    lease.charge(model.decompress_per_byte.times(len as u64));
    lease.charge(model.ram_write_per_byte.times((len * expansion) as u64));
    // Blit the decompressed image to the framebuffer.
    fb.blit(lease, len * expansion);
}

/// The DIGITAL UNIX video client: same display code, user-level socket.
pub struct DunixVideoClient {
    stats: Rc<Cell<ClientStats>>,
}

impl DunixVideoClient {
    /// Subscribes on the client stack. The machine must have a framebuffer.
    pub fn start(
        stack: &Rc<MonolithicStack>,
        engine: &mut Engine,
        config: VideoConfig,
    ) -> Option<DunixVideoClient> {
        let process = AddressSpace::new("video-client");
        let sock = stack.udp_socket(&process, config.port, false)?;
        let stats = Rc::new(Cell::new(ClientStats::default()));
        let st = stats.clone();
        let fb: Rc<Framebuffer> = stack.machine().framebuffer();
        sock.recv_loop(engine, move |_eng, user, msg| {
            display_frame(user, &fb, msg.data.len(), config.expansion);
            let mut s = st.get();
            s.frames += 1;
            s.bytes += msg.data.len() as u64;
            st.set(s);
        });
        // The socket registration lives in the stack; dropping the local
        // handle is fine (close() is explicit).
        drop(sock);
        Some(DunixVideoClient { stats })
    }

    /// Receive statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats.get()
    }
}
