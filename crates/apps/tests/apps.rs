//! End-to-end tests of the application-specific protocols.

use std::cell::Cell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use plexus_apps::active_messages::{am_extension_spec, ActiveMessages};
use plexus_apps::httpd::{httpd_extension_spec, HttpGet, Httpd};
use plexus_apps::video::{
    video_extension_spec, DunixVideoServer, PlexusVideoClient, PlexusVideoServer, VideoConfig,
};
use plexus_core::{PlexusStack, StackConfig};
use plexus_net::ether::MacAddr;
use plexus_sim::disk::Disk;
use plexus_sim::framebuffer::Framebuffer;
use plexus_sim::nic::NicProfile;
use plexus_sim::time::{SimDuration, SimTime};
use plexus_sim::World;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

#[test]
fn active_messages_ping_pong_at_interrupt_level() {
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let sa = PlexusStack::attach(
        &a,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );

    let ext_a = sa.link_extension(&am_extension_spec("AM-A")).unwrap();
    let ext_b = sb.link_extension(&am_extension_spec("AM-B")).unwrap();
    let am_a = Rc::new(ActiveMessages::install(&sa, &ext_a).unwrap());
    let am_b = Rc::new(ActiveMessages::install(&sb, &ext_b).unwrap());

    // B's handler 1: increment the argument and ack back on handler 2.
    let am_b2 = am_b.clone();
    am_b.register(1, move |ctx, msg| {
        am_b2.reply_in(ctx, msg.src, 2, msg.argument + 1, b"");
    });
    // A's handler 2: record the acknowledged value and arrival time.
    let acked: Rc<Cell<Option<(u64, u64)>>> = Rc::new(Cell::new(None));
    let ack2 = acked.clone();
    am_a.register(2, move |ctx, msg| {
        ack2.set(Some((msg.argument, ctx.lease.now().as_nanos())));
    });

    let t0 = world.engine().now().as_nanos();
    am_a.send(world.engine_mut(), MacAddr::local(2), 1, 41, b"payload")
        .unwrap();
    world.run();

    let (value, at) = acked.get().expect("acknowledgement returned");
    assert_eq!(value, 42);
    assert_eq!(am_b.received(), 1);
    assert_eq!(am_a.received(), 1);
    let rtt_us = (at - t0) as f64 / 1000.0;
    // AM over Ethernet skips IP/UDP processing: faster than the UDP RTT.
    assert!(
        rtt_us < 600.0,
        "active-message RTT should undercut UDP: {rtt_us} us"
    );
}

#[test]
fn steady_state_active_messages_allocate_no_fresh_clusters() {
    use plexus_net::mbuf::{cluster_pool_stats, reset_cluster_pool};
    let mut world = World::new();
    let a = world.add_machine("a");
    let b = world.add_machine("b");
    let (_m, nics) = world.connect(
        &[&a, &b],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let sa = PlexusStack::attach(
        &a,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let sb = PlexusStack::attach(
        &b,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    let ext_a = sa.link_extension(&am_extension_spec("AM-A")).unwrap();
    let ext_b = sb.link_extension(&am_extension_spec("AM-B")).unwrap();
    let am_a = Rc::new(ActiveMessages::install(&sa, &ext_a).unwrap());
    let am_b = Rc::new(ActiveMessages::install(&sb, &ext_b).unwrap());

    // B echoes the payload back on handler 2; A verifies it intact — the
    // receive path gathers it across the whole chain, not just the head.
    let am_b2 = am_b.clone();
    am_b.register(1, move |ctx, msg| {
        am_b2.reply_in(ctx, msg.src, 2, msg.argument, &msg.payload);
    });
    let echoed: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let e2 = echoed.clone();
    let want: Vec<u8> = (0u16..512).map(|x| (x * 7) as u8).collect();
    let w2 = want.clone();
    am_a.register(2, move |_, msg| {
        assert_eq!(msg.payload, w2, "echoed payload must survive intact");
        e2.set(e2.get() + 1);
    });

    reset_cluster_pool();
    for _ in 0..4 {
        am_a.send(world.engine_mut(), MacAddr::local(2), 1, 7, &want)
            .unwrap();
        world.run();
    }
    let before = cluster_pool_stats();
    for _ in 0..32 {
        am_a.send(world.engine_mut(), MacAddr::local(2), 1, 7, &want)
            .unwrap();
        world.run();
    }
    let after = cluster_pool_stats();
    assert_eq!(echoed.get(), 36, "every echo arrived and verified");
    assert_eq!(
        after.allocated + after.unpooled,
        before.allocated + before.unpooled,
        "steady-state active messages must not allocate fresh clusters"
    );
}

#[test]
fn httpd_serves_documents_over_plexus_tcp() {
    let mut world = World::new();
    let c = world.add_machine("client");
    let s = world.add_machine("server");
    let (_m, nics) = world.connect(
        &[&c, &s],
        NicProfile::ethernet_lance(),
        SimDuration::from_micros(1),
        true,
    );
    let client = PlexusStack::attach(
        &c,
        &nics[0],
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let server = PlexusStack::attach(
        &s,
        &nics[1],
        StackConfig::interrupt(ip(2), MacAddr::local(2)),
    );
    client.seed_arp(server.ip(), server.mac());
    server.seed_arp(client.ip(), client.mac());

    let sext = server
        .link_extension(&httpd_extension_spec("httpd"))
        .unwrap();
    let cext = client
        .link_extension(&httpd_extension_spec("wget"))
        .unwrap();
    let mut docs = HashMap::new();
    docs.insert(
        "/index.html".to_string(),
        b"<html>SPIN lives</html>".to_vec(),
    );
    let httpd = Httpd::serve(&server, &sext, 80, docs).unwrap();

    let get = HttpGet::start(
        &client,
        &cext,
        world.engine_mut(),
        (ip(2), 80),
        "/index.html",
    )
    .unwrap();
    world.run_for(SimDuration::from_secs(10));
    let (status, body) = get.result().expect("response arrived");
    assert_eq!(status, 200);
    assert_eq!(body, b"<html>SPIN lives</html>");
    assert_eq!(httpd.stats().ok, 1);

    // A missing document 404s.
    let get2 = HttpGet::start(&client, &cext, world.engine_mut(), (ip(2), 80), "/missing").unwrap();
    world.run_for(SimDuration::from_secs(10));
    assert_eq!(get2.result().expect("response").0, 404);
    assert_eq!(httpd.stats().not_found, 1);
}

/// Builds a T3 video world: one server with a disk and N clients.
fn video_world(n_clients: usize) -> (World, Vec<Ipv4Addr>) {
    let mut world = World::new();
    let server = world.add_machine("video-server");
    server.set_disk(Disk::video_era());
    let mut machines = vec![server];
    let mut addrs = Vec::new();
    for i in 0..n_clients {
        let m = world.add_machine(&format!("client-{i}"));
        m.set_framebuffer(Framebuffer::new());
        addrs.push(ip(10 + i as u8));
        machines.push(m);
    }
    let refs: Vec<&Rc<plexus_sim::Machine>> = machines.iter().collect();
    world.connect(
        &refs,
        NicProfile::dec_t3(),
        SimDuration::from_micros(2),
        false,
    );
    (world, addrs)
}

#[test]
fn plexus_video_server_streams_to_clients() {
    let n = 3;
    let (mut world, addrs) = video_world(n);
    let machines: Vec<_> = world.machines().to_vec();
    let server_stack = PlexusStack::attach(
        &machines[0],
        &machines[0].nic(0),
        StackConfig::interrupt(ip(1), MacAddr::local(1)),
    );
    let sext = server_stack
        .link_extension(&video_extension_spec("video-server"))
        .unwrap();
    let mut clients = Vec::new();
    for (i, addr) in addrs.iter().enumerate() {
        let m = &machines[i + 1];
        let st = PlexusStack::attach(
            m,
            &m.nic(0),
            StackConfig::interrupt(*addr, MacAddr::local(10 + i as u8)),
        );
        st.seed_arp(ip(1), MacAddr::local(1));
        server_stack.seed_arp(*addr, MacAddr::local(10 + i as u8));
        let ext = st.link_extension(&video_extension_spec("viewer")).unwrap();
        let client = PlexusVideoClient::start(&st, &ext, VideoConfig::default()).unwrap();
        clients.push((st, client));
    }

    let cfg = VideoConfig::default();
    let until = SimTime::ZERO + SimDuration::from_secs(1);
    let server = PlexusVideoServer::start(
        &server_stack,
        &sext,
        world.engine_mut(),
        addrs.clone(),
        cfg,
        until,
    )
    .unwrap();
    world.run_for(SimDuration::from_secs(2));

    // ~30 frames in 1 s to each of the 3 clients.
    assert!(
        server.frames_sent() >= 25 * n as u64,
        "sent {} frame-datagrams",
        server.frames_sent()
    );
    for (_st, client) in &clients {
        let got = client.stats();
        assert!(got.frames >= 25, "client saw {} frames", got.frames);
        assert_eq!(got.bytes, got.frames * cfg.frame_bytes as u64);
    }
    // Frames exceed the T3 MTU, so they fragmented and reassembled.
    assert!(cfg.frame_bytes > NicProfile::dec_t3().mtu);
}

#[test]
fn dunix_video_server_uses_more_cpu_than_plexus() {
    let n = 10;
    let run = |plexus: bool| -> f64 {
        let (mut world, addrs) = video_world(n);
        let machines: Vec<_> = world.machines().to_vec();
        let server_machine = machines[0].clone();
        let until = SimTime::ZERO + SimDuration::from_secs(1);
        let cfg = VideoConfig::default();
        // Sinks on the clients so the frames are absorbed (baseline stack
        // works for both server types as a sink).
        for (i, addr) in addrs.iter().enumerate() {
            let m = &machines[i + 1];
            let st = plexus_baseline::MonolithicStack::attach(
                m,
                &m.nic(0),
                *addr,
                MacAddr::local(10 + i as u8),
            );
            st.seed_arp(ip(1), MacAddr::local(1));
            std::mem::forget(st);
        }
        let busy0 = server_machine.cpu().busy();
        if plexus {
            let st = PlexusStack::attach(
                &server_machine,
                &server_machine.nic(0),
                StackConfig::interrupt(ip(1), MacAddr::local(1)),
            );
            for (i, addr) in addrs.iter().enumerate() {
                st.seed_arp(*addr, MacAddr::local(10 + i as u8));
            }
            let ext = st.link_extension(&video_extension_spec("vs")).unwrap();
            let _srv =
                PlexusVideoServer::start(&st, &ext, world.engine_mut(), addrs.clone(), cfg, until)
                    .unwrap();
            world.run_for(SimDuration::from_secs(1));
        } else {
            let st = plexus_baseline::MonolithicStack::attach(
                &server_machine,
                &server_machine.nic(0),
                ip(1),
                MacAddr::local(1),
            );
            for (i, addr) in addrs.iter().enumerate() {
                st.seed_arp(*addr, MacAddr::local(10 + i as u8));
            }
            let _srv = DunixVideoServer::start(&st, world.engine_mut(), addrs.clone(), cfg, until)
                .unwrap();
            world.run_for(SimDuration::from_secs(1));
        }
        server_machine
            .cpu()
            .utilization(busy0, SimDuration::from_secs(1))
    };
    let plexus_util = run(true);
    let dunix_util = run(false);
    assert!(plexus_util > 0.01, "plexus server did work: {plexus_util}");
    assert!(
        dunix_util > plexus_util * 1.5,
        "paper: DUNIX uses ~2x the CPU; got plexus={plexus_util:.3} dunix={dunix_util:.3}"
    );
}

mod reliable_protocol {
    use super::*;
    use plexus_apps::reliable::{
        reliable_extension_spec, ReliableConfig, ReliableReceiver, ReliableSender,
    };
    use plexus_sim::nic::{FaultInjector, Medium};

    fn lossy_pair(
        drop_prob: f64,
        seed: u64,
    ) -> (
        plexus_sim::World,
        Rc<PlexusStack>,
        Rc<PlexusStack>,
        Rc<Medium>,
    ) {
        let mut world = plexus_sim::World::new();
        let a = world.add_machine("a");
        let b = world.add_machine("b");
        let (medium, nics) = world.connect(
            &[&a, &b],
            NicProfile::ethernet_lance(),
            SimDuration::from_micros(1),
            true,
        );
        medium.set_faults(FaultInjector::new(drop_prob, 0.0, seed));
        let sa = PlexusStack::attach(
            &a,
            &nics[0],
            StackConfig::interrupt(ip(1), MacAddr::local(1)),
        );
        let sb = PlexusStack::attach(
            &b,
            &nics[1],
            StackConfig::interrupt(ip(2), MacAddr::local(2)),
        );
        sa.seed_arp(ip(2), MacAddr::local(2));
        sb.seed_arp(ip(1), MacAddr::local(1));
        (world, sa, sb, medium)
    }

    #[test]
    fn delivers_in_order_over_a_clean_link() {
        let (mut world, sa, sb, _m) = lossy_pair(0.0, 1);
        let aext = sa.link_extension(&reliable_extension_spec("tx")).unwrap();
        let bext = sb.link_extension(&reliable_extension_spec("rx")).unwrap();
        let rx = ReliableReceiver::new(&sb, &bext, 7100).unwrap();
        let tx = ReliableSender::new(&sa, &aext, 7101, (ip(2), 7100), ReliableConfig::default())
            .unwrap();
        for i in 0..10u8 {
            tx.send(world.engine_mut(), &[i; 16]);
        }
        world.run_for(SimDuration::from_secs(2));
        assert!(tx.idle());
        assert_eq!(tx.delivered(), 10);
        assert_eq!(tx.retransmits(), 0, "no loss, no retransmission");
        let got = rx.received();
        assert_eq!(got.len(), 10);
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d, &vec![i as u8; 16]);
        }
    }

    #[test]
    fn survives_a_lossy_link_with_retransmission() {
        let (mut world, sa, sb, medium) = lossy_pair(0.25, 42);
        let aext = sa.link_extension(&reliable_extension_spec("tx")).unwrap();
        let bext = sb.link_extension(&reliable_extension_spec("rx")).unwrap();
        let rx = ReliableReceiver::new(&sb, &bext, 7100).unwrap();
        let tx = ReliableSender::new(&sa, &aext, 7101, (ip(2), 7100), ReliableConfig::default())
            .unwrap();
        let messages: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i ^ 0x5A; 64]).collect();
        for m in &messages {
            tx.send(world.engine_mut(), m);
        }
        world.run_for(SimDuration::from_secs(30));
        assert!(tx.idle(), "all datagrams eventually acknowledged");
        assert_eq!(tx.delivered(), 30);
        assert!(tx.retransmits() > 0, "losses forced retransmission");
        assert!(medium.fault_drops() > 0, "the link really dropped frames");
        assert_eq!(rx.received(), messages, "in order, exactly once");
        assert_eq!(tx.failed(), 0);
    }

    #[test]
    fn gives_up_after_bounded_retries_when_peer_is_gone() {
        // 100% loss: the datagram can never arrive.
        let (mut world, sa, _sb, _m) = lossy_pair(1.0, 7);
        let aext = sa.link_extension(&reliable_extension_spec("tx")).unwrap();
        let tx = ReliableSender::new(
            &sa,
            &aext,
            7101,
            (ip(2), 7100),
            ReliableConfig {
                retry_timeout: SimDuration::from_millis(1),
                max_retries: 4,
            },
        )
        .unwrap();
        tx.send(world.engine_mut(), b"into the void");
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(tx.failed(), 1, "bounded effort, then give up");
        assert_eq!(tx.delivered(), 0);
        assert_eq!(tx.retransmits(), 3, "retries 2..=4 were retransmissions");
        assert!(tx.idle());
    }
}

mod transaction_protocol {
    use super::*;
    use plexus_apps::transaction::{
        transaction_extension_spec, TransactionClient, TransactionServer,
    };
    use plexus_core::TcpCallbacks;
    use plexus_sim::nic::{FaultInjector, Medium};

    fn pair() -> (World, Rc<PlexusStack>, Rc<PlexusStack>) {
        let mut world = World::new();
        let a = world.add_machine("a");
        let b = world.add_machine("b");
        let (_m, nics) = world.connect(
            &[&a, &b],
            NicProfile::ethernet_lance(),
            SimDuration::from_micros(1),
            true,
        );
        let sa = PlexusStack::attach(
            &a,
            &nics[0],
            StackConfig::interrupt(ip(1), MacAddr::local(1)),
        );
        let sb = PlexusStack::attach(
            &b,
            &nics[1],
            StackConfig::interrupt(ip(2), MacAddr::local(2)),
        );
        sa.seed_arp(ip(2), MacAddr::local(2));
        sb.seed_arp(ip(1), MacAddr::local(1));
        (world, sa, sb)
    }

    #[test]
    fn one_round_trip_transactions() {
        let (mut world, client, server) = pair();
        let cext = client
            .link_extension(&transaction_extension_spec("txn-c"))
            .unwrap();
        let sext = server
            .link_extension(&transaction_extension_spec("txn-s"))
            .unwrap();
        let srv = TransactionServer::install(&server, &sext, 9999, |req| {
            let mut out = b"resp:".to_vec();
            out.extend_from_slice(req);
            out
        })
        .unwrap();
        let cli = TransactionClient::install(&client, &cext, 9998, (ip(2), 9999)).unwrap();

        let t0 = world.engine().now().as_nanos();
        let call = cli.call(world.engine_mut(), b"get-balance");
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(call.response().expect("answered"), b"resp:get-balance");
        assert_eq!(srv.served(), 1);
        assert_eq!(cli.retries(), 0);

        let rtt_us = (call.completed_at_ns().unwrap() - t0) as f64 / 1000.0;
        // One round trip, both handlers at interrupt level: near the UDP
        // RTT, nowhere near a full TCP connect+transfer+close.
        assert!(
            rtt_us < 700.0,
            "transaction should take ~1 RTT: {rtt_us} us"
        );
    }

    #[test]
    fn transactions_survive_loss_with_idempotent_retry() {
        let mut world = World::new();
        let a = world.add_machine("a");
        let b = world.add_machine("b");
        let (medium, nics): (Rc<Medium>, _) = world.connect(
            &[&a, &b],
            NicProfile::ethernet_lance(),
            SimDuration::from_micros(1),
            true,
        );
        medium.set_faults(FaultInjector::new(0.3, 0.0, 99));
        let client = PlexusStack::attach(
            &a,
            &nics[0],
            StackConfig::interrupt(ip(1), MacAddr::local(1)),
        );
        let server = PlexusStack::attach(
            &b,
            &nics[1],
            StackConfig::interrupt(ip(2), MacAddr::local(2)),
        );
        client.seed_arp(ip(2), MacAddr::local(2));
        server.seed_arp(ip(1), MacAddr::local(1));
        let cext = client
            .link_extension(&transaction_extension_spec("txn-c"))
            .unwrap();
        let sext = server
            .link_extension(&transaction_extension_spec("txn-s"))
            .unwrap();
        let _srv = TransactionServer::install(&server, &sext, 9999, |req| req.to_vec()).unwrap();
        let cli = TransactionClient::install(&client, &cext, 9998, (ip(2), 9999)).unwrap();
        let mut calls = Vec::new();
        for i in 0..20u8 {
            calls.push((i, cli.call(world.engine_mut(), &[i; 8])));
        }
        world.run_for(SimDuration::from_secs(5));
        for (i, call) in &calls {
            assert_eq!(
                call.response().expect("eventually answered"),
                vec![*i; 8],
                "transaction {i}"
            );
        }
        assert!(cli.retries() > 0, "losses forced retries");
    }

    #[test]
    fn transaction_beats_full_tcp_for_small_exchanges() {
        // §1.1's claim, quantified: the same request/response as one
        // transaction vs. a full TCP connect + transfer + close.
        let (mut world, client, server) = pair();
        let cext = client
            .link_extension(&transaction_extension_spec("txn-c"))
            .unwrap();
        let sext = server
            .link_extension(&transaction_extension_spec("txn-s"))
            .unwrap();
        let _srv = TransactionServer::install(&server, &sext, 9999, |req| req.to_vec()).unwrap();
        let cli = TransactionClient::install(&client, &cext, 9998, (ip(2), 9999)).unwrap();
        let t0 = world.engine().now().as_nanos();
        let call = cli.call(world.engine_mut(), b"tiny");
        world.run_for(SimDuration::from_secs(1));
        let txn_us = (call.completed_at_ns().unwrap() - t0) as f64 / 1000.0;

        // TCP-standard on the same stacks (different port).
        server
            .tcp()
            .listen(&sext, 8000, |_, conn| {
                conn.set_callbacks(TcpCallbacks {
                    on_data: Some(Rc::new(|ctx, conn, data| {
                        conn.send_in(ctx, data);
                        conn.close_in(ctx);
                    })),
                    ..Default::default()
                });
            })
            .unwrap();
        let done: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        let t1 = world.engine().now().as_nanos();
        let conn = client
            .tcp()
            .connect(&cext, world.engine_mut(), (ip(2), 8000))
            .unwrap();
        let d = done.clone();
        conn.set_callbacks(TcpCallbacks {
            on_connected: Some(Rc::new(|ctx, conn| conn.send_in(ctx, b"tiny"))),
            on_data: Some(Rc::new(move |ctx, _, _| {
                d.set(Some(ctx.lease.now().as_nanos()));
            })),
            on_peer_close: Some(Rc::new(|ctx, conn| conn.close_in(ctx))),
            ..Default::default()
        });
        world.run_for(SimDuration::from_secs(5));
        let tcp_us = (done.get().expect("tcp response") - t1) as f64 / 1000.0;
        assert!(
            txn_us < tcp_us / 1.8,
            "transaction ({txn_us:.0} us) should roughly halve TCP's small-exchange \
             latency ({tcp_us:.0} us)"
        );
    }

    #[test]
    fn steady_state_transactions_allocate_no_fresh_clusters() {
        use plexus_net::mbuf::{cluster_pool_stats, reset_cluster_pool};
        let (mut world, client, server) = pair();
        let cext = client
            .link_extension(&transaction_extension_spec("txn-c"))
            .unwrap();
        let sext = server
            .link_extension(&transaction_extension_spec("txn-s"))
            .unwrap();
        let _srv = TransactionServer::install(&server, &sext, 9999, |req| req.to_vec()).unwrap();
        let cli = TransactionClient::install(&client, &cext, 9998, (ip(2), 9999)).unwrap();

        reset_cluster_pool();
        // Warmup: populate the free lists and grow the parse scratch.
        for _ in 0..4 {
            let call = cli.call(world.engine_mut(), b"warmup-request-bytes");
            world.run_for(SimDuration::from_millis(50));
            assert!(call.response().is_some());
        }
        let before = cluster_pool_stats();
        for _ in 0..32 {
            let call = cli.call(world.engine_mut(), b"steady-request-bytes");
            world.run_for(SimDuration::from_millis(50));
            assert!(call.response().is_some());
        }
        let after = cluster_pool_stats();
        // The rx parse path peeks chains in place (or copies into a reused
        // scratch); every cluster the send path needs comes back from the
        // free lists, so steady state touches the heap not at all.
        assert_eq!(
            after.allocated + after.unpooled,
            before.allocated + before.unpooled,
            "steady-state transactions must not allocate fresh clusters"
        );
        assert!(after.reused > before.reused, "sends recycle via the pool");
    }
}
