//! The SPIN dynamic event dispatcher (§2).
//!
//! Kernel services and extensions *raise* events; extensions *install*
//! handlers on them. A handler may carry a **guard** — an arbitrary
//! predicate evaluated by the dispatcher before the handler is invoked — and
//! Plexus uses guards as packet filters that demultiplex packets through the
//! protocol graph. More than one handler may be installed on an event; the
//! overhead of invoking each is roughly one procedure call, which the
//! dispatcher charges to the caller's [`CpuLease`].
//!
//! Handlers are installed in one of two modes, matching Figure 5's bars:
//!
//! * [`HandlerMode::Interrupt`] — the handler runs directly in the raising
//!   context (for receive events, the network interrupt). Only certified
//!   [`Ephemeral`] handlers may be installed this way, and the installer may
//!   attach a time limit; an over-budget handler is *terminated* (its CPU
//!   charge is capped and the termination reported).
//! * [`HandlerMode::Thread`] — each raise spawns a fresh kernel thread for
//!   the handler, paying thread-creation and context-switch costs.
//!
//! Possession of an [`Event`] handle is the authority to raise and to
//! install on it — the capability discipline protocol managers rely on to
//! keep untrusted extensions from touching protocol events directly (§3.1).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

use plexus_filter::{key_schema, DemuxKey, FieldKey, FieldSpec, KeySpec, Packet, VerifiedProgram};
use plexus_sim::engine::Engine;
use plexus_sim::time::SimDuration;
use plexus_sim::CpuLease;
use plexus_trace::{GuardKind, Scope};

use crate::ephemeral::Ephemeral;

/// A guard predicate: packet filter over the event argument.
pub type GuardFn<T> = Box<dyn Fn(&T) -> bool>;

/// A statically verified guard bound to its event argument type.
///
/// Holds the [`VerifiedProgram`] (so managers and tooling can still
/// inspect the installed filter) plus a monomorphized evaluator; the
/// `T: Packet` obligation is discharged at construction, so the
/// dispatcher's raise path needs no bound on `T`.
pub struct VerifiedGuard<T> {
    program: Rc<VerifiedProgram>,
    eval: fn(&VerifiedProgram, &T, u64) -> (bool, u32),
    /// Extracted demux key, when the program's acceptance is statically
    /// bounded over its event kind's key schema (see
    /// [`plexus_filter::DemuxKey`]).
    key: Option<KeySpec>,
    /// Monomorphized schema-field reader for the demux probe; mirrors
    /// `eval`'s load semantics.
    read: fn(&T, FieldKey) -> Option<u64>,
}

impl<T: Packet + 'static> VerifiedGuard<T> {
    /// Binds a verified program to the event argument type `T`.
    pub fn new(program: Rc<VerifiedProgram>) -> VerifiedGuard<T> {
        let key = DemuxKey::extract(&program);
        VerifiedGuard {
            program,
            eval: |p, arg, now| plexus_filter::eval_metered(p, arg, now),
            key,
            read: |arg, k| plexus_filter::read_field_key(arg, k),
        }
    }
}

impl<T> VerifiedGuard<T> {
    /// Evaluates the guard against an event argument at simulated time
    /// `now_ns` (which drives token-bucket refill in stateful guards),
    /// returning the verdict and the abstract cycles the evaluation spent
    /// — never more than [`VerifiedProgram::static_bound`].
    pub fn matches(&self, arg: &T, now_ns: u64) -> (bool, u32) {
        (self.eval)(&self.program, arg, now_ns)
    }

    /// The verified program this guard runs.
    pub fn program(&self) -> &Rc<VerifiedProgram> {
        &self.program
    }

    /// The extracted demux key, if the guard is indexable.
    pub fn key(&self) -> Option<&KeySpec> {
        self.key.as_ref()
    }
}

/// A guard attached to a handler: either a legacy opaque closure or a
/// statically verified filter program.
///
/// Closures remain available for thread-mode handlers (trusted in-kernel
/// code and tests), but interrupt-mode installs require
/// [`Guard::Verified`] — an unverifiable predicate has no business running
/// in interrupt context.
pub enum Guard<T> {
    /// An opaque predicate closure (legacy; thread mode only).
    Closure(GuardFn<T>),
    /// A statically verified filter program.
    Verified(VerifiedGuard<T>),
}

impl<T> Guard<T> {
    /// Wraps a predicate closure.
    pub fn closure(f: impl Fn(&T) -> bool + 'static) -> Guard<T> {
        Guard::Closure(Box::new(f))
    }

    /// Wraps a verified program (requires `T: Packet`).
    pub fn verified(program: Rc<VerifiedProgram>) -> Guard<T>
    where
        T: Packet + 'static,
    {
        Guard::Verified(VerifiedGuard::new(program))
    }

    /// Whether this guard carries verifier evidence.
    pub fn is_verified(&self) -> bool {
        matches!(self, Guard::Verified(_))
    }
}

/// An event handler body.
pub type HandlerFn<T> = Box<dyn Fn(&mut RaiseCtx<'_>, &T)>;

/// Everything [`Dispatcher::install`] needs to install one handler, built
/// fluently:
///
/// ```ignore
/// dispatcher.install(event, HandlerSpec::new(f).guard(g).owner("udp"));
/// dispatcher.install(
///     event,
///     HandlerSpec::ephemeral(Ephemeral::certify(f))
///         .guard(g)
///         .owner("udp")
///         .interrupt(),
/// );
/// ```
///
/// This replaces the four `install_thread{,_owned}` /
/// `install_interrupt{,_owned}` entry points. Defaults: thread mode,
/// no guard, owner `"kernel"`. Interrupt delivery requires construction
/// via [`HandlerSpec::ephemeral`] — the certification discipline the old
/// `install_interrupt` signature enforced with its `Ephemeral<F>`
/// parameter.
pub struct HandlerSpec<T> {
    guard: Option<Guard<T>>,
    handler: HandlerFn<T>,
    ephemeral: bool,
    interrupt: bool,
    time_limit: Option<SimDuration>,
    owner: String,
}

impl<T> HandlerSpec<T> {
    /// A thread-mode handler spec with no guard, owned by `"kernel"`.
    pub fn new(handler: impl Fn(&mut RaiseCtx<'_>, &T) + 'static) -> HandlerSpec<T> {
        HandlerSpec {
            guard: None,
            handler: Box::new(handler),
            ephemeral: false,
            interrupt: false,
            time_limit: None,
            owner: "kernel".to_string(),
        }
    }

    /// A spec around a certified [`Ephemeral`] handler — the only
    /// construction path that [`HandlerSpec::interrupt`] accepts.
    pub fn ephemeral<F>(handler: Ephemeral<F>) -> HandlerSpec<T>
    where
        F: Fn(&mut RaiseCtx<'_>, &T) + 'static,
    {
        let f = handler.into_inner();
        HandlerSpec {
            guard: None,
            handler: Box::new(f),
            ephemeral: true,
            interrupt: false,
            time_limit: None,
            owner: "kernel".to_string(),
        }
    }

    /// Attaches a guard.
    pub fn guard(mut self, guard: Guard<T>) -> HandlerSpec<T> {
        self.guard = Some(guard);
        self
    }

    /// Attaches an optional guard (convenience for call sites that already
    /// hold an `Option<Guard<T>>`).
    pub fn guard_opt(mut self, guard: Option<Guard<T>>) -> HandlerSpec<T> {
        self.guard = guard;
        self
    }

    /// Sets the owning domain for flight-recorder attribution.
    pub fn owner(mut self, owner: &str) -> HandlerSpec<T> {
        self.owner = owner.to_string();
        self
    }

    /// Requests interrupt-mode delivery (run in the raiser's context).
    pub fn interrupt(mut self) -> HandlerSpec<T> {
        self.interrupt = true;
        self
    }

    /// Sets the interrupt-mode termination allotment; implies
    /// [`HandlerSpec::interrupt`]. Accepts a bare [`SimDuration`] or an
    /// `Option` (for call sites with a configured-but-maybe-absent limit).
    pub fn time_limit(mut self, limit: impl Into<Option<SimDuration>>) -> HandlerSpec<T> {
        self.time_limit = limit.into();
        self.interrupt = true;
        self
    }
}

/// Context passed to handlers: the engine (to schedule follow-up work) and
/// the open CPU lease (to charge processing costs).
pub struct RaiseCtx<'a> {
    /// The discrete-event engine.
    pub engine: &'a mut Engine,
    /// The CPU lease of the activity that raised the event.
    pub lease: &'a mut CpuLease,
}

/// How a handler is delivered when its event is raised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandlerMode {
    /// Run directly in the raiser's (interrupt) context; optionally
    /// terminated if it exceeds the time limit.
    Interrupt {
        /// Allotment after which the dispatcher terminates the handler.
        time_limit: Option<SimDuration>,
    },
    /// Spawn a new kernel thread per raise (Figure 5's "thread" bars).
    Thread,
}

/// Identifies an installed handler, for later uninstall.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HandlerId(u64);

/// Default per-event cycle budget for interrupt-mode installs, in the
/// abstract guard cycles of [`plexus_filter::insn_cycles`]. A verified
/// guard whose static worst-case bound exceeds the budget is rejected at
/// install time — admission control, not runtime policing.
pub const DEFAULT_INTERRUPT_CYCLE_BUDGET: u32 = 64;

/// Why [`Dispatcher::try_install`] refused a handler.
///
/// [`Dispatcher::install`] panics with the same messages; callers that
/// want to surface the diagnostic (protocol managers admitting extension
/// filters) use `try_install` and keep the error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstallError {
    /// An interrupt-mode spec whose handler was not certified via
    /// [`HandlerSpec::ephemeral`].
    UncertifiedInterrupt,
    /// An interrupt-mode spec carrying a [`Guard::Closure`] — an
    /// unverifiable predicate has no business running in interrupt
    /// context.
    ClosureGuardInterrupt,
    /// An interrupt-mode spec whose verified guard's static worst-case
    /// cycle bound exceeds the dispatcher's per-event interrupt budget.
    GuardOverBudget {
        /// The guard program's static worst-case bound, in cycles.
        bound: u32,
        /// The dispatcher's per-event interrupt cycle budget.
        budget: u32,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::UncertifiedInterrupt => {
                write!(
                    f,
                    "interrupt-mode installs require a certified ephemeral handler"
                )
            }
            InstallError::ClosureGuardInterrupt => write!(
                f,
                "interrupt-mode installs require a verified guard program (or no guard)"
            ),
            InstallError::GuardOverBudget { bound, budget } => write!(
                f,
                "interrupt-mode install rejected: guard worst-case bound is {bound} cycles \
                 but the per-event interrupt budget is {budget}; simplify the filter or \
                 install in thread mode"
            ),
        }
    }
}

/// A typed, copyable capability to one event.
///
/// Holding an `Event<T>` is the authority to raise it and install handlers
/// on it. Protocol managers keep their events private and install handlers
/// on behalf of applications.
pub struct Event<T> {
    dispatcher: u64,
    index: usize,
    _arg: PhantomData<fn(&T)>,
}

impl<T> Clone for Event<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Event<T> {}

/// Counters the dispatcher keeps about its own operation.
///
/// All counters are `u64` and increment saturating — a flooded dispatcher
/// pins at `u64::MAX` rather than wrapping. When a
/// [`plexus_trace::Recorder`] is installed on the raising CPU, the
/// recorder's [`plexus_trace::Registry`] holds the superset (per-event,
/// per-guard-kind, per-domain splits); this struct remains the cheap
/// aggregate view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Events raised.
    pub raises: u64,
    /// Handlers invoked.
    pub invocations: u64,
    /// Guards evaluated (closures and verified programs combined).
    pub guard_evals: u64,
    /// Guards that rejected the argument.
    pub guard_rejects: u64,
    /// Of `guard_evals`, how many ran a verified filter program.
    pub verified_guard_evals: u64,
    /// Of `guard_rejects`, how many came from a verified filter program.
    pub verified_guard_rejects: u64,
    /// Ephemeral handlers terminated for exceeding their allotment.
    pub terminations: u64,
    /// Demux-index hash probes charged (`CostModel::demux_probe`). Once
    /// lumped into the guard-eval charge; split out so profiles can tell
    /// a keyed lookup from a real guard evaluation. In a batch only the
    /// first raise pays (and counts) the probe.
    pub demux_probes: u64,
    /// Raises served through the demux index (one hash probe instead of a
    /// guard evaluation per indexed handler).
    pub demux_hits: u64,
    /// Raises of guarded events that had no indexed handlers and fell back
    /// to the pure linear scan.
    pub demux_fallbacks: u64,
    /// Guard evaluations avoided because the index proved the guard would
    /// reject (counted into `RaiseOutcome::rejected`, but never into
    /// `guard_evals`).
    pub demux_skipped: u64,
}

impl fmt::Display for DispatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "raises={} invocations={} guard_evals={} (verified {}) \
             guard_rejects={} (verified {}) terminations={} \
             demux_probes={} demux_hits={} demux_fallbacks={} \
             demux_skipped={}",
            self.raises,
            self.invocations,
            self.guard_evals,
            self.verified_guard_evals,
            self.guard_rejects,
            self.verified_guard_rejects,
            self.terminations,
            self.demux_probes,
            self.demux_hits,
            self.demux_fallbacks,
            self.demux_skipped
        )
    }
}

/// One record in the dispatcher's event trace (see
/// [`Dispatcher::enable_trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The raised event's name.
    pub event: String,
    /// Simulated instant of the raise (nanoseconds).
    pub at_ns: u64,
    /// Handlers invoked.
    pub invoked: u32,
    /// Guards that rejected the argument.
    pub rejected: u32,
}

/// Result of a single raise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaiseOutcome {
    /// Handlers whose guards matched and which were invoked.
    pub invoked: u32,
    /// Handlers skipped because their guard rejected the argument.
    pub rejected: u32,
    /// Invoked handlers that were terminated over-budget.
    pub terminated: u32,
}

struct Entry<T> {
    id: HandlerId,
    guard: Option<Guard<T>>,
    handler: HandlerFn<T>,
    mode: HandlerMode,
    ephemeral: bool,
    /// Owning domain (extension or kernel subsystem) for per-domain
    /// accounting in the flight recorder.
    owner: Rc<str>,
    /// The guard's demux key — `Some` iff this entry occupies hash buckets
    /// in the table's index (so the raise path may skip it when the index
    /// does not select it).
    key: Option<KeySpec>,
    removed: Cell<bool>,
}

/// Hash key of one demux bucket: which schema fields are bound (`mask`,
/// bit `i` = schema field `i`) and their values, in schema order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct BucketKey {
    mask: u8,
    vals: Vec<u64>,
}

/// Per-table demultiplexing index over the installed verified guards whose
/// acceptance is statically bounded ([`DemuxKey::extract`]).
///
/// Soundness: a bucket only ever *narrows* the candidate set. An indexed
/// entry appears under every key its guard may accept (the enumerated
/// cross product of its `In` sets), so an entry absent from the probed
/// buckets has a guard that provably rejects the packet; candidates still
/// run their full guard. Entries whose guards are not indexable carry no
/// key and are always evaluated.
struct DemuxState<T> {
    /// Monomorphized schema-field reader, taken from the first indexed
    /// guard (all guards of one event kind share `read_field_key`).
    read: Option<fn(&T, FieldKey) -> Option<u64>>,
    /// The event kind's key schema, fixed by the first indexed guard.
    schema: Option<&'static [FieldKey]>,
    /// Live indexed entries per field mask — the masks the probe must
    /// try. `BTreeMap` so probe order is deterministic.
    mask_counts: BTreeMap<u8, usize>,
    /// `(mask, values) -> handler ids`, in install order per bucket.
    buckets: HashMap<BucketKey, Vec<HandlerId>>,
    /// Total live indexed entries.
    indexed: usize,
}

impl<T> Default for DemuxState<T> {
    fn default() -> DemuxState<T> {
        DemuxState {
            read: None,
            schema: None,
            mask_counts: BTreeMap::new(),
            buckets: HashMap::new(),
            indexed: 0,
        }
    }
}

/// Enumerates the bucket keys a key spec occupies: the bound-field mask
/// and the cross product of its `In` sets, in schema order. Bounded by
/// [`plexus_filter::MAX_ENUMERATED_KEYS`] at extraction time.
fn enumerate_keys(spec: &KeySpec) -> (u8, Vec<Vec<u64>>) {
    let mut mask = 0u8;
    let mut combos: Vec<Vec<u64>> = vec![Vec::new()];
    for (i, field) in spec.fields().iter().enumerate() {
        if let FieldSpec::In(vals) = field {
            mask |= 1 << i;
            let mut next = Vec::with_capacity(combos.len() * vals.len());
            for combo in &combos {
                for v in vals {
                    let mut c = combo.clone();
                    c.push(*v);
                    next.push(c);
                }
            }
            combos = next;
        }
    }
    (mask, combos)
}

struct Table<T> {
    name: String,
    entries: RefCell<Vec<Rc<Entry<T>>>>,
    demux: RefCell<DemuxState<T>>,
}

/// Type-erased view of a [`Table`] for graph introspection.
trait TableInfo {
    fn event_name(&self) -> &str;
    /// `(live handlers, of which guarded)`.
    fn live_counts(&self) -> (usize, usize);
}

impl<T> TableInfo for Table<T> {
    fn event_name(&self) -> &str {
        &self.name
    }

    fn live_counts(&self) -> (usize, usize) {
        let entries = self.entries.borrow();
        let live = entries.iter().filter(|e| !e.removed.get()).count();
        let guarded = entries
            .iter()
            .filter(|e| !e.removed.get() && e.guard.is_some())
            .count();
        (live, guarded)
    }
}

/// One row of [`Dispatcher::event_summary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSummary {
    /// The event's name.
    pub name: String,
    /// Live handlers installed.
    pub handlers: usize,
    /// Of those, how many carry guards (packet filters).
    pub guarded: usize,
}

/// The dynamic event dispatcher. One per simulated kernel.
/// Both facets of a stored table: the typed side (downcast on access) and
/// the type-erased introspection side.
type TableSlot = (Rc<dyn Any>, Rc<dyn TableInfo>);

/// The dynamic event dispatcher. One per simulated kernel.
pub struct Dispatcher {
    id: u64,
    tables: RefCell<Vec<TableSlot>>,
    names: RefCell<HashMap<String, usize>>,
    next_handler: Cell<u64>,
    stats: Cell<DispatchStats>,
    trace: RefCell<Option<TraceRing>>,
    demux_enabled: Cell<bool>,
    interrupt_cycle_budget: Cell<u32>,
}

struct TraceRing {
    capacity: usize,
    entries: std::collections::VecDeque<TraceEntry>,
}

thread_local! {
    static NEXT_DISPATCHER: Cell<u64> = const { Cell::new(1) };
}

impl Dispatcher {
    /// Creates an empty dispatcher.
    pub fn new() -> Rc<Dispatcher> {
        let id = NEXT_DISPATCHER.with(|n| {
            let v = n.get();
            n.set(v + 1);
            v
        });
        Rc::new(Dispatcher {
            id,
            tables: RefCell::new(Vec::new()),
            names: RefCell::new(HashMap::new()),
            next_handler: Cell::new(1),
            stats: Cell::new(DispatchStats::default()),
            trace: RefCell::new(None),
            demux_enabled: Cell::new(true),
            interrupt_cycle_budget: Cell::new(DEFAULT_INTERRUPT_CYCLE_BUDGET),
        })
    }

    /// Operation counters.
    pub fn stats(&self) -> DispatchStats {
        self.stats.get()
    }

    /// Sets the per-event cycle budget interrupt-mode installs must fit
    /// (default [`DEFAULT_INTERRUPT_CYCLE_BUDGET`]). Applies to installs
    /// from this point on; already-admitted handlers are unaffected.
    pub fn set_interrupt_cycle_budget(&self, cycles: u32) {
        self.interrupt_cycle_budget.set(cycles);
    }

    /// The current per-event interrupt cycle budget.
    pub fn interrupt_cycle_budget(&self) -> u32 {
        self.interrupt_cycle_budget.get()
    }

    /// Enables or disables the hash-demultiplexing fast path (on by
    /// default). With it off every raise walks the linear scan — handler
    /// selection is identical either way; only the charged probe/guard
    /// costs and the demux counters differ. Benchmarks use this to compare
    /// the two regimes.
    pub fn set_demux_enabled(&self, enabled: bool) {
        self.demux_enabled.set(enabled);
    }

    /// Whether the demux fast path is enabled.
    pub fn demux_enabled(&self) -> bool {
        self.demux_enabled.get()
    }

    /// Turns on event tracing with a bounded ring of `capacity` entries
    /// (oldest entries fall off). Tracing is the kernel-side observability
    /// tool extensions cannot get any other way — they cannot snoop events
    /// they are not installed on.
    pub fn enable_trace(&self, capacity: usize) {
        *self.trace.borrow_mut() = Some(TraceRing {
            capacity: capacity.max(1),
            entries: std::collections::VecDeque::new(),
        });
    }

    /// Stops tracing and discards the ring.
    pub fn disable_trace(&self) {
        *self.trace.borrow_mut() = None;
    }

    /// A snapshot of the trace ring, oldest first. Entries are recorded as
    /// each raise *completes*, so a nested raise (a handler re-raising a
    /// higher-layer event) appears before its parent — read bottom-up for
    /// a packet's walk through the graph. Empty when tracing is off.
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.trace
            .borrow()
            .as_ref()
            .map(|t| t.entries.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Defines a new event with argument type `T` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if an event with this name already exists — events are
    /// declared once, by the interface that owns them.
    pub fn define_event<T: 'static>(&self, name: &str) -> Event<T> {
        let mut names = self.names.borrow_mut();
        assert!(
            !names.contains_key(name),
            "event {name:?} is already defined"
        );
        let mut tables = self.tables.borrow_mut();
        let index = tables.len();
        let table = Rc::new(Table::<T> {
            name: name.to_string(),
            entries: RefCell::new(Vec::new()),
            demux: RefCell::new(DemuxState::default()),
        });
        tables.push((table.clone() as Rc<dyn Any>, table as Rc<dyn TableInfo>));
        names.insert(name.to_string(), index);
        Event {
            dispatcher: self.id,
            index,
            _arg: PhantomData,
        }
    }

    /// The name an event was defined with.
    pub fn event_name<T: 'static>(&self, event: Event<T>) -> String {
        self.table(event).name.clone()
    }

    fn table<T: 'static>(&self, event: Event<T>) -> Rc<Table<T>> {
        assert_eq!(
            event.dispatcher, self.id,
            "event handle belongs to a different dispatcher"
        );
        let any = self.tables.borrow()[event.index].0.clone();
        any.downcast::<Table<T>>()
            .expect("event argument type mismatch")
    }

    /// Lists every defined event with its live handler and guard counts —
    /// the raw material for rendering the protocol graph (Figure 1) from a
    /// running kernel.
    pub fn event_summary(&self) -> Vec<EventSummary> {
        self.tables
            .borrow()
            .iter()
            .map(|(_, info)| {
                let (handlers, guarded) = info.live_counts();
                EventSummary {
                    name: info.event_name().to_string(),
                    handlers,
                    guarded,
                }
            })
            .collect()
    }

    /// Installs a handler described by a [`HandlerSpec`] — the single
    /// installation entry point.
    ///
    /// When the spec's guard is a verified program with an extractable
    /// demux key, the handler is also entered into the event's hash index,
    /// so raises can skip its guard whenever the packet's key provably
    /// mismatches.
    ///
    /// # Panics
    ///
    /// Panics with the [`InstallError`] message when
    /// [`Dispatcher::try_install`] would refuse the spec: an interrupt-mode
    /// handler not certified via [`HandlerSpec::ephemeral`] (§3.3's
    /// evidence requirement), an interrupt-mode [`Guard::Closure`], or a
    /// verified guard whose static worst-case bound exceeds the
    /// per-event interrupt cycle budget.
    pub fn install<T: 'static>(&self, event: Event<T>, spec: HandlerSpec<T>) -> HandlerId {
        self.try_install(event, spec)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Dispatcher::install`] that reports refusal instead of panicking —
    /// the admission-control entry point for specs built from untrusted
    /// extension input.
    ///
    /// Interrupt-mode admission requires, beyond certification and a
    /// verified (or absent) guard, that the guard program's
    /// [`VerifiedProgram::static_bound`] fits the dispatcher's per-event
    /// interrupt cycle budget: the raising context is the network
    /// interrupt, and the static bound is the proof the filter cannot
    /// stall it.
    pub fn try_install<T: 'static>(
        &self,
        event: Event<T>,
        spec: HandlerSpec<T>,
    ) -> Result<HandlerId, InstallError> {
        let mode = if spec.interrupt {
            if !spec.ephemeral {
                return Err(InstallError::UncertifiedInterrupt);
            }
            match &spec.guard {
                Some(Guard::Closure(_)) => return Err(InstallError::ClosureGuardInterrupt),
                Some(Guard::Verified(vg)) => {
                    let bound = vg.program().static_bound();
                    let budget = self.interrupt_cycle_budget.get();
                    if bound > budget {
                        return Err(InstallError::GuardOverBudget { bound, budget });
                    }
                }
                None => {}
            }
            HandlerMode::Interrupt {
                time_limit: spec.time_limit,
            }
        } else {
            HandlerMode::Thread
        };
        Ok(self.push_entry(
            event,
            spec.guard,
            spec.handler,
            mode,
            spec.ephemeral,
            &spec.owner,
        ))
    }

    fn push_entry<T: 'static>(
        &self,
        event: Event<T>,
        guard: Option<Guard<T>>,
        handler: HandlerFn<T>,
        mode: HandlerMode,
        ephemeral: bool,
        owner: &str,
    ) -> HandlerId {
        let id = HandlerId(self.next_handler.get());
        self.next_handler.set(id.0 + 1);
        let table = self.table(event);

        // Index the entry if its guard carries an extractable key. The
        // entry's stored `key` stays `None` unless the index actually
        // accepted it — the raise path's skip test relies on "has a key"
        // implying "is in the buckets".
        let (key, read) = match &guard {
            Some(Guard::Verified(vg)) => (vg.key().cloned(), Some(vg.read)),
            _ => (None, None),
        };
        let key = key.and_then(|spec| {
            let mut demux = table.demux.borrow_mut();
            let schema = key_schema(spec.kind());
            if demux.schema.get_or_insert(schema) != &schema {
                // A guard of a different event kind on the same table
                // (possible only with an exotic `Packet` impl): leave it
                // on the linear path rather than mix schemas.
                return None;
            }
            let (mask, combos) = enumerate_keys(&spec);
            if mask == 0 {
                return None;
            }
            if demux.read.is_none() {
                demux.read = read;
            }
            *demux.mask_counts.entry(mask).or_insert(0) += 1;
            for vals in combos {
                demux
                    .buckets
                    .entry(BucketKey { mask, vals })
                    .or_default()
                    .push(id);
            }
            demux.indexed += 1;
            Some(spec)
        });

        table.entries.borrow_mut().push(Rc::new(Entry {
            id,
            guard,
            handler,
            mode,
            ephemeral,
            owner: Rc::from(owner),
            key,
            removed: Cell::new(false),
        }));
        id
    }

    /// Removes a handler (and its demux-index buckets). Returns `false` if
    /// it was not installed (or was already removed). Safe to call from
    /// inside a handler.
    pub fn uninstall<T: 'static>(&self, event: Event<T>, id: HandlerId) -> bool {
        let table = self.table(event);
        let mut found: Option<Option<KeySpec>> = None;
        {
            let entries = table.entries.borrow();
            for e in entries.iter() {
                if e.id == id && !e.removed.get() {
                    e.removed.set(true);
                    found = Some(e.key.clone());
                    break;
                }
            }
        }
        let Some(key) = found else {
            return false;
        };
        if let Some(spec) = key {
            let mut demux = table.demux.borrow_mut();
            let (mask, combos) = enumerate_keys(&spec);
            for vals in combos {
                let bk = BucketKey { mask, vals };
                if let Some(ids) = demux.buckets.get_mut(&bk) {
                    ids.retain(|x| *x != id);
                    if ids.is_empty() {
                        demux.buckets.remove(&bk);
                    }
                }
            }
            if let Some(count) = demux.mask_counts.get_mut(&mask) {
                *count -= 1;
                if *count == 0 {
                    demux.mask_counts.remove(&mask);
                }
            }
            demux.indexed -= 1;
        }
        true
    }

    /// Number of live handlers installed on `event`.
    pub fn handler_count<T: 'static>(&self, event: Event<T>) -> usize {
        self.table(event)
            .entries
            .borrow()
            .iter()
            .filter(|e| !e.removed.get())
            .count()
    }

    /// Whether the installed handler is certified ephemeral.
    pub fn is_ephemeral<T: 'static>(&self, event: Event<T>, id: HandlerId) -> Option<bool> {
        self.table(event)
            .entries
            .borrow()
            .iter()
            .find(|e| e.id == id && !e.removed.get())
            .map(|e| e.ephemeral)
    }

    /// Raises `event` with `arg`: evaluates each live handler's guard and
    /// invokes the matches, charging dispatch/guard/thread costs to
    /// `ctx.lease` per the machine's [`plexus_sim::CostModel`].
    pub fn raise<T: 'static>(
        &self,
        ctx: &mut RaiseCtx<'_>,
        event: Event<T>,
        arg: &T,
    ) -> RaiseOutcome {
        let table = self.table(event);
        self.raise_on_table(ctx, &table, arg, true)
    }

    /// Opens a batched raise session on `event` — the coalesced receive
    /// path's entry point. The event table is resolved once here, and only
    /// the batch's first [`EventBatch::raise`] pays the fixed
    /// `dispatch_raise` (and demux-probe) charge; later raises in the same
    /// batch ride the warm lookup. Everything *observable per packet* —
    /// guard verdicts, handler order, per-handler charges, trace records —
    /// is identical to N independent [`Dispatcher::raise`] calls.
    pub fn batch<T: 'static>(&self, event: Event<T>) -> EventBatch<'_, T> {
        EventBatch {
            dispatcher: self,
            table: self.table(event),
            amortized: false,
        }
    }

    fn raise_on_table<T: 'static>(
        &self,
        ctx: &mut RaiseCtx<'_>,
        table: &Rc<Table<T>>,
        arg: &T,
        charge_fixed: bool,
    ) -> RaiseOutcome {
        let model = ctx.lease.model().clone();
        if charge_fixed {
            ctx.lease.charge(model.dispatch_raise);
        }

        // Flight recorder, if the raising CPU carries one. Held as an
        // owned handle because the handler call below reborrows `ctx`.
        let rec = ctx.lease.recorder_handle();
        let ev_label = rec.as_ref().map(|r| r.intern(&table.name));
        if let (Some(r), Some(lbl)) = (&rec, ev_label) {
            r.count(Scope::Event, lbl, "raises", 1);
        }

        // Snapshot the entry list so handlers can install/uninstall without
        // aliasing the `RefCell` borrow; entries removed mid-raise are
        // skipped via their `removed` flag.
        let entries: Vec<Rc<Entry<T>>> = table.entries.borrow().iter().cloned().collect();

        let mut outcome = RaiseOutcome::default();
        let mut stats = self.stats.get();
        stats.raises = stats.raises.saturating_add(1);

        // Demux fast path: one hash probe selects the indexed candidates.
        // The borrow is dropped before the walk — handlers may install
        // mid-raise, which needs `demux` mutably.
        let mut candidates: Option<HashSet<HandlerId>> = None;
        let mut read_fn: Option<fn(&T, FieldKey) -> Option<u64>> = None;
        if self.demux_enabled.get() {
            let demux = table.demux.borrow();
            if demux.indexed > 0 {
                // The probe costs one keyed lookup — the index replaces N
                // guard runs with it. Charged and counted as its own
                // `demux_probe`, not a guard evaluation. In a batch only
                // the first raise pays it: the bucket walk stays warm in
                // cache for the rest.
                if charge_fixed {
                    ctx.lease.charge(model.demux_probe);
                    stats.demux_probes = stats.demux_probes.saturating_add(1);
                    if let (Some(r), Some(lbl)) = (&rec, ev_label) {
                        r.count(Scope::Event, lbl, "demux.probes", 1);
                    }
                }
                read_fn = demux.read;
                let read = demux.read.expect("indexed entries carry a reader");
                let schema = demux.schema.expect("indexed entries carry a schema");
                let mut selected = HashSet::new();
                for (&mask, _) in demux.mask_counts.iter() {
                    let mut vals = Vec::new();
                    let mut readable = true;
                    for (i, key) in schema.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            match read(arg, *key) {
                                Some(v) => vals.push(v),
                                None => {
                                    // Guards under this mask load this
                                    // field; a failed load rejects in
                                    // eval, so none can match.
                                    readable = false;
                                    break;
                                }
                            }
                        }
                    }
                    if !readable {
                        continue;
                    }
                    if let Some(ids) = demux.buckets.get(&BucketKey { mask, vals }) {
                        selected.extend(ids.iter().copied());
                    }
                }
                candidates = Some(selected);
            }
        }
        let probed = candidates.is_some();
        let mut avoided: u64 = 0;
        let mut saw_guard = false;

        for entry in entries {
            if entry.removed.get() {
                continue;
            }
            if entry.guard.is_some() {
                saw_guard = true;
            }
            // Indexed entries the probe did not select (or whose live
            // `NotIn` port sets exclude the packet) are skipped without
            // evaluating the guard: the index proves the guard rejects, so
            // the outcome is identical to the linear scan — minus the
            // eval, its charge, and its trace record.
            if let (Some(selected), Some(spec)) = (&candidates, &entry.key) {
                let mut skip = !selected.contains(&entry.id);
                if !skip {
                    if let Some(read) = read_fn {
                        let schema = key_schema(spec.kind());
                        for (i, field) in spec.fields().iter().enumerate() {
                            if let FieldSpec::NotIn(sets) = field {
                                // Live membership, mirroring JInSet's
                                // u16-truncated semantics: a member (or an
                                // unreadable field) cannot reach accept.
                                let member = match read(arg, schema[i]) {
                                    None => true,
                                    Some(v) => u16::try_from(v)
                                        .map(|p| sets.iter().any(|s| s.contains(p)))
                                        .unwrap_or(false),
                                };
                                if member {
                                    skip = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                if skip {
                    outcome.rejected += 1;
                    avoided += 1;
                    continue;
                }
            }
            if let Some(guard) = &entry.guard {
                stats.guard_evals = stats.guard_evals.saturating_add(1);
                ctx.lease.charge(model.guard_eval);
                let (matched, kind) = match guard {
                    Guard::Closure(f) => (f(arg), GuardKind::Closure),
                    Guard::Verified(vg) => {
                        stats.verified_guard_evals = stats.verified_guard_evals.saturating_add(1);
                        let (matched, measured) = vg.matches(arg, ctx.lease.now().as_nanos());
                        if let (Some(r), Some(lbl)) = (&rec, ev_label) {
                            // Static-bound cross-check: counters only, so
                            // recorder presence never changes behavior.
                            r.guard_cost(
                                lbl,
                                u64::from(measured),
                                u64::from(vg.program().static_bound()),
                            );
                        }
                        (matched, GuardKind::Verified)
                    }
                };
                if let (Some(r), Some(lbl)) = (&rec, ev_label) {
                    r.guard_eval(ctx.lease.now().as_nanos(), lbl, kind, matched);
                }
                if !matched {
                    stats.guard_rejects = stats.guard_rejects.saturating_add(1);
                    if guard.is_verified() {
                        stats.verified_guard_rejects =
                            stats.verified_guard_rejects.saturating_add(1);
                    }
                    outcome.rejected += 1;
                    continue;
                }
            }
            if entry.mode == HandlerMode::Thread {
                ctx.lease.charge(model.thread_spawn + model.context_switch);
            }
            ctx.lease.charge(model.dispatch_handler);
            stats.invocations = stats.invocations.saturating_add(1);
            outcome.invoked += 1;

            let owner_label = rec.as_ref().map(|r| r.intern(&entry.owner));
            let mut span = 0u64;
            if let (Some(r), Some(lbl), Some(owner)) = (&rec, ev_label, owner_label) {
                span = r.handler_enter(ctx.lease.now().as_nanos(), lbl, owner);
            }

            let mark = ctx.lease.mark();
            // Persist stats before calling out: the handler may re-raise.
            self.stats.set(stats);
            (entry.handler)(ctx, arg);
            stats = self.stats.get();

            let mut terminated = false;
            if let HandlerMode::Interrupt {
                time_limit: Some(limit),
            } = entry.mode
            {
                let used = ctx.lease.mark() - mark;
                if used > limit {
                    ctx.lease.rollback_to(mark, limit);
                    stats.terminations = stats.terminations.saturating_add(1);
                    outcome.terminated += 1;
                    terminated = true;
                }
            }
            if let (Some(r), Some(lbl), Some(owner)) = (&rec, ev_label, owner_label) {
                // Exit is stamped after any termination rollback, so the
                // span's duration reflects what was actually charged.
                r.handler_exit(ctx.lease.now().as_nanos(), lbl, owner, span);
                if terminated {
                    r.handler_terminated(ctx.lease.now().as_nanos(), lbl, owner);
                }
            }
        }
        if probed {
            stats.demux_hits = stats.demux_hits.saturating_add(1);
            stats.demux_skipped = stats.demux_skipped.saturating_add(avoided);
            if let (Some(r), Some(lbl)) = (&rec, ev_label) {
                r.count(Scope::Event, lbl, "demux.hits", 1);
                r.count(Scope::Event, lbl, "demux.avoided", avoided);
                // Per-raise distribution of guard evals the index saved.
                r.record_latency(r.intern("demux.avoided"), avoided);
            }
        } else if saw_guard && self.demux_enabled.get() {
            stats.demux_fallbacks = stats.demux_fallbacks.saturating_add(1);
            if let (Some(r), Some(lbl)) = (&rec, ev_label) {
                r.count(Scope::Event, lbl, "demux.fallbacks", 1);
            }
        }
        self.stats.set(stats);
        if let Some(ring) = self.trace.borrow_mut().as_mut() {
            if ring.entries.len() == ring.capacity {
                ring.entries.pop_front();
            }
            ring.entries.push_back(TraceEntry {
                event: table.name.clone(),
                at_ns: ctx.lease.now().as_nanos(),
                invoked: outcome.invoked,
                rejected: outcome.rejected,
            });
        }
        outcome
    }
}

/// A batched raise session opened by [`Dispatcher::batch`].
///
/// Holds the resolved event table for the batch's lifetime. The first
/// [`raise`](EventBatch::raise) charges the fixed `dispatch_raise` (and,
/// on demux-indexed events, the single probe `guard_eval`) exactly like
/// [`Dispatcher::raise`]; subsequent raises skip only those fixed
/// charges. Per-packet guard verdicts, handler invocation order,
/// per-handler costs, and trace records are bit-identical to issuing the
/// same raises individually — batching amortizes lookup cost, it never
/// changes dispatch semantics.
pub struct EventBatch<'d, T> {
    dispatcher: &'d Dispatcher,
    table: Rc<Table<T>>,
    amortized: bool,
}

impl<T: 'static> EventBatch<'_, T> {
    /// Raises the batch's event with `arg`.
    pub fn raise(&mut self, ctx: &mut RaiseCtx<'_>, arg: &T) -> RaiseOutcome {
        let charge_fixed = !self.amortized;
        self.amortized = true;
        self.dispatcher
            .raise_on_table(ctx, &self.table, arg, charge_fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sim::cpu::{CostModel, Cpu};
    use plexus_sim::time::SimTime;

    fn ctx_parts() -> (Engine, Rc<Cpu>) {
        (Engine::new(), Cpu::new(CostModel::alpha_3000_400()))
    }

    #[test]
    fn raise_invokes_matching_handlers_in_install_order() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Test.Event");
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in ["a", "b"] {
            let log = log.clone();
            d.install(
                ev,
                HandlerSpec::new(move |_, arg: &u32| {
                    log.borrow_mut().push(format!("{tag}:{arg}"));
                }),
            );
        }
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        let out = d.raise(&mut ctx, ev, &7);
        assert_eq!(out.invoked, 2);
        assert_eq!(*log.borrow(), vec!["a:7", "b:7"]);
    }

    #[test]
    fn guards_filter_delivery() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Guarded");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::new(move |_, _| h.set(h.get() + 1))
                .guard(Guard::closure(|arg: &u32| arg.is_multiple_of(2))),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        assert_eq!(d.raise(&mut ctx, ev, &4).invoked, 1);
        let out = d.raise(&mut ctx, ev, &5);
        assert_eq!(out.invoked, 0);
        assert_eq!(out.rejected, 1);
        assert_eq!(hits.get(), 1);
        assert_eq!(d.stats().guard_rejects, 1);
    }

    #[test]
    fn dispatch_costs_are_charged() {
        let (mut engine, cpu) = ctx_parts();
        let model = cpu.model().clone();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Costed");
        d.install(
            ev,
            HandlerSpec::new(|_, _| {}).guard(Guard::closure(|_| true)),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &0);
        let expected = model.dispatch_raise
            + model.guard_eval
            + model.thread_spawn
            + model.context_switch
            + model.dispatch_handler;
        assert_eq!(lease.elapsed(), expected);
    }

    #[test]
    fn interrupt_mode_skips_thread_costs() {
        let (mut engine, cpu) = ctx_parts();
        let model = cpu.model().clone();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Fast");
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &u32| {})).interrupt(),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &0);
        assert_eq!(
            lease.elapsed(),
            model.dispatch_raise + model.dispatch_handler
        );
    }

    #[test]
    fn batched_raise_charges_the_fixed_cost_once() {
        let (mut engine, cpu) = ctx_parts();
        let model = cpu.model().clone();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Batched");
        d.install(
            ev,
            HandlerSpec::new(|_, _| {}).guard(Guard::closure(|_| true)),
        );
        let per_item =
            model.guard_eval + model.thread_spawn + model.context_switch + model.dispatch_handler;
        let mut lease = cpu.begin(SimTime::ZERO);
        {
            let mut ctx = RaiseCtx {
                engine: &mut engine,
                lease: &mut lease,
            };
            let mut batch = d.batch(ev);
            batch.raise(&mut ctx, &0);
            // A batch of one costs exactly what a single raise costs.
            assert_eq!(ctx.lease.elapsed(), model.dispatch_raise + per_item);
            batch.raise(&mut ctx, &1);
            batch.raise(&mut ctx, &2);
        }
        // Later items skip only the fixed dispatch_raise charge.
        assert_eq!(lease.elapsed(), model.dispatch_raise + per_item.times(3));
        assert_eq!(d.stats().raises, 3, "each item still counts as a raise");
        assert_eq!(d.stats().invocations, 3);
    }

    #[test]
    fn over_budget_ephemeral_handler_is_terminated() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Limited");
        let limit = SimDuration::from_micros(10);
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|ctx: &mut RaiseCtx, _: &u32| {
                // A runaway handler: tries to burn 1 ms of interrupt time.
                ctx.lease.charge(SimDuration::from_millis(1));
            }))
            .time_limit(limit),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let before = lease.mark();
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        let out = d.raise(&mut ctx, ev, &0);
        assert_eq!(out.terminated, 1);
        assert_eq!(d.stats().terminations, 1);
        // The charge is capped at the allotment, not the attempted 1 ms.
        let model = cpu.model().clone();
        assert_eq!(
            lease.mark() - before,
            model.dispatch_raise + model.dispatch_handler + limit
        );
    }

    #[test]
    fn well_behaved_ephemeral_handler_is_not_terminated() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("WithinBudget");
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|ctx: &mut RaiseCtx, _: &u32| {
                ctx.lease.charge(SimDuration::from_micros(3));
            }))
            .time_limit(SimDuration::from_micros(10)),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        let out = d.raise(&mut ctx, ev, &0);
        assert_eq!(out.terminated, 0);
        assert_eq!(out.invoked, 1);
    }

    #[test]
    fn uninstalled_handler_stops_firing() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Removable");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let id = d.install(ev, HandlerSpec::new(move |_, _| h.set(h.get() + 1)));
        assert_eq!(d.handler_count(ev), 1);
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &0);
        assert!(d.uninstall(ev, id));
        assert!(!d.uninstall(ev, id), "double uninstall must fail");
        assert_eq!(d.handler_count(ev), 0);
        d.raise(&mut ctx, ev, &0);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn handlers_can_uninstall_themselves_during_raise() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("SelfRemoving");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let d2 = d.clone();
        let id_cell: Rc<Cell<Option<HandlerId>>> = Rc::new(Cell::new(None));
        let idc = id_cell.clone();
        let id = d.install(
            ev,
            HandlerSpec::new(move |_, _| {
                h.set(h.get() + 1);
                d2.uninstall(ev, idc.get().expect("id set before raise"));
            }),
        );
        id_cell.set(Some(id));
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &0);
        d.raise(&mut ctx, ev, &0);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn handlers_can_raise_other_events_reentrantly() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let outer = d.define_event::<u32>("Outer");
        let inner = d.define_event::<u32>("Inner");
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let d2 = d.clone();
        d.install(
            outer,
            HandlerSpec::new(move |ctx: &mut RaiseCtx, arg: &u32| {
                l1.borrow_mut().push(format!("outer:{arg}"));
                d2.raise(ctx, inner, &(arg + 1));
            }),
        );
        let l2 = log.clone();
        d.install(
            inner,
            HandlerSpec::new(move |_, arg: &u32| {
                l2.borrow_mut().push(format!("inner:{arg}"));
            }),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, outer, &1);
        assert_eq!(*log.borrow(), vec!["outer:1", "inner:2"]);
    }

    #[test]
    fn ephemerality_is_queryable_by_managers() {
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Queried");
        let eph = d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &u32| {})).interrupt(),
        );
        let thr = d.install(ev, HandlerSpec::new(|_, _: &u32| {}));
        assert_eq!(d.is_ephemeral(ev, eph), Some(true));
        assert_eq!(d.is_ephemeral(ev, thr), Some(false));
        d.uninstall(ev, eph);
        assert_eq!(d.is_ephemeral(ev, eph), None);
    }

    /// A UdpRecv-shaped event argument for verified-guard tests.
    #[derive(Debug)]
    pub(super) struct UdpArg {
        pub(super) dst_port: u64,
    }

    impl plexus_filter::Packet for UdpArg {
        fn kind(&self) -> plexus_filter::EventKind {
            plexus_filter::EventKind::UdpRecv
        }
        fn field(&self, field: plexus_filter::Field) -> Option<u64> {
            match field {
                plexus_filter::Field::UdpDstPort => Some(self.dst_port),
                _ => None,
            }
        }
        fn head(&self) -> &[u8] {
            &[]
        }
    }

    pub(super) fn port_program(port: u64) -> Rc<VerifiedProgram> {
        let prog = plexus_filter::conjunction(
            plexus_filter::EventKind::UdpRecv,
            &[plexus_filter::Test::eq(
                plexus_filter::Operand::Field(plexus_filter::Field::UdpDstPort),
                port,
            )],
            Vec::new(),
        );
        Rc::new(plexus_filter::verify(&prog).expect("builder output verifies"))
    }

    #[test]
    fn verified_guards_filter_interrupt_delivery() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.PacketRecv");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(move |_: &mut RaiseCtx, _: &UdpArg| {
                h.set(h.get() + 1)
            }))
            .guard(Guard::verified(port_program(53)))
            .interrupt(),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        assert_eq!(d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 }).invoked, 1);
        let out = d.raise(&mut ctx, ev, &UdpArg { dst_port: 80 });
        assert_eq!(out.invoked, 0);
        assert_eq!(out.rejected, 1);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn stats_distinguish_verified_from_closure_guard_evals() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Mixed");
        // With the index on, the second raise would skip the verified
        // guard entirely; force the linear scan to pin the historical
        // counting behavior.
        d.set_demux_enabled(false);
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                .guard(Guard::verified(port_program(53)))
                .interrupt(),
        );
        d.install(
            ev,
            HandlerSpec::new(|_, _| {}).guard(Guard::closure(|arg: &UdpArg| arg.dst_port == 53)),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 80 });
        let stats = d.stats();
        assert_eq!(stats.guard_evals, 4, "both guards, both raises");
        assert_eq!(
            stats.verified_guard_evals, 2,
            "one verified guard, both raises"
        );
        assert_eq!(stats.guard_rejects, 2);
        assert_eq!(stats.verified_guard_rejects, 1);
    }

    #[test]
    fn verified_guards_count_as_guarded_in_summaries() {
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Summarized");
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                .guard(Guard::verified(port_program(7)))
                .interrupt(),
        );
        let summary = d.event_summary();
        assert_eq!(summary[0].handlers, 1);
        assert_eq!(summary[0].guarded, 1);
    }

    #[test]
    #[should_panic(expected = "require a verified guard program")]
    fn interrupt_installs_reject_closure_guards() {
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Strict");
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                .guard(Guard::closure(|arg: &UdpArg| arg.dst_port == 53))
                .interrupt(),
        );
    }

    #[test]
    #[should_panic(expected = "certified ephemeral handler")]
    fn interrupt_installs_require_certification() {
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Uncertified");
        d.install(ev, HandlerSpec::new(|_, _: &u32| {}).interrupt());
    }

    /// A straight-line stateful guard whose worst-case bound (9 Count
    /// tests × 8 cycles + Accept = 73) exceeds the default 64-cycle
    /// interrupt budget while staying under the verifier's 96-cycle cap.
    fn expensive_program() -> Rc<VerifiedProgram> {
        let map = plexus_filter::StateMap::new("hits", plexus_filter::MapKind::Counter, 1);
        let tests: Vec<plexus_filter::Test> = (0..9)
            .map(|_| plexus_filter::Test::Count {
                op: plexus_filter::Operand::Field(plexus_filter::Field::UdpDstPort),
                mask: 0,
                map: 0,
            })
            .collect();
        let prog = plexus_filter::conjunction_stateful(
            plexus_filter::EventKind::UdpRecv,
            &tests,
            Vec::new(),
            vec![map],
            8,
        );
        Rc::new(plexus_filter::verify(&prog).expect("verifies"))
    }

    #[test]
    fn interrupt_admission_rejects_over_budget_guards() {
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Admitted");
        let vp = expensive_program();
        let bound = vp.static_bound();
        assert!(bound > DEFAULT_INTERRUPT_CYCLE_BUDGET);
        let err = d
            .try_install(
                ev,
                HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                    .guard(Guard::verified(vp.clone()))
                    .interrupt(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            InstallError::GuardOverBudget {
                bound,
                budget: DEFAULT_INTERRUPT_CYCLE_BUDGET
            }
        );
        assert!(err.to_string().contains("interrupt budget"));
        assert_eq!(d.handler_count(ev), 0, "a refused spec installs nothing");
        // The same guard is fine in thread mode (no interrupt budget)...
        d.install(
            ev,
            HandlerSpec::new(|_, _: &UdpArg| {}).guard(Guard::verified(vp.clone())),
        );
        // ...and admits at interrupt level once the budget covers it.
        d.set_interrupt_cycle_budget(bound);
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                .guard(Guard::verified(vp))
                .interrupt(),
        );
        assert_eq!(d.handler_count(ev), 2);
    }

    #[test]
    #[should_panic(expected = "per-event interrupt budget")]
    fn install_panics_on_over_budget_guard() {
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Strict.Budget");
        d.set_interrupt_cycle_budget(2);
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                .guard(Guard::verified(port_program(53)))
                .interrupt(),
        );
    }

    #[test]
    fn try_install_reports_refusals_without_panicking() {
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Tried");
        assert_eq!(
            d.try_install(ev, HandlerSpec::new(|_, _: &UdpArg| {}).interrupt())
                .unwrap_err(),
            InstallError::UncertifiedInterrupt
        );
        assert_eq!(
            d.try_install(
                ev,
                HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                    .guard(Guard::closure(|arg: &UdpArg| arg.dst_port == 53))
                    .interrupt(),
            )
            .unwrap_err(),
            InstallError::ClosureGuardInterrupt
        );
        assert_eq!(d.handler_count(ev), 0);
        let id = d
            .try_install(
                ev,
                HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                    .guard(Guard::verified(port_program(53)))
                    .interrupt(),
            )
            .expect("within budget");
        assert!(d.uninstall(ev, id));
    }

    #[test]
    fn demux_probes_are_counted_once_per_paid_probe() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Probed");
        d.install(
            ev,
            HandlerSpec::new(|_, _: &UdpArg| {}).guard(Guard::verified(port_program(53))),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 80 });
        assert_eq!(d.stats().demux_probes, 2, "each lone raise pays a probe");
        let mut batch = d.batch(ev);
        batch.raise(&mut ctx, &UdpArg { dst_port: 53 });
        batch.raise(&mut ctx, &UdpArg { dst_port: 53 });
        batch.raise(&mut ctx, &UdpArg { dst_port: 53 });
        let stats = d.stats();
        assert_eq!(stats.demux_probes, 3, "a batch pays the probe once");
        assert_eq!(stats.demux_hits, 5, "every raise still walks the buckets");
    }

    /// Every combination the old shim quartet covered (thread/interrupt ×
    /// default/explicit owner, with guards and time limits) goes through
    /// the one `install` entry point.
    #[test]
    fn unified_install_covers_every_former_shim_shape() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Shimmed");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::new(move |_, _: &UdpArg| h.set(h.get() + 1)),
        );
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::new(move |_, _: &UdpArg| h.set(h.get() + 1)).owner("ext-a"),
        );
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(move |_: &mut RaiseCtx, _: &UdpArg| {
                h.set(h.get() + 1)
            }))
            .guard(Guard::verified(port_program(53)))
            .interrupt(),
        );
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(move |_: &mut RaiseCtx, _: &UdpArg| {
                h.set(h.get() + 1)
            }))
            .interrupt()
            .time_limit(Some(SimDuration::from_micros(10)))
            .owner("ext-b"),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        let out = d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
        assert_eq!(out.invoked, 4, "all four install shapes are live");
        assert_eq!(hits.get(), 4);
    }

    #[test]
    fn demux_skips_provably_rejecting_guards_without_evaluating() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Indexed");
        let hits = Rc::new(RefCell::new(Vec::new()));
        for port in [53u64, 80, 443] {
            let h = hits.clone();
            d.install(
                ev,
                HandlerSpec::new(move |_, _: &UdpArg| h.borrow_mut().push(port))
                    .guard(Guard::verified(port_program(port))),
            );
        }
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        let out = d.raise(&mut ctx, ev, &UdpArg { dst_port: 80 });
        assert_eq!(out.invoked, 1);
        assert_eq!(out.rejected, 2, "skipped entries still count as rejected");
        assert_eq!(*hits.borrow(), vec![80]);
        let stats = d.stats();
        assert_eq!(stats.guard_evals, 1, "only the candidate's guard ran");
        assert_eq!(stats.guard_rejects, 0);
        assert_eq!(stats.demux_hits, 1);
        assert_eq!(stats.demux_skipped, 2);
        assert_eq!(stats.demux_fallbacks, 0);
    }

    #[test]
    fn demux_outcome_matches_linear_scan_exactly() {
        let run = |demux: bool| {
            let (mut engine, cpu) = ctx_parts();
            let d = Dispatcher::new();
            d.set_demux_enabled(demux);
            let ev = d.define_event::<UdpArg>("Udp.Compared");
            let order = Rc::new(RefCell::new(Vec::new()));
            for (tag, port) in [("a", 53u64), ("b", 80), ("c", 53)] {
                let o = order.clone();
                d.install(
                    ev,
                    HandlerSpec::new(move |_, _: &UdpArg| o.borrow_mut().push(tag))
                        .guard(Guard::verified(port_program(port))),
                );
            }
            // One unindexable closure-guard handler mixed in.
            let o = order.clone();
            d.install(
                ev,
                HandlerSpec::new(move |_, _: &UdpArg| o.borrow_mut().push("z"))
                    .guard(Guard::closure(|arg: &UdpArg| arg.dst_port == 53)),
            );
            let mut lease = cpu.begin(SimTime::ZERO);
            let mut ctx = RaiseCtx {
                engine: &mut engine,
                lease: &mut lease,
            };
            let out53 = d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
            let out80 = d.raise(&mut ctx, ev, &UdpArg { dst_port: 80 });
            let seen = order.borrow().clone();
            (out53, out80, seen)
        };
        assert_eq!(run(true), run(false), "same outcomes, same handler order");
    }

    #[test]
    fn demux_probe_replaces_linear_guard_charges() {
        let run = |demux: bool| {
            let (mut engine, cpu) = ctx_parts();
            let d = Dispatcher::new();
            d.set_demux_enabled(demux);
            let ev = d.define_event::<UdpArg>("Udp.Charged");
            for port in 1..=8u64 {
                d.install(
                    ev,
                    HandlerSpec::new(|_, _: &UdpArg| {}).guard(Guard::verified(port_program(port))),
                );
            }
            let mut lease = cpu.begin(SimTime::ZERO);
            let mut ctx = RaiseCtx {
                engine: &mut engine,
                lease: &mut lease,
            };
            d.raise(&mut ctx, ev, &UdpArg { dst_port: 3 });
            lease.elapsed()
        };
        let (_, cpu) = ctx_parts();
        let model = cpu.model().clone();
        let handler = model.thread_spawn + model.context_switch + model.dispatch_handler;
        // Indexed: raise + one probe + one real eval + handler.
        assert_eq!(
            run(true),
            model.dispatch_raise + model.demux_probe + model.guard_eval + handler
        );
        // Linear: raise + eight evals + handler.
        assert_eq!(
            run(false),
            model.dispatch_raise + model.guard_eval * 8 + handler
        );
    }

    #[test]
    fn demux_index_follows_uninstall() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Unindexed");
        let id53 = d.install(
            ev,
            HandlerSpec::new(|_, _: &UdpArg| {}).guard(Guard::verified(port_program(53))),
        );
        d.install(
            ev,
            HandlerSpec::new(|_, _: &UdpArg| {}).guard(Guard::verified(port_program(80))),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        assert_eq!(d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 }).invoked, 1);
        assert!(d.uninstall(ev, id53));
        let out = d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
        assert_eq!(out.invoked, 0);
        assert_eq!(out.rejected, 1, "only the live port-80 entry is skipped");
        assert_eq!(d.stats().demux_hits, 2, "index still probes for port 80");
    }

    #[test]
    fn demux_falls_back_when_nothing_is_indexable() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.Fallback");
        d.install(
            ev,
            HandlerSpec::new(|_, _: &UdpArg| {})
                .guard(Guard::closure(|arg: &UdpArg| arg.dst_port == 53)),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
        let stats = d.stats();
        assert_eq!(stats.demux_hits, 0);
        assert_eq!(stats.demux_fallbacks, 1);
        assert_eq!(stats.guard_evals, 1);
    }

    /// An IpRecv-shaped argument whose transport dst port sits at payload
    /// bytes 2..4, as the real IP receive argument exposes it.
    struct IpArg {
        proto: u64,
        payload: Vec<u8>,
    }

    impl plexus_filter::Packet for IpArg {
        fn kind(&self) -> plexus_filter::EventKind {
            plexus_filter::EventKind::IpRecv
        }
        fn field(&self, field: plexus_filter::Field) -> Option<u64> {
            match field {
                plexus_filter::Field::IpProto => Some(self.proto),
                plexus_filter::Field::IpSrc | plexus_filter::Field::IpDst => Some(0),
                plexus_filter::Field::IpPayloadLen => Some(self.payload.len() as u64),
                _ => None,
            }
        }
        fn head(&self) -> &[u8] {
            &self.payload
        }
    }

    #[test]
    fn demux_checks_not_in_port_sets_live() {
        // The UDP-standard node's guard shape: proto == 17 AND dst port
        // not in the claimed set. Claims must take effect without
        // reinstalling — the index checks the shared set at visit time.
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<IpArg>("Ip.PacketRecv");
        let special = plexus_filter::PortSet::new();
        let prog = plexus_filter::conjunction(
            plexus_filter::EventKind::IpRecv,
            &[
                plexus_filter::Test::eq(
                    plexus_filter::Operand::Field(plexus_filter::Field::IpProto),
                    17,
                ),
                plexus_filter::Test::NotInSet {
                    op: plexus_filter::Operand::Pay {
                        off: 2,
                        width: plexus_filter::Width::W16,
                    },
                    set: 0,
                },
            ],
            vec![special.clone()],
        );
        let vp = Rc::new(plexus_filter::verify(&prog).expect("verifies"));
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        d.install(
            ev,
            HandlerSpec::new(move |_, _: &IpArg| h.set(h.get() + 1)).guard(Guard::verified(vp)),
        );
        let pkt = IpArg {
            proto: 17,
            payload: vec![0, 0, 0, 53, 0, 0, 0, 0], // dst port 53
        };
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        assert_eq!(d.raise(&mut ctx, ev, &pkt).invoked, 1);
        special.insert(53);
        let out = d.raise(&mut ctx, ev, &pkt);
        assert_eq!(out.invoked, 0);
        assert_eq!(out.rejected, 1, "claimed port skipped at visit time");
        assert_eq!(
            d.stats().guard_evals,
            1,
            "the claimed-port rejection never ran the guard"
        );
        special.remove(53);
        assert_eq!(d.raise(&mut ctx, ev, &pkt).invoked, 1);
    }

    #[test]
    fn mid_raise_installs_do_not_poison_the_index() {
        // A handler that installs another indexed handler while the raise
        // is walking the snapshot: the install mutates the demux state,
        // which must not alias the probe's borrow.
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<UdpArg>("Udp.MidRaise");
        let d2 = d.clone();
        let installed = Rc::new(Cell::new(false));
        let flag = installed.clone();
        d.install(
            ev,
            HandlerSpec::new(move |_, _: &UdpArg| {
                if !flag.get() {
                    flag.set(true);
                    d2.install(
                        ev,
                        HandlerSpec::new(|_, _: &UdpArg| {})
                            .guard(Guard::verified(port_program(53))),
                    );
                }
            })
            .guard(Guard::verified(port_program(53))),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        assert_eq!(d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 }).invoked, 1);
        assert_eq!(d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 }).invoked, 2);
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn duplicate_event_names_are_rejected() {
        let d = Dispatcher::new();
        d.define_event::<u32>("Dup");
        d.define_event::<u64>("Dup");
    }

    #[test]
    #[should_panic(expected = "different dispatcher")]
    fn foreign_event_handles_are_rejected() {
        let d1 = Dispatcher::new();
        let d2 = Dispatcher::new();
        let ev = d1.define_event::<u32>("Foreign");
        d2.handler_count(ev);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use plexus_sim::cpu::{CostModel, Cpu};
    use plexus_sim::time::SimTime;

    fn ctx_parts() -> (Engine, Rc<Cpu>) {
        (Engine::new(), Cpu::new(CostModel::alpha_3000_400()))
    }

    #[test]
    fn trace_records_raises_in_order() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let a = d.define_event::<u32>("Alpha");
        let b = d.define_event::<u32>("Beta");
        d.install(
            a,
            HandlerSpec::new(|_, _| {}).guard(Guard::closure(|x: &u32| *x > 0)),
        );
        d.install(b, HandlerSpec::new(|_, _: &u32| {}));
        d.enable_trace(8);
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, a, &5);
        d.raise(&mut ctx, a, &0);
        d.raise(&mut ctx, b, &1);
        let trace = d.trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].event, "Alpha");
        assert_eq!(trace[0].invoked, 1);
        assert_eq!(trace[1].invoked, 0);
        assert_eq!(trace[1].rejected, 1);
        assert_eq!(trace[2].event, "Beta");
        assert!(trace[2].at_ns >= trace[0].at_ns, "monotone timestamps");
    }

    #[test]
    fn trace_ring_is_bounded() {
        let (mut engine, cpu) = ctx_parts();
        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Flood");
        d.install(ev, HandlerSpec::new(|_, _: &u32| {}));
        d.enable_trace(4);
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        for i in 0..10u32 {
            d.raise(&mut ctx, ev, &i);
        }
        assert_eq!(d.trace().len(), 4, "oldest entries fell off");
        d.disable_trace();
        assert!(d.trace().is_empty());
    }
}

#[cfg(test)]
mod recorder_tests {
    use super::*;
    use plexus_sim::cpu::{CostModel, Cpu};
    use plexus_sim::time::SimTime;
    use plexus_trace::{CounterKey, Recorder, TraceEvent};

    #[test]
    fn raise_records_guard_and_handler_events_with_owner() {
        let mut engine = Engine::new();
        let cpu = Cpu::new(CostModel::alpha_3000_400());
        let rec = Recorder::new(64);
        cpu.set_recorder(Some(rec.clone()));

        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Udp.PacketRecv");
        d.install(
            ev,
            HandlerSpec::new(|_, _| {})
                .guard(Guard::closure(|arg: &u32| *arg > 10))
                .owner("rtt-extension"),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &42);
        d.raise(&mut ctx, ev, &3);
        drop(lease);

        let lbl = rec.intern("Udp.PacketRecv");
        let dom = rec.intern("rtt-extension");
        let get = |scope, label, metric| {
            rec.registry().get(CounterKey {
                scope,
                label,
                metric,
            })
        };
        assert_eq!(get(Scope::Event, lbl, "raises"), 2);
        assert_eq!(get(Scope::Guard, lbl, "closure.accepts"), 1);
        assert_eq!(get(Scope::Guard, lbl, "closure.rejects"), 1);
        assert_eq!(get(Scope::Handler, lbl, "invocations"), 1);
        assert_eq!(get(Scope::Domain, dom, "invocations"), 1);

        let events = rec.events();
        let enters: Vec<_> = events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::HandlerEnter { .. }))
            .collect();
        let exits: Vec<_> = events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::HandlerExit { .. }))
            .collect();
        assert_eq!(enters.len(), 1);
        assert_eq!(exits.len(), 1);
        assert!(exits[0].at_ns >= enters[0].at_ns);
    }

    #[test]
    fn termination_is_attributed_to_the_owning_domain() {
        let mut engine = Engine::new();
        let cpu = Cpu::new(CostModel::alpha_3000_400());
        let rec = Recorder::new(64);
        cpu.set_recorder(Some(rec.clone()));

        let d = Dispatcher::new();
        let ev = d.define_event::<u32>("Limited");
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|ctx: &mut RaiseCtx, _: &u32| {
                ctx.lease.charge(SimDuration::from_millis(1));
            }))
            .time_limit(SimDuration::from_micros(10))
            .owner("runaway-ext"),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        let out = d.raise(&mut ctx, ev, &0);
        assert_eq!(out.terminated, 1);
        let dom = rec.intern("runaway-ext");
        assert_eq!(
            rec.registry().get(CounterKey {
                scope: Scope::Domain,
                label: dom,
                metric: "terminations",
            }),
            1
        );
    }

    #[test]
    fn verified_guard_evals_record_the_static_bound_cross_check() {
        use super::tests::{port_program, UdpArg};
        let mut engine = Engine::new();
        let cpu = Cpu::new(CostModel::alpha_3000_400());
        let rec = Recorder::new(64);
        cpu.set_recorder(Some(rec.clone()));

        let d = Dispatcher::new();
        // Force the linear scan so both raises run the guard for real.
        d.set_demux_enabled(false);
        let ev = d.define_event::<UdpArg>("Udp.CrossChecked");
        let vp = port_program(53);
        let bound = u64::from(vp.static_bound());
        d.install(
            ev,
            HandlerSpec::ephemeral(Ephemeral::certify(|_: &mut RaiseCtx, _: &UdpArg| {}))
                .guard(Guard::verified(vp))
                .interrupt(),
        );
        let mut lease = cpu.begin(SimTime::ZERO);
        let mut ctx = RaiseCtx {
            engine: &mut engine,
            lease: &mut lease,
        };
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 53 });
        d.raise(&mut ctx, ev, &UdpArg { dst_port: 80 });
        drop(lease);

        let lbl = rec.intern("Udp.CrossChecked");
        let get = |metric| {
            rec.registry().get(CounterKey {
                scope: Scope::Guard,
                label: lbl,
                metric,
            })
        };
        assert_eq!(get("cycles.bound"), 2 * bound);
        let measured = get("cycles.measured");
        assert!(
            measured >= 2 && measured <= 2 * bound,
            "measured {measured} outside (0, 2×bound]"
        );
        assert_eq!(get("cycles.exceeded"), 0, "the static bound holds");
    }

    #[test]
    fn without_a_recorder_raise_behaves_identically() {
        // Costs and stats must not depend on whether tracing is on.
        let run = |with_recorder: bool| {
            let mut engine = Engine::new();
            let cpu = Cpu::new(CostModel::alpha_3000_400());
            if with_recorder {
                cpu.set_recorder(Some(Recorder::new(16)));
            }
            let d = Dispatcher::new();
            let ev = d.define_event::<u32>("Same");
            d.install(
                ev,
                HandlerSpec::new(|_, _| {}).guard(Guard::closure(|_| true)),
            );
            let mut lease = cpu.begin(SimTime::ZERO);
            let mut ctx = RaiseCtx {
                engine: &mut engine,
                lease: &mut lease,
            };
            d.raise(&mut ctx, ev, &0);
            (lease.elapsed(), d.stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn display_formats_all_counters() {
        let stats = DispatchStats {
            raises: 10,
            invocations: 8,
            guard_evals: 6,
            guard_rejects: 2,
            verified_guard_evals: 4,
            verified_guard_rejects: 1,
            terminations: 3,
            demux_probes: 5,
            demux_hits: 5,
            demux_fallbacks: 2,
            demux_skipped: 9,
        };
        let s = stats.to_string();
        assert_eq!(
            s,
            "raises=10 invocations=8 guard_evals=6 (verified 4) \
             guard_rejects=2 (verified 1) terminations=3 \
             demux_probes=5 demux_hits=5 demux_fallbacks=2 \
             demux_skipped=9"
        );
        // Regression: the pre-demux counters keep their exact wording, so
        // anything parsing the old prefix keeps working.
        assert!(s.starts_with(
            "raises=10 invocations=8 guard_evals=6 (verified 4) \
             guard_rejects=2 (verified 1) terminations=3"
        ));
    }
}
