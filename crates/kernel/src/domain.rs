//! Logical protection domains and safe dynamic linking (§2).
//!
//! SPIN's dynamic linker accepts extensions as partially resolved object
//! files *signed by the Modula-3 compiler* and resolves their imports
//! against a **logical protection domain** — a set of visible interfaces.
//! If an extension references a symbol outside the domain it is linked
//! against, the link fails and the extension is rejected. Domains are
//! first-class: they can be created, copied, combined, and passed around
//! (as capabilities), so different extensions can be given access to
//! different services.
//!
//! Here an [`ExtensionSpec`] declares its imports and exports, carries a
//! [`Signature`], and [`Domain::link`] either produces a [`LinkedExtension`]
//! proof token or a [`LinkError`] naming every unresolved symbol. The
//! Plexus protocol managers in `plexus-core` demand a `LinkedExtension`
//! before they will install anything on an application's behalf, closing
//! the loop between "install" safety and "attach" safety.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Who vouches for an extension's safety.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Signature {
    /// Signed by the typesafe-language compiler: memory safety is
    /// machine-checked. The normal case.
    TypesafeCompiler,
    /// Not typesafe, but admitted on trust — the paper's one exception, the
    /// commercial TCP/IP code (§4.2), "conformant to interfaces and
    /// contains no illegal loads or stores". Linking these requires the
    /// privileged [`Domain::link_trusted`] entry point.
    TrustedVendor,
    /// Unsigned. Always rejected.
    Unsigned,
}

/// A named kernel interface: a set of symbols an extension may import.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interface {
    name: String,
    symbols: BTreeSet<String>,
}

impl Interface {
    /// Creates an interface exporting `symbols`, each exposed as
    /// `"<name>.<symbol>"`.
    pub fn new(name: &str, symbols: &[&str]) -> Rc<Interface> {
        Rc::new(Interface {
            name: name.to_string(),
            symbols: symbols.iter().map(|s| format!("{name}.{s}")).collect(),
        })
    }

    /// The interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True if the fully qualified `symbol` is exported here.
    pub fn exports(&self, symbol: &str) -> bool {
        self.symbols.contains(symbol)
    }

    /// All exported symbols, sorted.
    pub fn symbols(&self) -> impl Iterator<Item = &str> {
        self.symbols.iter().map(String::as_str)
    }
}

/// Identifies a domain instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(u64);

/// A partially resolved extension "object file": what the application hands
/// the kernel to install.
#[derive(Clone, Debug)]
pub struct ExtensionSpec {
    /// The extension's module name.
    pub name: String,
    /// Fully qualified symbols the extension imports.
    pub imports: Vec<String>,
    /// Fully qualified symbols the extension body actually references —
    /// the compiler-reported usage set the lint pass checks the import
    /// list against.
    pub refs: Vec<String>,
    /// Symbols the extension itself defines (for later linking by others).
    pub exports: Vec<String>,
    /// Who signed the object file.
    pub signature: Signature,
}

impl ExtensionSpec {
    /// A compiler-signed (typesafe) extension. The reference set defaults
    /// to the import list (every import used); override with
    /// [`ExtensionSpec::with_refs`] when they differ.
    pub fn typesafe(name: &str, imports: &[&str]) -> ExtensionSpec {
        let imports: Vec<String> = imports.iter().map(|s| s.to_string()).collect();
        ExtensionSpec {
            name: name.to_string(),
            refs: imports.clone(),
            imports,
            exports: Vec::new(),
            signature: Signature::TypesafeCompiler,
        }
    }

    /// Adds exported symbols.
    pub fn with_exports(mut self, exports: &[&str]) -> ExtensionSpec {
        self.exports = exports.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Marks the spec with a different signature.
    pub fn with_signature(mut self, signature: Signature) -> ExtensionSpec {
        self.signature = signature;
        self
    }

    /// Sets the body's reference set (what the extension actually calls),
    /// when it differs from the import list.
    pub fn with_refs(mut self, refs: &[&str]) -> ExtensionSpec {
        self.refs = refs.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// Why a link failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The object file was not signed by the typesafe compiler.
    BadSignature(Signature),
    /// Imports not visible in the target domain. The extension is rejected;
    /// the unresolved symbols are listed for diagnostics.
    Unresolved(Vec<String>),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::BadSignature(sig) => write!(f, "rejected signature {sig:?}"),
            LinkError::Unresolved(syms) => write!(f, "unresolved symbols: {}", syms.join(", ")),
        }
    }
}

impl std::error::Error for LinkError {}

/// Proof that an extension linked successfully against a domain.
///
/// Unforgeable outside this module; protocol managers require one before
/// installing handlers on an application's behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkedExtension {
    name: String,
    domain: DomainId,
}

impl LinkedExtension {
    /// The linked extension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain it was linked against.
    pub fn domain(&self) -> DomainId {
        self.domain
    }
}

/// A logical protection domain: the set of interfaces an extension linked
/// against it may see.
pub struct Domain {
    id: DomainId,
    name: String,
    interfaces: RefCell<BTreeMap<String, Rc<Interface>>>,
    linked: RefCell<BTreeSet<String>>,
}

thread_local! {
    static NEXT_DOMAIN: Cell<u64> = const { Cell::new(1) };
}

impl Domain {
    /// Creates an empty domain.
    pub fn new(name: &str) -> Rc<Domain> {
        let id = NEXT_DOMAIN.with(|n| {
            let v = n.get();
            n.set(v + 1);
            DomainId(v)
        });
        Rc::new(Domain {
            id,
            name: name.to_string(),
            interfaces: RefCell::new(BTreeMap::new()),
            linked: RefCell::new(BTreeSet::new()),
        })
    }

    /// The domain's identity.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Makes `interface` visible in this domain.
    pub fn add_interface(&self, interface: Rc<Interface>) {
        self.interfaces
            .borrow_mut()
            .insert(interface.name().to_string(), interface);
    }

    /// Removes an interface by name; returns whether it was present.
    pub fn remove_interface(&self, name: &str) -> bool {
        self.interfaces.borrow_mut().remove(name).is_some()
    }

    /// Creates a new domain containing the union of this one and `other`
    /// (SPIN's domain combine).
    pub fn combine(&self, other: &Domain, name: &str) -> Rc<Domain> {
        let d = Domain::new(name);
        for iface in self.interfaces.borrow().values() {
            d.add_interface(iface.clone());
        }
        for iface in other.interfaces.borrow().values() {
            d.add_interface(iface.clone());
        }
        d
    }

    /// Creates an independent copy (a snapshot; later changes to either do
    /// not affect the other).
    pub fn copy(&self, name: &str) -> Rc<Domain> {
        let d = Domain::new(name);
        for iface in self.interfaces.borrow().values() {
            d.add_interface(iface.clone());
        }
        d
    }

    /// True if the fully qualified `symbol` resolves in this domain.
    pub fn resolves(&self, symbol: &str) -> bool {
        self.interfaces.borrow().values().any(|i| i.exports(symbol))
    }

    /// Names of extensions currently linked into this domain.
    pub fn linked_extensions(&self) -> Vec<String> {
        self.linked.borrow().iter().cloned().collect()
    }

    /// Links a compiler-signed extension against this domain.
    ///
    /// Fails with [`LinkError::BadSignature`] unless the spec is signed by
    /// the typesafe compiler, or [`LinkError::Unresolved`] if any import is
    /// not visible here.
    pub fn link(&self, spec: &ExtensionSpec) -> Result<LinkedExtension, LinkError> {
        if spec.signature != Signature::TypesafeCompiler {
            return Err(LinkError::BadSignature(spec.signature));
        }
        self.link_resolving(spec)
    }

    /// Privileged variant admitting [`Signature::TrustedVendor`] code — the
    /// paper's commercial TCP/IP exception. Still rejects unsigned specs
    /// and still requires every import to resolve.
    pub fn link_trusted(&self, spec: &ExtensionSpec) -> Result<LinkedExtension, LinkError> {
        if spec.signature == Signature::Unsigned {
            return Err(LinkError::BadSignature(spec.signature));
        }
        self.link_resolving(spec)
    }

    /// Lints `spec` against this domain's interfaces, reporting **every**
    /// issue at once: unresolved imports, duplicate imports, imports the
    /// body never references (dead capabilities), body references outside
    /// the import closure, self-imports, export collisions, and missing
    /// signatures. Unlike [`Domain::link`] this changes nothing — it is
    /// the diagnostic pass (the same one behind the `plexus-verify` tool),
    /// meant to run before a link or in tooling.
    pub fn check_spec(&self, spec: &ExtensionSpec) -> plexus_filter::spec::SpecReport {
        let mut table = plexus_filter::spec::InterfaceTable::new();
        for iface in self.interfaces.borrow().values() {
            table.insert(
                iface.name().to_string(),
                iface.symbols().map(str::to_string),
            );
        }
        let info = plexus_filter::spec::SpecInfo {
            name: spec.name.clone(),
            signature: match spec.signature {
                Signature::TypesafeCompiler => plexus_filter::spec::SpecSignature::TypesafeCompiler,
                Signature::TrustedVendor => plexus_filter::spec::SpecSignature::TrustedVendor,
                Signature::Unsigned => plexus_filter::spec::SpecSignature::Unsigned,
            },
            imports: spec.imports.clone(),
            refs: spec.refs.clone(),
            exports: spec.exports.clone(),
        };
        plexus_filter::spec::analyze(&table, &info)
    }

    fn link_resolving(&self, spec: &ExtensionSpec) -> Result<LinkedExtension, LinkError> {
        let unresolved: Vec<String> = spec
            .imports
            .iter()
            .filter(|sym| !self.resolves(sym))
            .cloned()
            .collect();
        if !unresolved.is_empty() {
            return Err(LinkError::Unresolved(unresolved));
        }
        self.linked.borrow_mut().insert(spec.name.clone());
        if !spec.exports.is_empty() {
            // The extension's own exports become a new interface visible in
            // this domain, so later extensions can link against it.
            let iface = Rc::new(Interface {
                name: spec.name.clone(),
                symbols: spec.exports.iter().cloned().collect(),
            });
            self.add_interface(iface);
        }
        Ok(LinkedExtension {
            name: spec.name.clone(),
            domain: self.id,
        })
    }

    /// Unlinks an extension (runtime adaptation: extensions "come and go
    /// with their corresponding applications"). Removes its exported
    /// interface. Returns whether it was linked.
    pub fn unlink(&self, name: &str) -> bool {
        let was = self.linked.borrow_mut().remove(name);
        if was {
            self.remove_interface(name);
        }
        was
    }
}

/// The kernel nameserver: a registry applications consult to obtain domain
/// capabilities by path.
#[derive(Default)]
pub struct Nameserver {
    entries: RefCell<BTreeMap<String, Rc<Domain>>>,
}

impl Nameserver {
    /// Creates an empty nameserver.
    pub fn new() -> Nameserver {
        Nameserver::default()
    }

    /// Registers `domain` at `path`, replacing any previous registration.
    pub fn register(&self, path: &str, domain: Rc<Domain>) {
        self.entries.borrow_mut().insert(path.to_string(), domain);
    }

    /// Looks up the domain registered at `path`.
    pub fn lookup(&self, path: &str) -> Option<Rc<Domain>> {
        self.entries.borrow().get(path).cloned()
    }

    /// All registered paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.entries.borrow().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbuf_iface() -> Rc<Interface> {
        Interface::new("Mbuf", &["Alloc", "Free"])
    }

    fn ether_iface() -> Rc<Interface> {
        Interface::new("Ethernet", &["PacketRecv", "PacketSend", "InstallHandler"])
    }

    #[test]
    fn link_succeeds_when_all_imports_resolve() {
        let d = Domain::new("net-extensions");
        d.add_interface(mbuf_iface());
        d.add_interface(ether_iface());
        let spec =
            ExtensionSpec::typesafe("ActiveMessages", &["Mbuf.Alloc", "Ethernet.InstallHandler"]);
        let linked = d.link(&spec).expect("link should succeed");
        assert_eq!(linked.name(), "ActiveMessages");
        assert_eq!(linked.domain(), d.id());
        assert_eq!(d.linked_extensions(), vec!["ActiveMessages"]);
    }

    #[test]
    fn link_fails_listing_every_unresolved_symbol() {
        let d = Domain::new("restricted");
        d.add_interface(mbuf_iface());
        let spec = ExtensionSpec::typesafe(
            "Snooper",
            &["Mbuf.Alloc", "Ethernet.PacketRecv", "VM.MapKernel"],
        );
        match d.link(&spec) {
            Err(LinkError::Unresolved(syms)) => {
                assert_eq!(syms, vec!["Ethernet.PacketRecv", "VM.MapKernel"]);
            }
            other => panic!("expected unresolved-symbol failure, got {other:?}"),
        }
        assert!(d.linked_extensions().is_empty());
    }

    #[test]
    fn unsigned_extensions_are_rejected() {
        let d = Domain::new("any");
        let spec = ExtensionSpec::typesafe("Rogue", &[]).with_signature(Signature::Unsigned);
        assert_eq!(
            d.link(&spec),
            Err(LinkError::BadSignature(Signature::Unsigned))
        );
    }

    #[test]
    fn vendor_code_needs_the_trusted_entry_point() {
        let d = Domain::new("kernel-full");
        let spec =
            ExtensionSpec::typesafe("VendorTcp", &[]).with_signature(Signature::TrustedVendor);
        assert!(
            d.link(&spec).is_err(),
            "normal link must reject vendor code"
        );
        assert!(d.link_trusted(&spec).is_ok());
        let unsigned = spec.clone().with_signature(Signature::Unsigned);
        assert!(d.link_trusted(&unsigned).is_err());
    }

    #[test]
    fn combine_unions_interfaces() {
        let a = Domain::new("a");
        a.add_interface(mbuf_iface());
        let b = Domain::new("b");
        b.add_interface(ether_iface());
        let both = a.combine(&b, "a+b");
        assert!(both.resolves("Mbuf.Alloc"));
        assert!(both.resolves("Ethernet.PacketRecv"));
        assert!(!a.resolves("Ethernet.PacketRecv"));
    }

    #[test]
    fn copy_is_a_snapshot() {
        let a = Domain::new("a");
        a.add_interface(mbuf_iface());
        let snap = a.copy("snap");
        a.add_interface(ether_iface());
        assert!(!snap.resolves("Ethernet.PacketRecv"));
        assert!(snap.resolves("Mbuf.Alloc"));
    }

    #[test]
    fn exports_become_linkable_and_unlink_removes_them() {
        let d = Domain::new("apps");
        d.add_interface(mbuf_iface());
        let provider = ExtensionSpec::typesafe("VideoProto", &["Mbuf.Alloc"])
            .with_exports(&["VideoProto.Send"]);
        d.link(&provider).expect("provider links");
        let consumer = ExtensionSpec::typesafe("VideoViewer", &["VideoProto.Send"]);
        assert!(d.link(&consumer).is_ok());
        assert!(d.unlink("VideoProto"));
        assert!(!d.unlink("VideoProto"), "double unlink must fail");
        let late = ExtensionSpec::typesafe("LateViewer", &["VideoProto.Send"]);
        assert!(d.link(&late).is_err(), "exports must vanish on unlink");
    }

    #[test]
    fn check_spec_reports_every_issue_without_linking() {
        use plexus_filter::spec::SpecIssue;

        let d = Domain::new("lintable");
        d.add_interface(mbuf_iface());
        d.add_interface(ether_iface());
        let spec = ExtensionSpec::typesafe(
            "Leaky",
            &[
                "Mbuf.Alloc",
                "Mbuf.Alloc",
                "Ethernet.PacketRecv",
                "VM.MapKernel",
            ],
        )
        .with_refs(&["Ethernet.PacketRecv", "Ethernet.PacketSend"]);

        let report = d.check_spec(&spec);
        let has = |pred: fn(&SpecIssue) -> bool| report.issues.iter().any(pred);
        assert!(has(|i| matches!(
            i,
            SpecIssue::DuplicateImport { symbol } if symbol == "Mbuf.Alloc"
        )));
        assert!(has(|i| matches!(
            i,
            SpecIssue::UnresolvedImport { symbol } if symbol == "VM.MapKernel"
        )));
        assert!(has(|i| matches!(
            i,
            SpecIssue::UnusedImport { symbol } if symbol == "Mbuf.Alloc"
        )));
        assert!(has(|i| matches!(
            i,
            SpecIssue::UndeclaredReference { symbol } if symbol == "Ethernet.PacketSend"
        )));
        assert!(report.issues.len() >= 5, "all issues reported: {report}");
        assert!(d.linked_extensions().is_empty(), "check_spec must not link");

        // A well-formed spec is clean.
        let good = ExtensionSpec::typesafe("Tidy", &["Mbuf.Alloc"]);
        assert!(d.check_spec(&good).is_clean());
    }

    #[test]
    fn nameserver_round_trips_domains() {
        let ns = Nameserver::new();
        let d = Domain::new("public-net");
        ns.register("/svc/net", d.clone());
        let found = ns.lookup("/svc/net").expect("registered path resolves");
        assert_eq!(found.id(), d.id());
        assert!(ns.lookup("/svc/vm").is_none());
        assert_eq!(ns.paths(), vec!["/svc/net"]);
    }
}
