//! The `EPHEMERAL` discipline (§3.3).
//!
//! In SPIN, a procedure labeled `EPHEMERAL` may be asynchronously terminated
//! without damaging important state, and the Modula-3 compiler enforces that
//! ephemeral procedures call only other ephemeral procedures. Protocol
//! managers query a handler's ephemerality before letting it run at
//! interrupt level, and may attach a time limit after which the dispatcher
//! terminates it.
//!
//! Rust has no `EPHEMERAL` keyword, so we mirror the *structure* of the
//! guarantee with a certification type: an [`Ephemeral<F>`] wraps a value
//! that has been asserted interrupt-safe. The only ways to obtain one are
//!
//! * [`Ephemeral::certify`] — the programmer's explicit assertion, playing
//!   the role of writing `EPHEMERAL` on the declaration, and
//! * the composition helpers ([`Ephemeral::map_with`], [`seq`]) — which,
//!   like the compiler rule, only build ephemeral code out of ephemeral
//!   pieces.
//!
//! Managers require `Ephemeral<…>` in their interrupt-level install APIs,
//! so a plain closure simply does not typecheck there — the moral
//! equivalent of Figure 3's `IllegalHandler` failing to compile.

/// A value certified safe to run (and to be terminated) in an interrupt
/// context: it returns quickly, never blocks, and tolerates premature
/// termination without violating data-structure invariants.
#[derive(Clone, Copy, Debug)]
pub struct Ephemeral<F>(F);

impl<F> Ephemeral<F> {
    /// Certifies `f` as ephemeral.
    ///
    /// This is the programmer's assertion, standing in for SPIN's
    /// compiler-checked `EPHEMERAL` label: `f` must not block, must return
    /// quickly, and must keep shared state consistent even if terminated at
    /// any point.
    pub fn certify(f: F) -> Ephemeral<F> {
        Ephemeral(f)
    }

    /// Borrows the certified value.
    pub fn get(&self) -> &F {
        &self.0
    }

    /// Unwraps the certified value. The ephemerality evidence is lost, so
    /// the result can no longer be installed at interrupt level.
    pub fn into_inner(self) -> F {
        self.0
    }

    /// Composes with another *ephemeral* function, yielding an ephemeral
    /// result. Mirrors the compiler rule that ephemeral procedures may call
    /// only ephemeral procedures: there is no variant of this method that
    /// accepts an uncertified closure.
    pub fn map_with<G, H>(self, other: Ephemeral<G>, combine: H) -> Ephemeral<(F, G, H)> {
        Ephemeral((self.0, other.0, combine))
    }
}

/// Sequences two certified handlers over the same argument into one
/// certified handler: `seq(f, g)` runs `f` then `g`.
pub fn seq<A, F, G>(f: Ephemeral<F>, g: Ephemeral<G>) -> Ephemeral<impl Fn(&A)>
where
    F: Fn(&A),
    G: Fn(&A),
{
    let (f, g) = (f.0, g.0);
    Ephemeral(move |a: &A| {
        f(a);
        g(a);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn certify_and_call() {
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        let eph = Ephemeral::certify(move |n: &i32| h.set(h.get() + n));
        (eph.get())(&5);
        assert_eq!(hits.get(), 5);
    }

    #[test]
    fn seq_composes_in_order() {
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let a = Ephemeral::certify(move |x: &i32| l1.borrow_mut().push(*x));
        let b = Ephemeral::certify(move |x: &i32| l2.borrow_mut().push(x * 10));
        let both = seq(a, b);
        (both.get())(&3);
        assert_eq!(*log.borrow(), vec![3, 30]);
    }

    #[test]
    fn into_inner_discards_certification() {
        let eph = Ephemeral::certify(|x: &i32| *x);
        let plain = eph.into_inner();
        assert_eq!(plain(&7), 7);
    }
}
