//! Simulated kernel threads and wait queues.
//!
//! SPIN delivers most events on "special lightweight kernel threads";
//! Figure 5's thread bars pay a thread creation plus a context switch per
//! event. The monolithic baseline additionally blocks *user processes* in
//! the socket layer and pays process wakeup + context switch on the receive
//! path. Both cost patterns live here:
//!
//! * [`Scheduler::spawn`] — run a closure "in a new thread": charge the
//!   spawner for thread creation, then run the body under its own CPU lease
//!   after a context switch.
//! * [`WaitQueue`] — continuation-passing blocking: a blocked activity
//!   parks a continuation; `wakeup` charges wakeup + context-switch costs
//!   and schedules the continuation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use plexus_sim::engine::Engine;
use plexus_sim::time::SimTime;
use plexus_sim::{Cpu, CpuLease};

/// Spawns simulated kernel threads on one machine's CPU.
pub struct Scheduler {
    cpu: Rc<Cpu>,
}

impl Scheduler {
    /// Creates a scheduler for `cpu`.
    pub fn new(cpu: Rc<Cpu>) -> Scheduler {
        Scheduler { cpu }
    }

    /// The CPU this scheduler runs threads on.
    pub fn cpu(&self) -> &Rc<Cpu> {
        &self.cpu
    }

    /// Charges the caller for thread creation and schedules `body` to run
    /// in its own context (after a context switch) at or after `ready_at`.
    pub fn spawn<F>(&self, engine: &mut Engine, caller: &mut CpuLease, body: F)
    where
        F: FnOnce(&mut Engine, &mut CpuLease) + 'static,
    {
        let model = caller.model().clone();
        caller.charge(model.thread_spawn);
        let ready_at = caller.now();
        let cpu = self.cpu.clone();
        engine.schedule_at(ready_at, move |eng| {
            let mut lease = cpu.begin(eng.now());
            lease.charge(model.context_switch);
            body(eng, &mut lease);
        });
    }

    /// Schedules `body` to run at `at` under a fresh CPU lease, with no
    /// spawn cost (for timer-driven activities like the video frame clock).
    pub fn at<F>(&self, engine: &mut Engine, at: SimTime, body: F)
    where
        F: FnOnce(&mut Engine, &mut CpuLease) + 'static,
    {
        let cpu = self.cpu.clone();
        engine.schedule_at(at, move |eng| {
            let mut lease = cpu.begin(eng.now());
            body(eng, &mut lease);
        });
    }
}

/// Continuation passed to [`WaitQueue::block`], resumed with a value.
pub type Continuation<T> = Box<dyn FnOnce(&mut Engine, &mut CpuLease, T)>;

/// A queue of blocked activities, FIFO.
pub struct WaitQueue<T> {
    cpu: Rc<Cpu>,
    waiters: RefCell<VecDeque<Continuation<T>>>,
}

impl<T: 'static> WaitQueue<T> {
    /// Creates an empty wait queue whose wakeups run on `cpu`.
    pub fn new(cpu: Rc<Cpu>) -> Rc<WaitQueue<T>> {
        Rc::new(WaitQueue {
            cpu,
            waiters: RefCell::new(VecDeque::new()),
        })
    }

    /// Number of blocked waiters.
    pub fn len(&self) -> usize {
        self.waiters.borrow().len()
    }

    /// True if nothing is blocked here.
    pub fn is_empty(&self) -> bool {
        self.waiters.borrow().is_empty()
    }

    /// Parks `k` until a wakeup delivers a value to it.
    pub fn block<F>(&self, k: F)
    where
        F: FnOnce(&mut Engine, &mut CpuLease, T) + 'static,
    {
        self.waiters.borrow_mut().push_back(Box::new(k));
    }

    /// Wakes the oldest waiter with `value`, charging the waker for the
    /// wakeup and the woken activity for its context switch. Returns `false`
    /// (and drops nothing) if no one is blocked — callers then typically
    /// buffer the value instead.
    pub fn wakeup(&self, engine: &mut Engine, waker: &mut CpuLease, value: T) -> bool {
        let Some(k) = self.waiters.borrow_mut().pop_front() else {
            return false;
        };
        let model = waker.model().clone();
        waker.charge(model.process_wakeup);
        let ready_at = waker.now();
        let cpu = self.cpu.clone();
        engine.schedule_at(ready_at, move |eng| {
            let mut lease = cpu.begin(eng.now());
            lease.charge(model.context_switch);
            k(eng, &mut lease, value);
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sim::cpu::CostModel;
    use plexus_sim::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn spawn_charges_creation_and_switch() {
        let model = CostModel::alpha_3000_400();
        let cpu = Cpu::new(model.clone());
        let sched = Scheduler::new(cpu.clone());
        let mut engine = Engine::new();
        let ran_at = Rc::new(Cell::new(0u64));
        let r = ran_at.clone();
        {
            let mut caller = cpu.begin(SimTime::ZERO);
            sched.spawn(&mut engine, &mut caller, move |eng, lease| {
                r.set(eng.now().as_nanos());
                lease.charge(SimDuration::from_micros(1));
            });
        }
        engine.run();
        // The body starts after spawn cost, then charges a context switch.
        assert_eq!(ran_at.get(), model.thread_spawn.as_nanos());
        assert_eq!(
            cpu.busy(),
            model.thread_spawn + model.context_switch + SimDuration::from_micros(1)
        );
    }

    #[test]
    fn wait_queue_resumes_in_fifo_order() {
        let cpu = Cpu::new(CostModel::alpha_3000_400());
        let wq = WaitQueue::<u32>::new(cpu.clone());
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in [1u32, 2] {
            let log = log.clone();
            wq.block(move |_, _, v| log.borrow_mut().push((tag, v)));
        }
        assert_eq!(wq.len(), 2);
        let mut engine = Engine::new();
        {
            let mut waker = cpu.begin(SimTime::ZERO);
            assert!(wq.wakeup(&mut engine, &mut waker, 10));
            assert!(wq.wakeup(&mut engine, &mut waker, 20));
            assert!(!wq.wakeup(&mut engine, &mut waker, 30));
        }
        engine.run();
        assert_eq!(*log.borrow(), vec![(1, 10), (2, 20)]);
        assert!(wq.is_empty());
    }

    #[test]
    fn wakeup_charges_both_sides() {
        let model = CostModel::alpha_3000_400();
        let cpu = Cpu::new(model.clone());
        let wq = WaitQueue::<()>::new(cpu.clone());
        wq.block(|_, _, ()| {});
        let mut engine = Engine::new();
        {
            let mut waker = cpu.begin(SimTime::ZERO);
            wq.wakeup(&mut engine, &mut waker, ());
        }
        engine.run();
        assert_eq!(cpu.busy(), model.process_wakeup + model.context_switch);
    }
}

#[cfg(test)]
mod at_tests {
    use super::*;
    use plexus_sim::cpu::CostModel;
    use plexus_sim::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn at_runs_the_body_under_a_fresh_lease_without_spawn_cost() {
        let model = CostModel::alpha_3000_400();
        let cpu = Cpu::new(model.clone());
        let sched = Scheduler::new(cpu.clone());
        assert!(Rc::ptr_eq(sched.cpu(), &cpu));
        let mut engine = Engine::new();
        let ran = Rc::new(Cell::new(false));
        let r = ran.clone();
        sched.at(&mut engine, SimTime::from_micros(40), move |eng, lease| {
            assert_eq!(eng.now().as_micros(), 40);
            lease.charge(SimDuration::from_micros(2));
            r.set(true);
        });
        engine.run();
        assert!(ran.get());
        // Only the body's own work is charged — no spawn, no switch.
        assert_eq!(cpu.busy(), SimDuration::from_micros(2));
    }
}
