//! Typesafe, revocable capabilities.
//!
//! SPIN references kernel resources (domains, endpoints, events) through
//! typesafe pointers — capabilities — that can be created, copied, and
//! passed around. Rust references already give us unforgeability; what this
//! module adds is **revocation**, which Plexus needs for runtime
//! adaptation: when an application and its extension go away, the kernel
//! revokes the capabilities it handed out, and any copies an extension
//! squirreled away stop working.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A revocable handle to a kernel resource of type `T`.
///
/// Cloning shares the same revocation root: revoking any clone revokes all.
pub struct Cap<T> {
    slot: Rc<RefCell<Option<Rc<T>>>>,
}

impl<T> Clone for Cap<T> {
    fn clone(&self) -> Self {
        Cap {
            slot: self.slot.clone(),
        }
    }
}

/// Error returned when using a revoked capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Revoked;

impl fmt::Display for Revoked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "capability has been revoked")
    }
}

impl std::error::Error for Revoked {}

impl<T> Cap<T> {
    /// Wraps `resource` in a fresh capability.
    pub fn new(resource: Rc<T>) -> Cap<T> {
        Cap {
            slot: Rc::new(RefCell::new(Some(resource))),
        }
    }

    /// Dereferences the capability.
    pub fn get(&self) -> Result<Rc<T>, Revoked> {
        self.slot.borrow().clone().ok_or(Revoked)
    }

    /// True if the capability is still live.
    pub fn is_live(&self) -> bool {
        self.slot.borrow().is_some()
    }

    /// Revokes this capability and every clone of it. Idempotent.
    pub fn revoke(&self) {
        *self.slot.borrow_mut() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_dereferences_until_revoked() {
        let cap = Cap::new(Rc::new(41));
        assert_eq!(*cap.get().unwrap(), 41);
        assert!(cap.is_live());
        cap.revoke();
        assert_eq!(cap.get(), Err(Revoked));
        assert!(!cap.is_live());
        cap.revoke(); // Idempotent.
    }

    #[test]
    fn revoking_one_clone_revokes_all() {
        let cap = Cap::new(Rc::new("endpoint"));
        let stashed = cap.clone();
        cap.revoke();
        assert_eq!(stashed.get(), Err(Revoked));
    }
}
