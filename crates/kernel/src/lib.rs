//! # plexus-kernel — the SPIN substrate
//!
//! Plexus runs in the context of the SPIN extensible operating system
//! (§2). This crate reproduces the SPIN services Plexus depends on:
//!
//! * [`dispatcher`] — the dynamic event dispatcher: events, guards,
//!   handlers, interrupt-level vs. thread delivery, termination of
//!   over-budget ephemeral handlers.
//! * [`domain`] — logical protection domains, compiler-signed extension
//!   specs, and safe dynamic linking/unlinking (the "install" problem).
//! * [`ephemeral`] — the `EPHEMERAL` certification discipline (§3.3).
//! * [`capability`] — typesafe, revocable handles to kernel resources.
//! * [`thread`] — simulated kernel threads and wait queues.
//! * [`vm`] — address spaces and user/kernel boundary costs (used by the
//!   monolithic baseline).
//! * [`view`](mod@view) — the `VIEW` operator: safe zero-copy casting of packet
//!   bytes to typed headers (§3.2).
//!
//! The typesafe language itself is played by Rust: extensions are ordinary
//! Rust values compiled against narrow interfaces, read-only packet access
//! is `&Mbuf` (§3.4), and the `EPHEMERAL`/`VIEW` extensions are modeled by
//! the corresponding modules here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The verified guard IR and static verifier (re-exported so dependents
/// name one crate for events, guards, and verification).
pub use plexus_filter as filter;

pub mod capability;
pub mod dispatcher;
pub mod domain;
pub mod ephemeral;
pub mod thread;
pub mod view;
pub mod vm;

pub use capability::Cap;
pub use dispatcher::{
    Dispatcher, Event, EventSummary, Guard, HandlerId, HandlerMode, InstallError, RaiseCtx,
    TraceEntry, VerifiedGuard, DEFAULT_INTERRUPT_CYCLE_BUDGET,
};
pub use domain::{Domain, ExtensionSpec, Interface, LinkError, LinkedExtension, Nameserver};
pub use ephemeral::Ephemeral;
pub use thread::{Scheduler, WaitQueue};
pub use view::{view, view_at, WireView};
pub use vm::AddressSpace;
