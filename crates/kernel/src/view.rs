//! The `VIEW` operator (§3.2).
//!
//! Guards and handlers must cast a packet — an array of bytes — into more
//! specific types ("an Ethernet header followed by an IP header…") without
//! copying and without unsafe loopholes. The paper extends Modula-3 with
//! `VIEW(a, T)`, which reinterprets a byte array's bit pattern as a
//! restricted type `T` (scalars and aggregates of scalars).
//!
//! The Rust analogue: a [`WireView`] is a zero-copy wrapper over a borrowed
//! byte slice with typed, endian-correct accessors. [`view`] performs the
//! checked cast: it fails (returns `None`) when the slice is too short, and
//! succeeds without touching the bytes otherwise. No `unsafe` anywhere —
//! exactly the guarantee `VIEW` gives Modula-3 code.
//!
//! Header types in `plexus-net` implement `WireView`; the helpers here
//! ([`be16`], [`be32`], [`put_be16`], …) keep those implementations free of
//! index arithmetic mistakes by panicking loudly in tests.

/// A zero-copy typed view over a byte slice.
///
/// Implementors wrap `&'a [u8]` and expose getters; `WIRE_SIZE` is the
/// minimum number of bytes the view needs. Construction goes through
/// [`view`], which enforces the length check, so getters may assume
/// `WIRE_SIZE` bytes are present.
pub trait WireView<'a>: Sized {
    /// Minimum bytes this view requires.
    const WIRE_SIZE: usize;

    /// Wraps the slice. Called only with `bytes.len() >= WIRE_SIZE`.
    fn from_prefix(bytes: &'a [u8]) -> Self;
}

/// `VIEW(bytes, T)`: reinterpret the front of `bytes` as a `T`, without
/// copying. Returns `None` if the slice is shorter than `T::WIRE_SIZE`.
///
/// # Examples
///
/// ```
/// use plexus_kernel::view::{view, WireView};
///
/// struct Pair<'a>(&'a [u8]);
/// impl<'a> WireView<'a> for Pair<'a> {
///     const WIRE_SIZE: usize = 2;
///     fn from_prefix(bytes: &'a [u8]) -> Self { Pair(bytes) }
/// }
///
/// let data = [7u8, 9, 99];
/// let p: Pair = view(&data).unwrap();
/// assert_eq!(p.0[0], 7);
/// assert!(view::<Pair>(&data[..1]).is_none());
/// ```
pub fn view<'a, T: WireView<'a>>(bytes: &'a [u8]) -> Option<T> {
    if bytes.len() >= T::WIRE_SIZE {
        Some(T::from_prefix(bytes))
    } else {
        None
    }
}

/// Views the slice starting at `offset` — `VIEW` after skipping an outer
/// header.
pub fn view_at<'a, T: WireView<'a>>(bytes: &'a [u8], offset: usize) -> Option<T> {
    bytes.get(offset..).and_then(view)
}

/// Reads a network-order (big-endian) `u16` at `off`.
pub fn be16(bytes: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([bytes[off], bytes[off + 1]])
}

/// Reads a network-order `u32` at `off`.
pub fn be32(bytes: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Writes a network-order `u16` at `off`.
pub fn put_be16(bytes: &mut [u8], off: usize, val: u16) {
    bytes[off..off + 2].copy_from_slice(&val.to_be_bytes());
}

/// Writes a network-order `u32` at `off`.
pub fn put_be32(bytes: &mut [u8], off: usize, val: u32) {
    bytes[off..off + 4].copy_from_slice(&val.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy header: 2-byte type, 4-byte id.
    struct Toy<'a>(&'a [u8]);

    impl<'a> WireView<'a> for Toy<'a> {
        const WIRE_SIZE: usize = 6;
        fn from_prefix(bytes: &'a [u8]) -> Self {
            Toy(bytes)
        }
    }

    impl Toy<'_> {
        fn kind(&self) -> u16 {
            be16(self.0, 0)
        }
        fn id(&self) -> u32 {
            be32(self.0, 2)
        }
    }

    #[test]
    fn view_reads_network_order_without_copying() {
        let wire = [0x08, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0xFF];
        let toy: Toy = view(&wire).expect("long enough");
        assert_eq!(toy.kind(), 0x0800);
        assert_eq!(toy.id(), 0xDEAD_BEEF);
        // Zero-copy: the view borrows the original storage.
        assert!(std::ptr::eq(toy.0.as_ptr(), wire.as_ptr()));
    }

    #[test]
    fn short_slices_are_rejected_not_panicked() {
        let wire = [1u8, 2, 3];
        assert!(view::<Toy>(&wire).is_none());
        assert!(view::<Toy>(&[]).is_none());
    }

    #[test]
    fn view_at_skips_outer_headers() {
        let mut wire = vec![0u8; 10];
        wire[4..6].copy_from_slice(&0x1234u16.to_be_bytes());
        let toy: Toy = view_at(&wire, 4).expect("6 bytes remain");
        assert_eq!(toy.kind(), 0x1234);
        assert!(view_at::<Toy>(&wire, 5).is_none());
        assert!(view_at::<Toy>(&wire, 64).is_none(), "offset past end");
    }

    #[test]
    fn put_and_get_round_trip() {
        let mut buf = [0u8; 8];
        put_be16(&mut buf, 1, 0xABCD);
        put_be32(&mut buf, 3, 0x01020304);
        assert_eq!(be16(&buf, 1), 0xABCD);
        assert_eq!(be32(&buf, 3), 0x01020304);
    }
}
