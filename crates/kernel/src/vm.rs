//! Address spaces and the user/kernel boundary.
//!
//! SPIN uses its virtual memory service to build address spaces so ordinary
//! applications can run in user space; *extensions* avoid the boundary
//! entirely by running in the kernel. The whole point of Figure 5 is the
//! cost of that boundary in the monolithic baseline: every packet sent from
//! user space pays a trap and a copyin, and the receive side pays a copyout
//! plus process scheduling. This module charges those costs.

use std::cell::Cell;
use std::rc::Rc;

use plexus_sim::CpuLease;
use plexus_trace::CrossDir;

/// A user address space.
pub struct AddressSpace {
    name: String,
    traps: Cell<u64>,
    bytes_copied_in: Cell<u64>,
    bytes_copied_out: Cell<u64>,
}

impl AddressSpace {
    /// Creates an address space for a user program.
    pub fn new(name: &str) -> Rc<AddressSpace> {
        Rc::new(AddressSpace {
            name: name.to_string(),
            traps: Cell::new(0),
            bytes_copied_in: Cell::new(0),
            bytes_copied_out: Cell::new(0),
        })
    }

    /// The address space's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// System calls issued from this space.
    pub fn traps(&self) -> u64 {
        self.traps.get()
    }

    /// Bytes copied user → kernel.
    pub fn bytes_copied_in(&self) -> u64 {
        self.bytes_copied_in.get()
    }

    /// Bytes copied kernel → user.
    pub fn bytes_copied_out(&self) -> u64 {
        self.bytes_copied_out.get()
    }

    /// Charges a system-call trap (entry plus exit).
    pub fn trap(&self, lease: &mut CpuLease) {
        self.traps.set(self.traps.get() + 1);
        let cost = lease.model().syscall;
        lease.charge(cost);
        if let Some(rec) = lease.recorder() {
            rec.crossing(lease.now().as_nanos(), CrossDir::UserToKernel, 0);
        }
    }

    /// Charges a `len`-byte copy from this space into the kernel.
    pub fn copyin(&self, lease: &mut CpuLease, len: usize) {
        self.bytes_copied_in
            .set(self.bytes_copied_in.get() + len as u64);
        let cost = lease.model().copy(len);
        lease.charge(cost);
        if let Some(rec) = lease.recorder() {
            rec.crossing(lease.now().as_nanos(), CrossDir::UserToKernel, len);
        }
    }

    /// Charges a `len`-byte copy from the kernel into this space.
    pub fn copyout(&self, lease: &mut CpuLease, len: usize) {
        self.bytes_copied_out
            .set(self.bytes_copied_out.get() + len as u64);
        let cost = lease.model().copy(len);
        lease.charge(cost);
        if let Some(rec) = lease.recorder() {
            rec.crossing(lease.now().as_nanos(), CrossDir::KernelToUser, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_sim::cpu::{CostModel, Cpu};
    use plexus_sim::time::SimTime;

    #[test]
    fn boundary_crossings_charge_and_count() {
        let model = CostModel::alpha_3000_400();
        let cpu = Cpu::new(model.clone());
        let space = AddressSpace::new("ttcp");
        let mut lease = cpu.begin(SimTime::ZERO);
        space.trap(&mut lease);
        space.copyin(&mut lease, 1024);
        space.copyout(&mut lease, 64);
        assert_eq!(space.traps(), 1);
        assert_eq!(space.bytes_copied_in(), 1024);
        assert_eq!(space.bytes_copied_out(), 64);
        assert_eq!(
            lease.elapsed(),
            model.syscall + model.copy(1024) + model.copy(64)
        );
    }
}
