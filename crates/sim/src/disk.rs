//! A simple DMA disk model for the network-video server (§5.1).
//!
//! The paper's video server reads frames off disk through SPIN's file
//! system interface; what matters for Figure 6 is that disk reads are DMA
//! (cheap in CPU) but occupy the device for seek + transfer time, so frame
//! reads from many concurrent streams queue behind each other.

use std::cell::Cell;
use std::rc::Rc;

use crate::engine::Engine;
use crate::time::{SimDuration, SimTime};

/// A single-spindle disk with DMA transfers.
pub struct Disk {
    seek: SimDuration,
    bytes_per_sec: u64,
    /// CPU cost per read (issuing the request + completion interrupt work).
    pub cpu_cost: SimDuration,
    free_at: Cell<SimTime>,
    reads: Cell<u64>,
    bytes_read: Cell<u64>,
}

impl Disk {
    /// A disk of the paper's era: ~10 ms average seek amortized down by
    /// sequential video reads, ~4 MB/s media rate.
    pub fn video_era() -> Rc<Disk> {
        Disk::new(SimDuration::from_micros(1_500), 4_000_000)
    }

    /// Creates a disk with explicit seek time and media rate.
    pub fn new(seek: SimDuration, bytes_per_sec: u64) -> Rc<Disk> {
        Rc::new(Disk {
            seek,
            bytes_per_sec,
            cpu_cost: SimDuration::from_micros(6),
            free_at: Cell::new(SimTime::ZERO),
            reads: Cell::new(0),
            bytes_read: Cell::new(0),
        })
    }

    /// Number of reads issued.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total bytes transferred.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Time the media needs to transfer `len` bytes (excluding seek).
    pub fn transfer_time(&self, len: usize) -> SimDuration {
        let ns = len as u128 * 1_000_000_000 / self.bytes_per_sec as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Issues a `len`-byte read at `now`; `done` runs when the DMA
    /// completes. Reads queue on the spindle in issue order.
    pub fn read<F>(&self, engine: &mut Engine, now: SimTime, len: usize, done: F) -> SimTime
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        let start = self.free_at.get().max(now);
        let end = start + self.seek + self.transfer_time(len);
        self.free_at.set(end);
        self.reads.set(self.reads.get() + 1);
        self.bytes_read.set(self.bytes_read.get() + len as u64);
        engine.schedule_at(end, done);
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_completes_after_seek_plus_transfer() {
        let disk = Disk::new(SimDuration::from_micros(1_000), 4_000_000);
        let mut engine = Engine::new();
        let done_at = Rc::new(Cell::new(0u64));
        let d = done_at.clone();
        disk.read(&mut engine, SimTime::ZERO, 4_000, move |eng| {
            d.set(eng.now().as_micros());
        });
        engine.run();
        // 1 ms seek + 4000 B at 4 MB/s = 1 ms transfer.
        assert_eq!(done_at.get(), 2_000);
        assert_eq!(disk.reads(), 1);
        assert_eq!(disk.bytes_read(), 4_000);
    }

    #[test]
    fn reads_queue_on_the_spindle() {
        let disk = Disk::new(SimDuration::from_micros(100), 1_000_000);
        let mut engine = Engine::new();
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        for _ in 0..3 {
            let log = log.clone();
            disk.read(&mut engine, SimTime::ZERO, 1_000, move |eng| {
                log.borrow_mut().push(eng.now().as_micros());
            });
        }
        engine.run();
        // Each read: 100 us seek + 1000 us transfer = 1.1 ms, serialized.
        assert_eq!(*log.borrow(), vec![1_100, 2_200, 3_300]);
    }
}
