//! The discrete-event execution engine.
//!
//! An [`Engine`] owns a priority queue of scheduled actions. Running the
//! engine repeatedly pops the earliest action, advances the clock to its
//! timestamp, and invokes it. Actions are arbitrary `FnOnce(&mut Engine)`
//! closures, so they can schedule further actions; shared simulation state
//! (machines, devices, protocol stacks) lives outside the engine behind
//! `Rc<RefCell<_>>` handles that the closures capture.
//!
//! Determinism: ties at the same instant are broken by insertion order
//! (a monotonically increasing sequence number), so a given workload always
//! replays the exact same timeline.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use plexus_trace::Recorder;

use crate::time::{SimDuration, SimTime};

/// A scheduled closure. It receives the engine so it can schedule follow-ups.
pub type Action = Box<dyn FnOnce(&mut Engine)>;

/// Cancellation handle for a scheduled action (e.g. a retransmit timer).
///
/// Dropping the handle does *not* cancel the action; call
/// [`TimerHandle::cancel`]. A cancelled action is skipped when its time
/// comes (the closure is dropped without running).
#[derive(Clone)]
pub struct TimerHandle {
    cancelled: Rc<Cell<bool>>,
    at: SimTime,
}

impl TimerHandle {
    /// Cancels the scheduled action. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }

    /// True if [`TimerHandle::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }

    /// The instant the action was scheduled for.
    pub fn deadline(&self) -> SimTime {
        self.at
    }
}

struct Entry {
    at: SimTime,
    seq: u64,
    cancelled: Option<Rc<Cell<bool>>>,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    // `BinaryHeap` is a max-heap; invert so the earliest (and, within an
    // instant, the first-scheduled) entry surfaces first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event executor with a deterministic timeline.
///
/// # Examples
///
/// ```
/// use plexus_sim::engine::Engine;
/// use plexus_sim::time::SimDuration;
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_micros(5), |eng| {
///     assert_eq!(eng.now().as_micros(), 5);
/// });
/// engine.run();
/// assert_eq!(engine.now().as_micros(), 5);
/// ```
#[derive(Default)]
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    stopped: bool,
    executed: u64,
    recorder: Option<Rc<Recorder>>,
}

impl Engine {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine::default()
    }

    /// Installs (or removes) a flight recorder. Cancelable timers record a
    /// `TimerFire` event when they run.
    pub fn set_recorder(&mut self, recorder: Option<Rc<Recorder>>) {
        self.recorder = recorder;
    }

    /// The installed flight recorder, if any. Lets code holding only an
    /// engine (driver rx closures, timer callbacks) emit trace events.
    pub fn recorder(&self) -> Option<&Rc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of actions executed so far (skipped cancelled actions do not
    /// count).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of actions still pending (including cancelled ones that have
    /// not yet been reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            cancelled: None,
            action: Box::new(action),
        });
    }

    /// Schedules `action` to run `delay` from now.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules `action` at `delay` from now and returns a handle that can
    /// cancel it before it fires.
    pub fn schedule_cancelable<F>(&mut self, delay: SimDuration, action: F) -> TimerHandle
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        let at = self.now + delay;
        let cancelled = Rc::new(Cell::new(false));
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            cancelled: Some(cancelled.clone()),
            action: Box::new(action),
        });
        TimerHandle { cancelled, at }
    }

    /// Requests that the current `run*` call return after the in-flight
    /// action completes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Runs until the queue drains (or [`Engine::stop`] is called).
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Runs actions with timestamps `<= deadline`, then sets the clock to
    /// `deadline` (if the queue drained early and `deadline` is finite).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.stopped = false;
        while !self.stopped {
            match self.queue.peek() {
                Some(entry) if entry.at <= deadline => {}
                _ => break,
            }
            let entry = self.queue.pop().expect("peeked entry vanished");
            debug_assert!(entry.at >= self.now, "event queue out of order");
            self.now = entry.at;
            if let Some(flag) = &entry.cancelled {
                if flag.get() {
                    continue;
                }
                // Only cancelable entries are timers in the protocol sense
                // (retransmits, delays); plain scheduled actions are
                // simulation plumbing.
                if let Some(rec) = &self.recorder {
                    rec.timer_fire(self.now.as_nanos());
                }
            }
            self.executed += 1;
            (entry.action)(self);
        }
        if deadline != SimTime::MAX && self.now < deadline && !self.stopped {
            self.now = deadline;
        }
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        self.run_until(self.now + span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn actions_run_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut engine = Engine::new();
        for &us in &[30u64, 10, 20] {
            let log = log.clone();
            engine.schedule_in(SimDuration::from_micros(us), move |eng| {
                log.borrow_mut().push(eng.now().as_micros());
            });
        }
        engine.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(engine.executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut engine = Engine::new();
        for label in 0..5 {
            let log = log.clone();
            engine.schedule_in(SimDuration::from_micros(7), move |_| {
                log.borrow_mut().push(label);
            });
        }
        engine.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn actions_can_schedule_actions() {
        let hits = Rc::new(Cell::new(0u32));
        let mut engine = Engine::new();
        let h = hits.clone();
        engine.schedule_in(SimDuration::from_micros(1), move |eng| {
            h.set(h.get() + 1);
            let h2 = h.clone();
            eng.schedule_in(SimDuration::from_micros(1), move |_| {
                h2.set(h2.get() + 1);
            });
        });
        engine.run();
        assert_eq!(hits.get(), 2);
        assert_eq!(engine.now().as_micros(), 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let fired = Rc::new(Cell::new(false));
        let mut engine = Engine::new();
        let f = fired.clone();
        let handle = engine.schedule_cancelable(SimDuration::from_micros(5), move |_| {
            f.set(true);
        });
        handle.cancel();
        assert!(handle.is_cancelled());
        engine.run();
        assert!(!fired.get());
        assert_eq!(engine.executed(), 0);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut engine = Engine::new();
        engine.schedule_in(SimDuration::from_micros(3), |_| {});
        engine.run_until(SimTime::from_micros(10));
        assert_eq!(engine.now().as_micros(), 10);
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let fired = Rc::new(Cell::new(false));
        let mut engine = Engine::new();
        let f = fired.clone();
        engine.schedule_in(SimDuration::from_micros(50), move |_| f.set(true));
        engine.run_for(SimDuration::from_micros(10));
        assert!(!fired.get());
        assert_eq!(engine.pending(), 1);
        engine.run();
        assert!(fired.get());
    }

    #[test]
    fn stop_halts_the_run() {
        let count = Rc::new(Cell::new(0u32));
        let mut engine = Engine::new();
        for _ in 0..10 {
            let c = count.clone();
            engine.schedule_in(SimDuration::from_micros(1), move |eng| {
                c.set(c.get() + 1);
                if c.get() == 3 {
                    eng.stop();
                }
            });
        }
        engine.run();
        assert_eq!(count.get(), 3);
        assert_eq!(engine.pending(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut engine = Engine::new();
        engine.schedule_in(SimDuration::from_micros(5), |eng| {
            eng.schedule_at(SimTime::ZERO, |_| {});
        });
        engine.run();
    }
}
