//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds. Nanosecond resolution
//! is fine enough to express single CPU cycles of the simulated Alpha 21064
//! (7.5 ns at 133 MHz) while keeping arithmetic exact: all scheduling,
//! serialization, and cost-model math happens on `u64`/`i64` values, so two
//! runs of the same workload produce bit-identical timelines.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated timeline, in nanoseconds since the
/// simulation epoch (time zero, when [`crate::engine::Engine`] starts).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for idle devices.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, truncated.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds since the epoch, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so that indicates a scheduling bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time ran backwards: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`SimTime::since`]: returns zero when `earlier`
    /// is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in the span, truncated.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds in the span, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds in the span, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer count (e.g. per-byte costs).
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration underflow: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_micros(), 15);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros(3).times(4).as_micros(), 12);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn since_panics_on_backwards_time() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(2);
        let _ = early.since(late);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.000us");
    }
}
